//! Property tests for the diff engine, heartbeat, and classifier.

use proptest::prelude::*;
use schevo_core::diff::diff;
use schevo_core::heartbeat::{Heartbeat, HeartbeatPoint};
use schevo_core::taxa::{classify, ProjectClass, Taxon, TaxonFeatures};
use schevo_ddl::schema::{Attribute, Schema, Table};
use schevo_ddl::types::DataType;

fn ident(prefix: &'static str) -> impl Strategy<Value = String> {
    (0u32..12).prop_map(move |i| format!("{prefix}{i}"))
}

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::int()),
        Just(DataType::text()),
        Just(DataType::varchar(64)),
        Just(DataType::varchar(255)),
        Just(DataType::datetime()),
        Just(DataType::from_name("BIGINT")),
    ]
}

fn schema() -> impl Strategy<Value = Schema> {
    proptest::collection::btree_map(
        ident("t"),
        proptest::collection::btree_map(ident("c"), data_type(), 1..6),
        0..5,
    )
    .prop_map(|tables| {
        let mut s = Schema::new();
        for (tname, cols) in tables {
            let mut t = Table::new(tname);
            for (cname, ty) in cols {
                t.push_attribute(Attribute::new(cname, ty));
            }
            s.upsert_table(t);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Diffing a schema against itself is always inactive.
    #[test]
    fn self_diff_is_empty(s in schema()) {
        let d = diff(&s, &s);
        prop_assert_eq!(d.activity(), 0);
        prop_assert!(!d.is_active());
    }

    /// Swapping old/new mirrors the birth/death categories exactly.
    #[test]
    fn diff_mirror_symmetry(a in schema(), b in schema()) {
        let fwd = diff(&a, &b);
        let rev = diff(&b, &a);
        prop_assert_eq!(fwd.tables_inserted.len(), rev.tables_deleted.len());
        prop_assert_eq!(fwd.tables_deleted.len(), rev.tables_inserted.len());
        prop_assert_eq!(fwd.born.len(), rev.deleted.len());
        prop_assert_eq!(fwd.deleted.len(), rev.born.len());
        prop_assert_eq!(fwd.injected.len(), rev.ejected.len());
        prop_assert_eq!(fwd.ejected.len(), rev.injected.len());
        // Type/PK changes are symmetric sets.
        prop_assert_eq!(fwd.type_changed.len(), rev.type_changed.len());
        prop_assert_eq!(fwd.pk_changed.len(), rev.pk_changed.len());
        // And total activity is conserved under direction.
        prop_assert_eq!(fwd.activity(), rev.activity());
    }

    /// Activity decomposes into expansion + maintenance, always.
    #[test]
    fn activity_decomposition(a in schema(), b in schema()) {
        let d = diff(&a, &b);
        prop_assert_eq!(d.activity(), d.expansion() + d.maintenance());
    }

    /// Heartbeat counting identities: reeds + turf = active commits, for any
    /// threshold; totals decompose.
    #[test]
    fn heartbeat_identities(points in proptest::collection::vec((0u64..40, 0u64..40), 0..50),
                            threshold in 0u64..40) {
        let hb = Heartbeat {
            points: points.iter().enumerate().map(|(i, &(e, m))| HeartbeatPoint {
                transition_id: i + 1, expansion: e, maintenance: m,
            }).collect(),
        };
        prop_assert_eq!(hb.reeds(threshold) + hb.turf(threshold), hb.active_commits());
        prop_assert_eq!(hb.total_activity(), hb.total_expansion() + hb.total_maintenance());
        prop_assert!(hb.peak_activity() <= hb.total_activity());
        let pc = hb.peak_concentration();
        prop_assert!((0.0..=1.0).contains(&pc));
    }

    /// The migration generator is sound: for ANY pair of (FK-free) schemas,
    /// generating the old→new migration and applying it through the parser
    /// reproduces the new schema up to column order.
    #[test]
    fn migration_roundtrip(old in schema(), new in schema()) {
        use schevo_core::migrate::{apply_migration, generate_migration, logically_equivalent};
        let m = generate_migration(&old, &new);
        let applied = apply_migration(&old, &m).unwrap();
        prop_assert!(
            logically_equivalent(&applied, &new),
            "script:\n{}", m.script()
        );
        // And migrating a schema onto itself is a no-op.
        let idm = generate_migration(&old, &old);
        prop_assert!(idm.is_empty());
    }

    /// The classifier is total over feasible feature combinations, and its
    /// outcome is consistent with the definitional constraints of Table I.
    #[test]
    fn classifier_total_and_consistent(commits in 2u64..600,
                                       active in 0u64..300,
                                       activity in 0u64..4000,
                                       reeds in 0u64..40) {
        // Enforce feasibility invariants of real histories.
        prop_assume!(active < commits);
        prop_assume!(reeds <= active);
        prop_assume!((active == 0) == (activity == 0));
        prop_assume!(activity >= active); // each active commit has ≥1 attribute
        // A reed implies >14 attributes of activity somewhere.
        prop_assume!(reeds == 0 || activity >= 15 * reeds + (active - reeds));

        let f = TaxonFeatures { commits, active_commits: active, total_activity: activity, reeds };
        let ProjectClass::Taxon(t) = classify(f) else {
            return Err(TestCaseError::fail("≥2 commits must classify"));
        };
        match t {
            Taxon::Frozen => prop_assert!(active == 0 && activity == 0),
            Taxon::AlmostFrozen => prop_assert!((1..=3).contains(&active) && activity <= 10),
            Taxon::FocusedShotFrozen => prop_assert!(active <= 3 && activity > 10),
            Taxon::FocusedShotLow => prop_assert!((4..=10).contains(&active) && (1..=2).contains(&reeds)),
            Taxon::Moderate => {
                prop_assert!(active >= 4 && activity < 90);
                prop_assert!(!((4..=10).contains(&active) && (1..=2).contains(&reeds)));
            }
            Taxon::Active => {
                prop_assert!(active >= 4 && activity >= 90);
                prop_assert!(!((4..=10).contains(&active) && (1..=2).contains(&reeds)));
            }
        }
    }
}
