//! Property tests for the migration generator over schemas *with* foreign
//! keys: FK changes surface as notes, never as statements, and the logical
//! capacity still round-trips.

use proptest::prelude::*;
use schevo_core::migrate::{apply_migration, generate_migration, logically_equivalent, MigrationStep};
use schevo_ddl::schema::{Attribute, ForeignKey, Schema, Table};
use schevo_ddl::types::DataType;

fn table_name() -> impl Strategy<Value = String> {
    (0u32..6).prop_map(|i| format!("t{i}"))
}

/// Schemas where some tables reference others (possibly dangling).
fn fk_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::btree_map(
        table_name(),
        (1usize..5, proptest::option::of(0u32..8)),
        1..5,
    )
    .prop_map(|tables| {
        let mut s = Schema::new();
        for (name, (arity, fk_target)) in tables {
            let mut t = Table::new(name);
            for k in 0..arity {
                t.push_attribute(Attribute::new(
                    format!("c{k}"),
                    if k == 0 { DataType::int() } else { DataType::varchar(60) },
                ));
            }
            t.set_primary_key(vec!["c0".into()]);
            if let Some(target) = fk_target {
                // May reference an existing or a missing table (dangling).
                t.push_foreign_key(ForeignKey {
                    columns: vec!["c0".into()],
                    foreign_table: format!("t{target}"),
                    foreign_columns: vec!["c0".into()],
                });
            }
            s.upsert_table(t);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The migration between FK-bearing schemas still reproduces the new
    /// logical capacity (FKs themselves are explicitly out of migration
    /// scope and appear as notes).
    #[test]
    fn fk_schemas_still_roundtrip_logically(old in fk_schema(), new in fk_schema()) {
        let m = generate_migration(&old, &new);
        let applied = apply_migration(&old, &m).unwrap();
        prop_assert!(logically_equivalent(&applied, &new), "script:\n{}", m.script());
    }

    /// FK-only differences produce only Note steps.
    #[test]
    fn fk_only_changes_produce_notes(base in fk_schema()) {
        // Strip all FKs to build the "old" twin.
        let mut old = Schema::new();
        for t in base.tables() {
            let mut nt = Table::new(t.name.clone());
            for a in t.attributes() {
                nt.push_attribute(a.clone());
            }
            nt.set_primary_key(t.primary_key().to_vec());
            old.upsert_table(nt);
        }
        let m = generate_migration(&old, &base);
        for step in &m.steps {
            prop_assert!(
                matches!(step, MigrationStep::Note(_)),
                "unexpected step: {:?}",
                step
            );
        }
        // Notes are comments: applying them is a no-op on logical capacity.
        let applied = apply_migration(&old, &m).unwrap();
        prop_assert!(logically_equivalent(&applied, &old));
    }

    /// Migration scripts are themselves parseable in isolation (pure SQL +
    /// comments), so they could be fed to a real database shell.
    #[test]
    fn scripts_are_standalone_parseable(old in fk_schema(), new in fk_schema()) {
        let m = generate_migration(&old, &new);
        // Parsing just the script must not error (it may contain ALTERs for
        // tables that "do not exist" in an empty schema — the tolerant
        // parser ignores those, which is exactly what we verify).
        let parsed = schevo_ddl::parse_schema(&m.script());
        prop_assert!(parsed.is_ok());
    }
}
