//! # schevo-core
//!
//! The primary contribution of the reproduced study: schema histories,
//! attribute-level diffs (Hecate), per-transition measurements, the
//! *heartbeat* with its reed/turf vocabulary, per-project evolution
//! profiles, and the rule-based taxa classification tree.
//!
//! ```
//! use schevo_core::model::SchemaHistory;
//! use schevo_core::profile::EvolutionProfile;
//! use schevo_core::taxa::Taxon;
//! use schevo_vcs::repo::{FileChange, Repository};
//! use schevo_vcs::history::{file_history, WalkStrategy};
//! use schevo_vcs::timestamp::Timestamp;
//!
//! // A project whose only logical change injects one attribute.
//! let mut repo = Repository::new("acme/app");
//! repo.commit(&[FileChange::write("schema.sql", "CREATE TABLE t (a INT);")],
//!             "dev", Timestamp::from_date(2018, 1, 1), "v0").unwrap();
//! repo.commit(&[FileChange::write("schema.sql", "CREATE TABLE t (a INT, b INT);")],
//!             "dev", Timestamp::from_date(2018, 6, 1), "add b").unwrap();
//!
//! let versions = file_history(&repo, "schema.sql", WalkStrategy::FirstParent).unwrap();
//! let history = SchemaHistory::from_file_versions("acme/app", &versions).unwrap();
//! let profile = EvolutionProfile::of(&history);
//! assert_eq!(profile.total_activity, 1);
//! assert_eq!(profile.class.taxon(), Some(Taxon::AlmostFrozen));
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod errors;
pub mod failpoint;
pub mod fk;
pub mod heartbeat;
pub mod intern;
pub mod measures;
pub mod migrate;
pub mod model;
pub mod profile;
pub mod shape;
pub mod tables;
pub mod taxa;
pub mod tempo;

pub use diff::{diff, SchemaDelta};
pub use errors::{ErrorClass, SchevoError};
pub use failpoint::{retry_io, transient_io, RetryPolicy};
pub use fk::{fk_corpus_stats, fk_profile, fk_snapshot, FkCorpusStats, FkProfile, FkSnapshot};
pub use heartbeat::{derive_reed_threshold, Heartbeat, HeartbeatPoint, REED_THRESHOLD};
pub use intern::{intern, symbol_count, Symbol, SymbolMap};
pub use measures::{measure_history, monthly_activity, TransitionMeasure};
pub use migrate::{apply_migration, generate_migration, logically_equivalent, Migration, MigrationStep};
pub use model::{CommitMeta, SchemaHistory, SchemaVersion};
pub use profile::{EvolutionProfile, ProjectContext};
pub use shape::{classify_shape, ShapeClass};
pub use tables::{electrolysis, fate_activity_table, quadrants, table_lives, ElectrolysisStats, TableFate, TableLife, TableQuadrant};
pub use taxa::{classify, ProjectClass, Taxon, TaxonFeatures};
pub use tempo::{tempo, Tempo, IDLE_THRESHOLD_DAYS};
