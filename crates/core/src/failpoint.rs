//! Deterministic, named-site I/O failpoints.
//!
//! Every durability-critical syscall in the stack (artifact writes,
//! journal appends, shard frame I/O, serve socket frames) passes
//! through a *named site*: a call to [`check`] tagged with a stable
//! string like `"journal.fsync"`. When no fault schedule is armed the
//! check compiles down to a single relaxed atomic load and returns
//! immediately — the hot path stays fault-free and branch-predictable.
//!
//! A schedule is a declarative spec, armed via `--io-faults` or the
//! `SCHEVO_IO_FAULTS` environment variable:
//!
//! ```text
//! journal.fsync=enospc@3;store.read=eio@0.01;report.rename=kill@1
//! ```
//!
//! Grammar: `site=kind[@trigger]` entries joined by `;`.
//!
//! * **kind** — `enospc` (permanent, raw os error 28), `eio`
//!   (transient, raw os error 5), or `kill` (deterministic
//!   [`std::process::abort`] at the site, simulating a crash *before*
//!   the syscall takes effect).
//! * **trigger** — `N` fires on exactly the N-th hit of the site
//!   (0-based); `N+` fires on every hit at or after N; a float `p` in
//!   (0,1) fires each hit with probability `p` drawn from a seeded
//!   per-rule xorshift stream; omitted means every hit.
//!
//! The schedule is fully deterministic given `(spec, seed)`: site hit
//! counters are global and every durability site runs on the calling
//! (main) thread in candidate order, so the fired-fault sequence is
//! identical across worker counts.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Fast-path switch: false until a non-empty schedule is armed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Armed schedule plus mutable hit state. `None` until [`configure`].
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Raw os error code injected for `enospc` faults.
const ENOSPC: i32 = 28;
/// Raw os error code injected for `eio` faults.
const EIO: i32 = 5;
/// Raw os error code treated as transient alongside `EIO`.
const EAGAIN: i32 = 11;

/// What a matched failpoint rule does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Inject `io::Error::from_raw_os_error(28)` — a permanent
    /// disk-full condition that retries cannot clear.
    Enospc,
    /// Inject `io::Error::from_raw_os_error(5)` — a transient I/O
    /// error that the site's bounded retry loop may absorb.
    Eio,
    /// Abort the process at the site, before the guarded syscall runs.
    Kill,
}

impl FaultKind {
    /// Stable lowercase label, matching the spec grammar.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::Kill => "kill",
        }
    }
}

/// When a rule fires relative to its site's global hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on exactly this 0-based hit index.
    Exact(u64),
    /// Fire on this hit index and every later one (`N+`).
    From(u64),
    /// Fire each hit with this probability, drawn from a seeded
    /// per-rule xorshift stream.
    Prob(f64),
    /// Fire on every hit.
    Always,
}

/// One parsed `site=kind@trigger` entry.
#[derive(Debug, Clone)]
struct Rule {
    site: String,
    kind: FaultKind,
    trigger: Trigger,
    /// xorshift64* state for `Trigger::Prob`; advanced once per site hit.
    rng: u64,
}

/// One fault that actually fired, in firing order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The site the fault fired at.
    pub site: String,
    /// What was injected.
    pub kind: FaultKind,
    /// The site's 0-based hit index at firing time.
    pub hit: u64,
}

#[derive(Debug, Default)]
struct Registry {
    rules: Vec<Rule>,
    /// Global per-site hit counters (next 0-based index).
    hits: HashMap<String, u64>,
    fired: Vec<FiredFault>,
}

/// FNV-1a over `bytes`, folded into `seed` — the per-rule stream seed.
fn fold_seed(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // xorshift state must be nonzero.
    if h == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// Advance an xorshift64* state and return a uniform draw in [0, 1).
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if let Some(n) = s.strip_suffix('+') {
        return n
            .parse::<u64>()
            .map(Trigger::From)
            .map_err(|_| format!("bad persistent trigger `{s}` (want N+)"));
    }
    if let Ok(n) = s.parse::<u64>() {
        return Ok(Trigger::Exact(n));
    }
    match s.parse::<f64>() {
        Ok(p) if p > 0.0 && p < 1.0 => Ok(Trigger::Prob(p)),
        _ => Err(format!(
            "bad trigger `{s}` (want hit index N, persistent N+, or probability in (0,1))"
        )),
    }
}

fn parse_rule(entry: &str, seed: u64, index: usize) -> Result<Rule, String> {
    let (site, action) = entry
        .split_once('=')
        .ok_or_else(|| format!("bad fault entry `{entry}` (want site=kind[@trigger])"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(format!("bad fault entry `{entry}`: empty site"));
    }
    let (kind_s, trigger) = match action.split_once('@') {
        Some((k, t)) => (k.trim(), parse_trigger(t.trim())?),
        None => (action.trim(), Trigger::Always),
    };
    let kind = match kind_s {
        "enospc" => FaultKind::Enospc,
        "eio" => FaultKind::Eio,
        "kill" => FaultKind::Kill,
        other => return Err(format!("unknown fault kind `{other}` (want enospc|eio|kill)")),
    };
    let mut tag = site.as_bytes().to_vec();
    tag.push(b'#');
    tag.extend_from_slice(index.to_string().as_bytes());
    Ok(Rule {
        site: site.to_string(),
        kind,
        trigger,
        rng: fold_seed(seed, &tag),
    })
}

/// Parse `spec` and arm the global failpoint schedule.
///
/// An empty spec disarms everything (hot path back to the single
/// atomic load). Returns a human-readable message on grammar errors.
pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
    let mut rules = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        rules.push(parse_rule(entry, seed, rules.len())?);
    }
    let enabled = !rules.is_empty();
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Registry { rules, ..Registry::default() });
    // Publish only after the registry is in place.
    ENABLED.store(enabled, Ordering::Release);
    Ok(())
}

/// Disarm all failpoints and clear hit state (test hygiene).
pub fn reset() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    *guard = None;
}

/// Arm from `SCHEVO_IO_FAULTS` / `SCHEVO_IO_FAULT_SEED` if set.
///
/// Used by black-box tests to fault child processes without touching
/// their command lines. Explicit `--io-faults` flags call
/// [`configure`] afterwards and therefore take precedence.
pub fn init_from_env() -> Result<(), String> {
    let Ok(spec) = std::env::var("SCHEVO_IO_FAULTS") else {
        return Ok(());
    };
    let seed = match std::env::var("SCHEVO_IO_FAULT_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .map_err(|_| format!("bad SCHEVO_IO_FAULT_SEED `{s}` (want u64)"))?,
        Err(_) => 0,
    };
    configure(&spec, seed)
}

/// Evaluate the failpoint at `site`.
///
/// Disabled path: one relaxed atomic load, no locks, `Ok(())`.
/// Enabled: bump the site's global hit counter, evaluate each matching
/// rule in spec order, and inject the first fault that fires. `kill`
/// aborts the process here — before the guarded syscall — so the
/// operation it protects never takes effect.
#[inline]
pub fn check(site: &str) -> io::Result<()> {
    if !ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> io::Result<()> {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let Some(reg) = guard.as_mut() else {
        return Ok(());
    };
    let hit = {
        let counter = reg.hits.entry(site.to_string()).or_insert(0);
        let h = *counter;
        *counter += 1;
        h
    };
    let mut verdict: Option<FaultKind> = None;
    for rule in reg.rules.iter_mut().filter(|r| r.site == site) {
        let fires = match rule.trigger {
            Trigger::Exact(n) => hit == n,
            Trigger::From(n) => hit >= n,
            Trigger::Always => true,
            // Advance the stream on every hit so draws stay aligned
            // with the hit index regardless of earlier rule matches.
            Trigger::Prob(p) => next_unit(&mut rule.rng) < p,
        };
        if fires && verdict.is_none() {
            verdict = Some(rule.kind);
        }
    }
    let Some(kind) = verdict else {
        return Ok(());
    };
    reg.fired.push(FiredFault { site: site.to_string(), kind, hit });
    match kind {
        FaultKind::Kill => {
            drop(guard);
            eprintln!("failpoint: kill at {site} hit={hit}");
            std::process::abort();
        }
        FaultKind::Enospc => Err(io::Error::from_raw_os_error(ENOSPC)),
        FaultKind::Eio => Err(io::Error::from_raw_os_error(EIO)),
    }
}

/// True while a non-empty fault schedule is armed.
pub fn armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of every fault fired so far, in firing order.
pub fn fired() -> Vec<FiredFault> {
    let guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|r| r.fired.clone()).unwrap_or_default()
}

/// Deterministic one-line-per-fault rendering of [`fired`], used by
/// the CLI so black-box tests can diff fault sequences across runs.
pub fn fired_summary() -> Vec<String> {
    fired()
        .iter()
        .map(|f| format!("fault-fired: site={} kind={} hit={}", f.site, f.kind.label(), f.hit))
        .collect()
}

/// Is this I/O error worth retrying at the site that raised it?
///
/// Transient: interrupted/timed-out/would-block conditions and the
/// classic flaky-disk codes `EIO`/`EAGAIN`. Permanent: everything
/// else, notably `ENOSPC`, missing files, and permission failures.
pub fn transient_io(e: &io::Error) -> bool {
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => true,
        _ => matches!(e.raw_os_error(), Some(EIO) | Some(EAGAIN)),
    }
}

/// Bounded, deterministic exponential backoff for transient I/O.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Sleep before retry `i` is `base << (i - 1)` — no jitter, so
    /// the schedule is reproducible.
    pub base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 5, base: Duration::from_millis(1) }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy { attempts: 1, base: Duration::ZERO }
    }
}

/// Run `op`, retrying transient failures per `policy`.
///
/// Permanent errors (see [`transient_io`]) surface immediately; a
/// transient error surfaces only once every attempt is exhausted.
/// `op` must be safe to re-run — callers that buffer (journal
/// appends) rewind to the pre-write offset before each retry.
pub fn retry_io<T>(policy: RetryPolicy, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut delay = policy.base;
    let mut last_try = attempts - 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if transient_io(&e) && last_try > 0 => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                last_try -= 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    // The registry is process-global, so tests that arm it must not
    // run concurrently with each other.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_check_is_ok_and_records_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        for _ in 0..100 {
            check("journal.append").unwrap();
        }
        assert!(fired().is_empty());
        assert!(!armed());
    }

    #[test]
    fn exact_trigger_fires_once_at_index() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("journal.fsync=enospc@3", 1).unwrap();
        let mut errs = Vec::new();
        for i in 0..6 {
            if let Err(e) = check("journal.fsync") {
                errs.push((i, e.raw_os_error()));
            }
        }
        assert_eq!(errs, vec![(3, Some(ENOSPC))]);
        let f = fired();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].site, "journal.fsync");
        assert_eq!(f[0].hit, 3);
        reset();
    }

    #[test]
    fn persistent_trigger_fires_from_index_on() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("store.write=eio@2+", 1).unwrap();
        let outcomes: Vec<bool> = (0..5).map(|_| check("store.write").is_err()).collect();
        assert_eq!(outcomes, vec![false, false, true, true, true]);
        reset();
    }

    #[test]
    fn sites_are_independent_and_unlisted_sites_never_fire() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("a.x=enospc@0", 1).unwrap();
        check("b.y").unwrap();
        assert!(check("a.x").is_err());
        reset();
    }

    #[test]
    fn probability_stream_is_seed_deterministic() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let run = |seed: u64| -> Vec<u64> {
            configure("store.read=eio@0.2", seed).unwrap();
            for _ in 0..200 {
                let _ = check("store.read");
            }
            let hits: Vec<u64> = fired().iter().map(|f| f.hit).collect();
            reset();
            hits
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "p=0.2 over 200 hits should fire");
        assert_ne!(a, c, "different seeds should shift the schedule");
    }

    #[test]
    fn spec_grammar_rejections_are_typed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(configure("nonsense", 0).is_err());
        assert!(configure("a.x=explode", 0).is_err());
        assert!(configure("a.x=eio@1.5", 0).is_err());
        assert!(configure("a.x=eio@-1", 0).is_err());
        assert!(configure("=eio", 0).is_err());
        // Errors must not leave a half-armed schedule.
        assert!(configure("", 0).is_ok());
        assert!(!armed());
        reset();
    }

    #[test]
    fn transient_classification() {
        assert!(transient_io(&io::Error::from_raw_os_error(EIO)));
        assert!(transient_io(&io::Error::from_raw_os_error(EAGAIN)));
        assert!(transient_io(&io::Error::new(io::ErrorKind::TimedOut, "t")));
        assert!(!transient_io(&io::Error::from_raw_os_error(ENOSPC)));
        assert!(!transient_io(&io::Error::new(io::ErrorKind::NotFound, "n")));
    }

    #[test]
    fn retry_absorbs_transient_but_not_permanent() {
        let calls = AtomicU32::new(0);
        let out = retry_io(RetryPolicy { attempts: 4, base: Duration::ZERO }, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(io::Error::from_raw_os_error(EIO))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(RetryPolicy { attempts: 4, base: Duration::ZERO }, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::from_raw_os_error(ENOSPC))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1, "permanent errors never retry");
    }

    #[test]
    fn retry_exhaustion_surfaces_the_transient_error() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(RetryPolicy { attempts: 3, base: Duration::ZERO }, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::from_raw_os_error(EIO))
        });
        assert_eq!(out.unwrap_err().raw_os_error(), Some(EIO));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn eio_with_exact_trigger_is_absorbed_by_retry() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("x.y=eio@0", 9).unwrap();
        // First attempt hits index 0 and faults; the retry hits index 1
        // and passes — the caller sees success.
        let out = retry_io(RetryPolicy::default(), || {
            check("x.y")?;
            Ok(1)
        });
        assert_eq!(out.unwrap(), 1);
        assert_eq!(fired().len(), 1);
        reset();
    }
}
