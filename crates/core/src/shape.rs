//! Shapes of the schema-size line over a project's life.
//!
//! The paper narrates taxa with phrases like "75% of projects having a flat
//! schema line", "52% involve a single step-up", "65% of projects have a
//! rise". This module turns the `#tables` series into that vocabulary.

use serde::{Deserialize, Serialize};

/// The shape class of a schema-size line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeClass {
    /// The table count never changes.
    Flat,
    /// Exactly one increase and no decreases ("a single step-up").
    SingleStepUp,
    /// Several increases, no decreases ("ladder up" / rising).
    MultiStepRise,
    /// Net shrink: decreases dominate (covers the paper's "massive drop").
    Dropping,
    /// Both increases and decreases without a dominant direction.
    Turbulent,
}

impl ShapeClass {
    /// Human label matching the paper's narrative vocabulary.
    pub fn label(&self) -> &'static str {
        match self {
            ShapeClass::Flat => "flat",
            ShapeClass::SingleStepUp => "single step-up",
            ShapeClass::MultiStepRise => "rising",
            ShapeClass::Dropping => "dropping",
            ShapeClass::Turbulent => "turbulent",
        }
    }

    /// Whether this shape involves schema growth.
    pub fn is_rise(&self) -> bool {
        matches!(self, ShapeClass::SingleStepUp | ShapeClass::MultiStepRise)
    }
}

/// Classify a table-count series into its [`ShapeClass`].
///
/// Rules (first match wins):
/// 1. no changes → `Flat`
/// 2. exactly one up-step, no down-steps → `SingleStepUp`
/// 3. only up-steps → `MultiStepRise`
/// 4. net change < 0 → `Dropping`
/// 5. otherwise → `Turbulent`
///
/// A series with fewer than 2 points is `Flat` (nothing ever moved).
pub fn classify_shape(table_counts: &[usize]) -> ShapeClass {
    if table_counts.len() < 2 {
        return ShapeClass::Flat;
    }
    let mut ups = 0usize;
    let mut downs = 0usize;
    for w in table_counts.windows(2) {
        match w[1].cmp(&w[0]) {
            std::cmp::Ordering::Greater => ups += 1,
            std::cmp::Ordering::Less => downs += 1,
            std::cmp::Ordering::Equal => {}
        }
    }
    let first = table_counts[0] as i64;
    let last = table_counts[table_counts.len() - 1] as i64;
    match (ups, downs) {
        (0, 0) => ShapeClass::Flat,
        (1, 0) => ShapeClass::SingleStepUp,
        (_, 0) => ShapeClass::MultiStepRise,
        _ if last < first => ShapeClass::Dropping,
        _ => ShapeClass::Turbulent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_lines() {
        assert_eq!(classify_shape(&[3, 3, 3, 3]), ShapeClass::Flat);
        assert_eq!(classify_shape(&[5]), ShapeClass::Flat);
        assert_eq!(classify_shape(&[]), ShapeClass::Flat);
    }

    #[test]
    fn single_step_up() {
        assert_eq!(classify_shape(&[3, 3, 5, 5, 5]), ShapeClass::SingleStepUp);
        assert_eq!(classify_shape(&[1, 2]), ShapeClass::SingleStepUp);
    }

    #[test]
    fn multi_step_rise() {
        assert_eq!(classify_shape(&[1, 2, 2, 4, 7]), ShapeClass::MultiStepRise);
    }

    #[test]
    fn dropping() {
        assert_eq!(classify_shape(&[10, 10, 4]), ShapeClass::Dropping);
        // Mixed, but ends below start.
        assert_eq!(classify_shape(&[10, 12, 3]), ShapeClass::Dropping);
    }

    #[test]
    fn turbulent() {
        assert_eq!(classify_shape(&[5, 8, 3, 9, 6]), ShapeClass::Turbulent);
        // Mixed ending equal to start is turbulent, not dropping.
        assert_eq!(classify_shape(&[5, 7, 5]), ShapeClass::Turbulent);
    }

    #[test]
    fn labels_and_rise() {
        assert_eq!(ShapeClass::Flat.label(), "flat");
        assert!(ShapeClass::SingleStepUp.is_rise());
        assert!(ShapeClass::MultiStepRise.is_rise());
        assert!(!ShapeClass::Turbulent.is_rise());
    }
}
