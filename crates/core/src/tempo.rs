//! Tempo analysis: the time-density of active commits.
//!
//! §IV-F observes that active projects' heartbeats are not homogeneous —
//! "periods of systematic activity, ... periods of idleness, spikes of
//! massive maintenance". This module quantifies that narrative: gaps
//! between active commits, idle periods, and a burstiness coefficient.

use crate::measures::TransitionMeasure;
use serde::{Deserialize, Serialize};

/// Tempo statistics of one schema history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Tempo {
    /// Number of active commits observed.
    pub active_commits: usize,
    /// Median gap between consecutive active commits, in days.
    pub median_gap_days: f64,
    /// Longest gap between consecutive active commits, in days.
    pub max_gap_days: i64,
    /// Number of idle periods (gaps longer than `idle_threshold_days`).
    pub idle_periods: usize,
    /// The idle threshold used, in days.
    pub idle_threshold_days: i64,
    /// Burstiness `B = (σ − μ)/(σ + μ)` of the gap distribution:
    /// −1 = perfectly regular, 0 = Poisson-like, → 1 = extremely bursty.
    pub burstiness: f64,
}

/// Compute tempo statistics over measured transitions. Gaps are measured
/// between consecutive **active** commits (the heartbeat the paper charts);
/// histories with fewer than 2 active commits yield a default (zeroed)
/// tempo with `active_commits` set.
pub fn tempo(measures: &[TransitionMeasure], idle_threshold_days: i64) -> Tempo {
    let active_days: Vec<i64> = measures
        .iter()
        .filter(|m| m.is_active())
        .map(|m| m.days_since_v0)
        .collect();
    let mut t = Tempo {
        active_commits: active_days.len(),
        idle_threshold_days,
        ..Default::default()
    };
    if active_days.len() < 2 {
        return t;
    }
    let gaps: Vec<f64> = active_days
        .windows(2)
        .map(|w| (w[1] - w[0]).max(0) as f64)
        .collect();
    t.median_gap_days = schevo_stats::median(&gaps);
    t.max_gap_days = gaps.iter().cloned().fold(0.0, f64::max) as i64;
    t.idle_periods = gaps
        .iter()
        .filter(|&&g| g > idle_threshold_days as f64)
        .count();
    let mu = schevo_stats::mean(&gaps);
    let sigma = schevo_stats::variance(&gaps).sqrt();
    t.burstiness = if sigma + mu > 0.0 {
        (sigma - mu) / (sigma + mu)
    } else {
        0.0
    };
    t
}

/// The idle threshold the §IV-F narrative implies: half a year.
pub const IDLE_THRESHOLD_DAYS: i64 = 180;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::measure_history;
    use crate::model::{CommitMeta, SchemaHistory, SchemaVersion};
    use schevo_ddl::parse_schema;
    use schevo_vcs::timestamp::Timestamp;

    fn history(days_and_arities: &[(i64, usize)]) -> SchemaHistory {
        let versions = days_and_arities
            .iter()
            .map(|&(d, arity)| {
                let cols: Vec<String> = (0..arity).map(|i| format!("c{i} INT")).collect();
                let sql = format!("CREATE TABLE t ({});", cols.join(", "));
                SchemaVersion {
                    meta: CommitMeta {
                        id: format!("c{d}"),
                        timestamp: Timestamp::from_date(2018, 1, 1) + d * 86_400,
                        author: "dev".into(),
                        message: String::new(),
                    },
                    schema: parse_schema(&sql).unwrap(),
                    source_len: sql.len(),
                }
            })
            .collect();
        SchemaHistory {
            project: "t/p".into(),
            versions,
        }
    }

    #[test]
    fn regular_tempo_has_negative_burstiness() {
        // Active commits every 30 days, perfectly regular.
        let specs: Vec<(i64, usize)> = (0..=10).map(|i| (i * 30, (i + 1) as usize)).collect();
        let h = history(&specs);
        let t = tempo(&measure_history(&h), IDLE_THRESHOLD_DAYS);
        assert_eq!(t.active_commits, 10);
        assert_eq!(t.median_gap_days, 30.0);
        assert_eq!(t.max_gap_days, 30);
        assert_eq!(t.idle_periods, 0);
        assert!(t.burstiness < -0.9, "regular gaps ⇒ B ≈ −1, got {}", t.burstiness);
    }

    #[test]
    fn bursty_tempo_with_idleness() {
        // A burst, a 400-day idle gap, another burst.
        let specs: Vec<(i64, usize)> = vec![
            (0, 1),
            (5, 2),
            (10, 3),
            (15, 4),
            (415, 5),
            (420, 6),
            (425, 7),
        ];
        let h = history(&specs);
        let t = tempo(&measure_history(&h), IDLE_THRESHOLD_DAYS);
        assert_eq!(t.active_commits, 6);
        assert_eq!(t.idle_periods, 1);
        assert_eq!(t.max_gap_days, 400);
        assert!(t.burstiness > 0.3, "bursty gaps ⇒ B > 0, got {}", t.burstiness);
    }

    #[test]
    fn degenerate_histories() {
        let h = history(&[(0, 1), (10, 2)]);
        let t = tempo(&measure_history(&h), IDLE_THRESHOLD_DAYS);
        assert_eq!(t.active_commits, 1);
        assert_eq!(t.median_gap_days, 0.0);
        let empty = tempo(&[], IDLE_THRESHOLD_DAYS);
        assert_eq!(empty.active_commits, 0);
    }

    #[test]
    fn inactive_commits_do_not_contribute_gaps() {
        // Same arity twice = inactive middle commit; gap spans across it.
        let specs: Vec<(i64, usize)> = vec![(0, 1), (50, 2), (100, 2), (150, 3)];
        let h = history(&specs);
        let t = tempo(&measure_history(&h), IDLE_THRESHOLD_DAYS);
        assert_eq!(t.active_commits, 2);
        assert_eq!(t.median_gap_days, 100.0);
    }
}
