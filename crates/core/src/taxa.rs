//! The taxa of schema evolution and the rule-based classification tree
//! (the paper's Fig. 3 and Table I).
//!
//! Rule order (first match wins), over projects with ≥ 2 commits:
//!
//! 1. `active_commits == 0` → **Frozen**
//! 2. `active_commits ≤ 3 ∧ activity ≤ 10` → **Almost Frozen**
//! 3. `active_commits ≤ 3 ∧ activity > 10` → **Focused Shot & Frozen**
//! 4. `4 ≤ active_commits ≤ 10 ∧ 1 ≤ reeds ≤ 2` → **Focused Shot & Low**
//! 5. `activity < 90` → **Moderate**
//! 6. otherwise → **Active**
//!
//! Interpretive decisions (justified in DESIGN.md §4 by the paper's own
//! Fig. 4/12 statistics): Focused Shot & Low requires *at least one* reed;
//! exactly 90 attributes of activity classifies as Active; single-commit
//! histories are *history-less* and sit outside the taxa.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The six taxa of schema evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Taxon {
    /// ≥2 commits, zero active commits, zero activity.
    Frozen,
    /// ≤3 active commits, ≤10 updated attributes.
    AlmostFrozen,
    /// ≤3 active commits, >10 updated attributes (typically a single reed).
    FocusedShotFrozen,
    /// None of the rest, <90 updated attributes.
    Moderate,
    /// 4–10 active commits with one or two reeds.
    FocusedShotLow,
    /// None of the rest, ≥90 updated attributes.
    Active,
}

impl Taxon {
    /// All taxa, in the paper's presentation order (Fig. 4 columns).
    pub const ALL: [Taxon; 6] = [
        Taxon::Frozen,
        Taxon::AlmostFrozen,
        Taxon::FocusedShotFrozen,
        Taxon::Moderate,
        Taxon::FocusedShotLow,
        Taxon::Active,
    ];

    /// The taxa that carry nonzero activity (everything but Frozen) — the
    /// set entering the paper's Kruskal–Wallis analysis.
    pub const NON_FROZEN: [Taxon; 5] = [
        Taxon::AlmostFrozen,
        Taxon::FocusedShotFrozen,
        Taxon::Moderate,
        Taxon::FocusedShotLow,
        Taxon::Active,
    ];

    /// Full display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Taxon::Frozen => "Frozen",
            Taxon::AlmostFrozen => "Almost Frozen",
            Taxon::FocusedShotFrozen => "Focused Shot & Frozen",
            Taxon::Moderate => "Moderate",
            Taxon::FocusedShotLow => "Focused Shot & Low",
            Taxon::Active => "Active",
        }
    }

    /// Compact label as used in the paper's Fig. 11/12 headers.
    pub fn short(&self) -> &'static str {
        match self {
            Taxon::Frozen => "Frozen",
            Taxon::AlmostFrozen => "Alm. Frozen",
            Taxon::FocusedShotFrozen => "FShot+Frozen",
            Taxon::Moderate => "Moderate",
            Taxon::FocusedShotLow => "FShot+Low",
            Taxon::Active => "Active",
        }
    }
}

impl fmt::Display for Taxon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification of a project, taxa plus the out-of-scope class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProjectClass {
    /// Only 1 commit of the `.sql` file: no transitions to study (Table I).
    HistoryLess,
    /// A proper taxon.
    Taxon(Taxon),
}

impl ProjectClass {
    /// The taxon, if the project has one.
    pub fn taxon(&self) -> Option<Taxon> {
        match self {
            ProjectClass::HistoryLess => None,
            ProjectClass::Taxon(t) => Some(*t),
        }
    }
}

/// The inputs of the classification tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonFeatures {
    /// Number of commits of the DDL file (versions), V0 included.
    pub commits: u64,
    /// Number of active commits.
    pub active_commits: u64,
    /// Total activity in updated attributes.
    pub total_activity: u64,
    /// Number of reeds (under the corpus' reed threshold).
    pub reeds: u64,
}

/// Classify a project by the tree of Fig. 3 / Table I.
pub fn classify(f: TaxonFeatures) -> ProjectClass {
    if f.commits <= 1 {
        return ProjectClass::HistoryLess;
    }
    let taxon = if f.active_commits == 0 {
        Taxon::Frozen
    } else if f.active_commits <= 3 {
        if f.total_activity <= 10 {
            Taxon::AlmostFrozen
        } else {
            Taxon::FocusedShotFrozen
        }
    } else if (4..=10).contains(&f.active_commits) && (1..=2).contains(&f.reeds) {
        Taxon::FocusedShotLow
    } else if f.total_activity < 90 {
        Taxon::Moderate
    } else {
        Taxon::Active
    };
    ProjectClass::Taxon(taxon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(commits: u64, active: u64, activity: u64, reeds: u64) -> TaxonFeatures {
        TaxonFeatures {
            commits,
            active_commits: active,
            total_activity: activity,
            reeds,
        }
    }

    fn taxon_of(f: TaxonFeatures) -> Taxon {
        classify(f).taxon().expect("not history-less")
    }

    #[test]
    fn history_less() {
        assert_eq!(classify(feats(1, 0, 0, 0)), ProjectClass::HistoryLess);
        assert_eq!(classify(feats(0, 0, 0, 0)), ProjectClass::HistoryLess);
    }

    #[test]
    fn frozen() {
        assert_eq!(taxon_of(feats(2, 0, 0, 0)), Taxon::Frozen);
        assert_eq!(taxon_of(feats(11, 0, 0, 0)), Taxon::Frozen);
    }

    #[test]
    fn almost_frozen_boundaries() {
        assert_eq!(taxon_of(feats(2, 1, 1, 0)), Taxon::AlmostFrozen);
        assert_eq!(taxon_of(feats(4, 3, 10, 0)), Taxon::AlmostFrozen);
        // 11 attributes crosses into FS&Frozen.
        assert_eq!(taxon_of(feats(4, 3, 11, 0)), Taxon::FocusedShotFrozen);
        // A 4th active commit with small change crosses into Moderate.
        assert_eq!(taxon_of(feats(5, 4, 10, 0)), Taxon::Moderate);
    }

    #[test]
    fn focused_shot_frozen() {
        assert_eq!(taxon_of(feats(2, 1, 383, 1)), Taxon::FocusedShotFrozen);
        assert_eq!(taxon_of(feats(4, 2, 23, 1)), Taxon::FocusedShotFrozen);
    }

    #[test]
    fn focused_shot_low_needs_a_reed() {
        // 4–10 active commits, 1–2 reeds → FS&Low.
        assert_eq!(taxon_of(feats(7, 6, 71, 1)), Taxon::FocusedShotLow);
        assert_eq!(taxon_of(feats(10, 10, 315, 2)), Taxon::FocusedShotLow);
        // Same band with zero reeds → Moderate / Active by activity.
        assert_eq!(taxon_of(feats(7, 6, 71, 0)), Taxon::Moderate);
        assert_eq!(taxon_of(feats(12, 10, 120, 0)), Taxon::Active);
        // Three reeds break the band → by activity.
        assert_eq!(taxon_of(feats(10, 9, 100, 3)), Taxon::Active);
    }

    #[test]
    fn moderate_with_reeds_needs_11_plus_active() {
        // Fig. 4 allows Moderate reeds up to 2 — possible only above the
        // FS&Low active-commit band.
        assert_eq!(taxon_of(feats(20, 15, 88, 2)), Taxon::Moderate);
    }

    #[test]
    fn activity_90_boundary() {
        assert_eq!(taxon_of(feats(20, 15, 89, 0)), Taxon::Moderate);
        assert_eq!(taxon_of(feats(20, 15, 90, 0)), Taxon::Active);
    }

    #[test]
    fn active_examples() {
        assert_eq!(taxon_of(feats(516, 232, 3485, 31)), Taxon::Active);
        // Few active commits but three reeds: outside the FS&Low band.
        assert_eq!(taxon_of(feats(9, 7, 112, 3)), Taxon::Active);
        // Many active commits, one reed: the reed band does not apply.
        assert_eq!(taxon_of(feats(40, 22, 254, 1)), Taxon::Active);
    }

    #[test]
    fn classification_is_total_and_single_valued() {
        // Disjointness/completeness over a lattice of feature combinations:
        // every point classifies, and rule order makes the result unique by
        // construction; spot-check corners.
        for commits in [2u64, 5, 50] {
            for active in [0u64, 1, 3, 4, 7, 10, 11, 40] {
                for activity in [0u64, 1, 10, 11, 89, 90, 1000] {
                    for reeds in [0u64, 1, 2, 3, 8] {
                        if active == 0 && activity > 0 {
                            continue; // impossible: activity implies an active commit
                        }
                        if activity == 0 && active > 0 {
                            continue; // impossible: an active commit has activity ≥ 1
                        }
                        if reeds > active {
                            continue; // impossible: every reed is active
                        }
                        if active > commits - 1 {
                            continue; // impossible: more active commits than transitions
                        }
                        let c = classify(feats(commits, active, activity, reeds));
                        assert!(c.taxon().is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn names_and_order() {
        assert_eq!(Taxon::ALL.len(), 6);
        assert_eq!(Taxon::NON_FROZEN.len(), 5);
        assert_eq!(Taxon::FocusedShotFrozen.short(), "FShot+Frozen");
        assert_eq!(Taxon::FocusedShotLow.to_string(), "Focused Shot & Low");
    }
}
