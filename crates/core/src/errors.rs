//! Shared error taxonomy for the mining stack.
//!
//! Every stage of the pipeline — pack decoding, history walking, DDL
//! parsing, version sanitation — reports failures as a [`SchevoError`]
//! carrying its [`ErrorClass`] plus project/version provenance, so a
//! study can quarantine one bad history (and say exactly why) instead
//! of aborting the run.

use schevo_ddl::error::{ParseError, ParseErrorKind};
use schevo_vcs::pack::PackError;
use schevo_vcs::repo::RepoError;
use serde::{Deserialize, Serialize};

/// Coarse classification of a mining failure. Each variant corresponds
/// to one detection point in the pipeline and (via `faultgen`) to one
/// or more injectable corruption classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// The lexer could not tokenize a version (unterminated string,
    /// comment, or quoted identifier — typically truncation or byte
    /// corruption).
    Lex,
    /// The parser rejected the token stream outright.
    Syntax,
    /// A version's schema could not be salvaged: statement-level
    /// recovery produced an empty schema.
    EmptySchema,
    /// A packed repository failed structural or digest verification.
    PackCorrupt,
    /// The repository/history walk itself failed.
    HistoryWalk,
    /// Commit timestamps went backwards within a linearized history.
    NonMonotonicTimestamps,
    /// Two consecutive versions carried byte-identical content.
    DuplicateVersion,
    /// A version (or the whole history) had blank content.
    EmptyVersion,
    /// The write-ahead mining journal was unreadable, unwritable, or its
    /// tail failed length/checksum verification during replay.
    Journal,
    /// A mining task exceeded its soft watchdog deadline. Flagged, never
    /// fatal: the task's result is kept, the overrun is reported.
    DeadlineExceeded,
    /// A sharded corpus store record failed length/checksum verification
    /// or decoding during a streaming read. The affected record (or shard
    /// tail) is quarantined; the stream continues over surviving data.
    StoreCorrupt,
    /// An underlying I/O syscall failed after the site's bounded retry
    /// loop was exhausted (transient errors) or immediately (permanent
    /// errors such as `ENOSPC`). By construction these are permanent by
    /// the time they surface: transient conditions were already retried
    /// at the failing site.
    Io,
}

impl ErrorClass {
    /// Short stable label used in reports and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorClass::Lex => "lex",
            ErrorClass::Syntax => "syntax",
            ErrorClass::EmptySchema => "empty-schema",
            ErrorClass::PackCorrupt => "pack-corrupt",
            ErrorClass::HistoryWalk => "history-walk",
            ErrorClass::NonMonotonicTimestamps => "non-monotonic-timestamps",
            ErrorClass::DuplicateVersion => "duplicate-version",
            ErrorClass::EmptyVersion => "empty-version",
            ErrorClass::Journal => "journal",
            ErrorClass::DeadlineExceeded => "deadline-exceeded",
            ErrorClass::StoreCorrupt => "store-corrupt",
            ErrorClass::Io => "io",
        }
    }

    /// Whether re-running the *whole operation* (study, export, serve
    /// request) may succeed without any change to the inputs.
    ///
    /// Syscall-level transience (EIO, timeouts) is classified and
    /// retried at each I/O site by [`crate::failpoint::retry_io`]
    /// before a [`SchevoError`] ever materializes, so `Io` here means
    /// the retries were exhausted — still worth one *operation-level*
    /// retry (a flaky disk may have recovered), as is a watchdog
    /// overrun. Data-shaped classes are deterministic and permanent.
    pub fn transient(&self) -> bool {
        matches!(self, ErrorClass::Io | ErrorClass::DeadlineExceeded)
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed mining error with provenance: which project, and (when the
/// failure is version-scoped) which version index within its extracted
/// history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchevoError {
    /// What went wrong.
    pub class: ErrorClass,
    /// `owner/repo` of the offending history.
    pub project: String,
    /// Index into the extracted version list, when version-scoped.
    pub version_index: Option<u64>,
    /// Human-readable detail (underlying error rendered to text).
    pub message: String,
    /// Byte offset into the version's source, for lex/syntax errors.
    pub byte_offset: Option<u64>,
}

impl SchevoError {
    /// Build from a DDL [`ParseError`] raised while parsing one version.
    pub fn from_parse(project: impl Into<String>, version_index: usize, e: &ParseError) -> Self {
        let class = match e.kind {
            ParseErrorKind::Lex(_) => ErrorClass::Lex,
            _ => ErrorClass::Syntax,
        };
        SchevoError {
            class,
            project: project.into(),
            version_index: Some(version_index as u64),
            message: e.to_string(),
            byte_offset: Some(e.span.start as u64),
        }
    }

    /// Build from a pack decoding failure.
    pub fn from_pack(project: impl Into<String>, e: &PackError) -> Self {
        SchevoError {
            class: ErrorClass::PackCorrupt,
            project: project.into(),
            version_index: None,
            message: e.to_string(),
            byte_offset: None,
        }
    }

    /// Build from a repository/history failure.
    pub fn from_repo(project: impl Into<String>, e: &RepoError) -> Self {
        SchevoError {
            class: ErrorClass::HistoryWalk,
            project: project.into(),
            version_index: None,
            message: e.to_string(),
            byte_offset: None,
        }
    }

    /// Build a version-scoped sanitation error (timestamps, duplicates,
    /// empty versions, unrecoverable schemas).
    pub fn version(
        class: ErrorClass,
        project: impl Into<String>,
        version_index: usize,
        message: impl Into<String>,
    ) -> Self {
        SchevoError {
            class,
            project: project.into(),
            version_index: Some(version_index as u64),
            message: message.into(),
            byte_offset: None,
        }
    }

    /// Build from an exhausted I/O failure at a named failpoint site.
    /// `scope` names the artifact or store being operated on (it fills
    /// the `project` provenance slot); the site and os-error detail go
    /// into the message so operators can map the failure back to the
    /// exact syscall.
    pub fn from_io(site: &str, scope: impl Into<String>, e: &std::io::Error) -> Self {
        SchevoError {
            class: ErrorClass::Io,
            project: scope.into(),
            version_index: None,
            message: format!("{site}: {e}"),
            byte_offset: None,
        }
    }

    /// Build a project-scoped error without a version index.
    pub fn project(class: ErrorClass, project: impl Into<String>, message: impl Into<String>) -> Self {
        SchevoError {
            class,
            project: project.into(),
            version_index: None,
            message: message.into(),
            byte_offset: None,
        }
    }
}

impl std::fmt::Display for SchevoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class, self.project)?;
        if let Some(v) = self.version_index {
            write!(f, " v{v}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(b) = self.byte_offset {
            write!(f, " (byte {b})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SchevoError {}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_ddl::error::Span;

    #[test]
    fn parse_error_maps_to_lex_class_with_offset() {
        let pe = ParseError::lex("unterminated string literal", Span { start: 17, end: 18 });
        let e = SchevoError::from_parse("acme/app", 3, &pe);
        assert_eq!(e.class, ErrorClass::Lex);
        assert_eq!(e.version_index, Some(3));
        assert_eq!(e.byte_offset, Some(17));
        let s = e.to_string();
        assert!(s.contains("[lex] acme/app v3"), "{s}");
        assert!(s.contains("byte 17"), "{s}");
    }

    #[test]
    fn syntax_class_for_non_lex_kinds() {
        let pe = ParseError::eof("`)`", Span { start: 40, end: 40 });
        let e = SchevoError::from_parse("acme/app", 0, &pe);
        assert_eq!(e.class, ErrorClass::Syntax);
    }

    #[test]
    fn version_scoped_constructor() {
        let e = SchevoError::version(
            ErrorClass::DuplicateVersion,
            "acme/app",
            5,
            "identical to previous version",
        );
        assert_eq!(e.class.label(), "duplicate-version");
        assert_eq!(e.version_index, Some(5));
        assert!(e.to_string().contains("v5"));
    }

    #[test]
    fn class_labels_are_stable_and_distinct() {
        let all = [
            ErrorClass::Lex,
            ErrorClass::Syntax,
            ErrorClass::EmptySchema,
            ErrorClass::PackCorrupt,
            ErrorClass::HistoryWalk,
            ErrorClass::NonMonotonicTimestamps,
            ErrorClass::DuplicateVersion,
            ErrorClass::EmptyVersion,
            ErrorClass::Journal,
            ErrorClass::DeadlineExceeded,
            ErrorClass::StoreCorrupt,
            ErrorClass::Io,
        ];
        let labels: std::collections::HashSet<&str> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn io_errors_carry_site_and_are_transient_at_operation_level() {
        let ioe = std::io::Error::from_raw_os_error(28);
        let e = SchevoError::from_io("journal.fsync", "out/study.journal", &ioe);
        assert_eq!(e.class, ErrorClass::Io);
        assert!(e.class.transient());
        assert!(e.message.starts_with("journal.fsync: "), "{}", e.message);
        assert!(e.to_string().contains("[io] out/study.journal"));
        assert!(!ErrorClass::Syntax.transient());
        assert!(ErrorClass::DeadlineExceeded.transient());
    }
}
