//! Migration-script generation: turn a schema diff into the `ALTER TABLE` /
//! `CREATE TABLE` / `DROP TABLE` statements that carry the old version to
//! the new one.
//!
//! This is the constructive counterpart of the mining direction — the study
//! observes what DBAs did; this module emits what a DBA *would run*. The
//! generated script is validated by construction: applying it (through the
//! crate's own tolerant parser) onto the old schema must reproduce the new
//! logical schema, up to column order (SQL `ADD COLUMN` appends; logical
//! capacity is order-insensitive).
//!
//! Foreign-key alterations are out of scope (the study's measures ignore
//! them, and dialects diverge wildly in FK DDL); FK changes are reported in
//! the script as comments.

use crate::diff::diff;
use schevo_ddl::render::{render_schema_with, RenderOptions};
use schevo_ddl::schema::Table;
use schevo_ddl::Schema;
use std::collections::BTreeSet;
use std::fmt::Write;

/// One generated migration statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationStep {
    /// Create a table (rendered as full DDL).
    CreateTable(String),
    /// Drop a table.
    DropTable(String),
    /// `ALTER TABLE <t> ADD COLUMN ...`.
    AddColumn {
        /// Owning table.
        table: String,
        /// Statement text.
        sql: String,
    },
    /// `ALTER TABLE <t> DROP COLUMN ...`.
    DropColumn {
        /// Owning table.
        table: String,
        /// Statement text.
        sql: String,
    },
    /// `ALTER TABLE <t> MODIFY COLUMN ...`.
    ModifyColumn {
        /// Owning table.
        table: String,
        /// Statement text.
        sql: String,
    },
    /// Primary-key replacement on a table.
    ReplacePrimaryKey {
        /// Owning table.
        table: String,
        /// Statement text (drop and/or add).
        sql: String,
    },
    /// A change the generator cannot express portably (FKs), as a comment.
    Note(String),
}

impl MigrationStep {
    /// The SQL text (or comment) of this step.
    pub fn sql(&self) -> &str {
        match self {
            MigrationStep::CreateTable(s) | MigrationStep::DropTable(s) => s,
            MigrationStep::AddColumn { sql, .. }
            | MigrationStep::DropColumn { sql, .. }
            | MigrationStep::ModifyColumn { sql, .. }
            | MigrationStep::ReplacePrimaryKey { sql, .. } => sql,
            MigrationStep::Note(s) => s,
        }
    }
}

/// A generated migration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Migration {
    /// Ordered steps.
    pub steps: Vec<MigrationStep>,
}

impl Migration {
    /// Whether the migration is empty (schemas logically identical).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The full script text.
    pub fn script(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(s.sql());
            out.push('\n');
        }
        out
    }
}

fn render_column(table: &Table, col: &str) -> Option<String> {
    let attr = table.attribute(col)?;
    let mut s = format!("`{}` {}", attr.name, attr.data_type);
    if attr.not_null {
        s.push_str(" NOT NULL");
    }
    Some(s)
}

fn render_create_table(table: &Table) -> String {
    let mut solo = Schema::new();
    solo.upsert_table(table.clone());
    render_schema_with(&solo, &RenderOptions::default())
        .trim_end()
        .to_string()
}

/// Generate the migration from `old` to `new`.
pub fn generate_migration(old: &Schema, new: &Schema) -> Migration {
    let delta = diff(old, new);
    let mut steps = Vec::new();

    // 1. New tables (full DDL).
    for t in &delta.tables_inserted {
        if let Some(table) = new.table(t) {
            steps.push(MigrationStep::CreateTable(render_create_table(table)));
        }
    }
    // 2. Column additions.
    for (t, c) in &delta.injected {
        if let Some(def) = new.table(t).and_then(|tb| render_column(tb, c)) {
            steps.push(MigrationStep::AddColumn {
                table: t.clone(),
                sql: format!("ALTER TABLE `{t}` ADD COLUMN {def};"),
            });
        }
    }
    // 3. Type changes.
    for (t, c) in &delta.type_changed {
        if let Some(def) = new.table(t).and_then(|tb| render_column(tb, c)) {
            steps.push(MigrationStep::ModifyColumn {
                table: t.clone(),
                sql: format!("ALTER TABLE `{t}` MODIFY COLUMN {def};"),
            });
        }
    }
    // 4. Primary-key replacement, once per table that changed keys.
    let pk_tables: BTreeSet<&String> = delta.pk_changed.iter().map(|(t, _)| t).collect();
    for t in pk_tables {
        let (Some(old_t), Some(new_t)) = (old.table(t), new.table(t)) else {
            continue;
        };
        let mut sql = String::new();
        if !old_t.primary_key().is_empty() {
            let _ = write!(sql, "ALTER TABLE `{t}` DROP PRIMARY KEY;");
        }
        if !new_t.primary_key().is_empty() {
            if !sql.is_empty() {
                sql.push('\n');
            }
            let cols: Vec<String> = new_t
                .primary_key()
                .iter()
                .map(|c| format!("`{c}`"))
                .collect();
            let _ = write!(sql, "ALTER TABLE `{t}` ADD PRIMARY KEY ({});", cols.join(", "));
        }
        if !sql.is_empty() {
            steps.push(MigrationStep::ReplacePrimaryKey {
                table: t.clone(),
                sql,
            });
        }
    }
    // 5. Column removals.
    for (t, c) in &delta.ejected {
        steps.push(MigrationStep::DropColumn {
            table: t.clone(),
            sql: format!("ALTER TABLE `{t}` DROP COLUMN `{c}`;"),
        });
    }
    // 6. Dropped tables.
    for t in &delta.tables_deleted {
        steps.push(MigrationStep::DropTable(format!("DROP TABLE `{t}`;")));
    }
    // 7. FK changes: noted, not migrated.
    for (t, fk) in &delta.fk_added {
        steps.push(MigrationStep::Note(format!(
            "-- NOTE: add FK on `{t}` ({:?} -> {}) manually",
            fk.columns, fk.foreign_table
        )));
    }
    for (t, fk) in &delta.fk_removed {
        steps.push(MigrationStep::Note(format!(
            "-- NOTE: drop FK on `{t}` ({:?} -> {}) manually",
            fk.columns, fk.foreign_table
        )));
    }
    Migration { steps }
}

/// Order-insensitive logical equivalence of two schemas: same tables, each
/// with the same attribute set (name, type, nullability) and the same
/// primary-key sequence. Foreign keys are ignored (see module docs).
pub fn logically_equivalent(a: &Schema, b: &Schema) -> bool {
    if a.table_count() != b.table_count() {
        return false;
    }
    for ta in a.tables() {
        let Some(tb) = b.table(&ta.name) else {
            return false;
        };
        if ta.arity() != tb.arity() || ta.primary_key() != tb.primary_key() {
            return false;
        }
        for attr in ta.attributes() {
            let Some(other) = tb.attribute(&attr.name) else {
                return false;
            };
            if !attr.data_type.logical_eq(&other.data_type) || attr.not_null != other.not_null {
                return false;
            }
        }
    }
    true
}

/// Apply a migration to a schema by rendering the old schema, appending the
/// script, and re-parsing — i.e., through the same front end the miner uses.
///
/// # Errors
///
/// Propagates parse errors from the combined script (unreachable for
/// generator output).
pub fn apply_migration(old: &Schema, migration: &Migration) -> Result<Schema, schevo_ddl::ParseError> {
    let mut combined = render_schema_with(old, &RenderOptions::default());
    combined.push('\n');
    combined.push_str(&migration.script());
    schevo_ddl::parse_schema(&combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_ddl::parse_schema;

    fn s(sql: &str) -> Schema {
        parse_schema(sql).unwrap()
    }

    #[test]
    fn empty_migration_for_identical_schemas() {
        let a = s("CREATE TABLE t (x INT, PRIMARY KEY (x));");
        let m = generate_migration(&a, &a);
        assert!(m.is_empty());
        assert_eq!(m.script(), "");
    }

    #[test]
    fn add_table_and_columns() {
        let old = s("CREATE TABLE t (a INT);");
        let new = s("CREATE TABLE t (a INT, b TEXT NOT NULL); CREATE TABLE u (x INT, PRIMARY KEY (x));");
        let m = generate_migration(&old, &new);
        let script = m.script();
        assert!(script.contains("CREATE TABLE `u`"));
        assert!(script.contains("ALTER TABLE `t` ADD COLUMN `b` TEXT NOT NULL;"));
        let applied = apply_migration(&old, &m).unwrap();
        assert!(logically_equivalent(&applied, &new));
    }

    #[test]
    fn type_change_and_pk_replacement() {
        let old = s("CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));");
        let new = s("CREATE TABLE t (a INT, b VARCHAR(255), PRIMARY KEY (a, b));");
        let m = generate_migration(&old, &new);
        let script = m.script();
        assert!(script.contains("MODIFY COLUMN `b` VARCHAR(255)"));
        assert!(script.contains("DROP PRIMARY KEY"));
        assert!(script.contains("ADD PRIMARY KEY (`a`, `b`)"));
        let applied = apply_migration(&old, &m).unwrap();
        assert!(logically_equivalent(&applied, &new));
    }

    #[test]
    fn drops_and_ejections() {
        let old = s("CREATE TABLE keep (a INT, gone TEXT); CREATE TABLE dead (z INT);");
        let new = s("CREATE TABLE keep (a INT);");
        let m = generate_migration(&old, &new);
        let script = m.script();
        assert!(script.contains("DROP COLUMN `gone`"));
        assert!(script.contains("DROP TABLE `dead`;"));
        let applied = apply_migration(&old, &m).unwrap();
        assert!(logically_equivalent(&applied, &new));
    }

    #[test]
    fn fk_changes_become_notes() {
        let old = s("CREATE TABLE p (id INT); CREATE TABLE c (pid INT);");
        let new = s("CREATE TABLE p (id INT); CREATE TABLE c (pid INT, FOREIGN KEY (pid) REFERENCES p (id));");
        let m = generate_migration(&old, &new);
        assert!(m.script().contains("-- NOTE: add FK"));
        // FK-only changes leave the logical capacity untouched.
        let applied = apply_migration(&old, &m).unwrap();
        assert!(logically_equivalent(&applied, &old));
    }

    #[test]
    fn pk_dropped_entirely() {
        let old = s("CREATE TABLE t (a INT, PRIMARY KEY (a));");
        let new = s("CREATE TABLE t (a INT);");
        let m = generate_migration(&old, &new);
        assert!(m.script().contains("DROP PRIMARY KEY"));
        assert!(!m.script().contains("ADD PRIMARY KEY"));
        let applied = apply_migration(&old, &m).unwrap();
        assert!(logically_equivalent(&applied, &new));
    }

    #[test]
    fn logical_equivalence_is_order_insensitive() {
        let a = s("CREATE TABLE t (a INT, b TEXT);");
        let b = s("CREATE TABLE t (b TEXT, a INT);");
        assert!(logically_equivalent(&a, &b));
        let c = s("CREATE TABLE t (a BIGINT, b TEXT);");
        assert!(!logically_equivalent(&a, &c));
        let d = s("CREATE TABLE t (a INT, b TEXT, c INT);");
        assert!(!logically_equivalent(&a, &d));
    }
}
