//! The per-project [`EvolutionProfile`]: every measure of the paper's
//! Fig. 4, plus the project-level context used by the §IV narratives.

use crate::heartbeat::{Heartbeat, REED_THRESHOLD};
use crate::measures::{measure_history, TransitionMeasure};
use crate::model::SchemaHistory;
use crate::shape::{classify_shape, ShapeClass};
use crate::taxa::{classify, ProjectClass, TaxonFeatures};
use serde::{Deserialize, Serialize};

/// Project-level context that comes from the *repository*, not the DDL file:
/// the Project Update Period and the total number of project commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProjectContext {
    /// Project Update Period in months (start to end of project history).
    pub pup_months: u64,
    /// Total commits in the repository (all files).
    pub total_commits: u64,
}

/// The full statistical profile of one project's schema evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionProfile {
    /// Project name.
    pub project: String,
    /// Schema Update Period in months (Fig. 4 row 1).
    pub sup_months: u64,
    /// Total activity in updated attributes (row 2).
    pub total_activity: u64,
    /// Commits of the DDL file (row 3).
    pub commits: u64,
    /// Active commits (row 4).
    pub active_commits: u64,
    /// Reeds (row 5).
    pub reeds: u64,
    /// Turf commits (row 6).
    pub turf: u64,
    /// Tables inserted over the life of the history (row 7).
    pub table_insertions: u64,
    /// Tables deleted (row 8).
    pub table_deletions: u64,
    /// Tables at V0 (row 9).
    pub tables_start: u64,
    /// Tables at the last version (row 10).
    pub tables_end: u64,
    /// Attributes at V0.
    pub attrs_start: u64,
    /// Attributes at the last version.
    pub attrs_end: u64,
    /// Total expansion (attributes).
    pub expansion: u64,
    /// Total maintenance (attributes).
    pub maintenance: u64,
    /// Shape of the table-count line.
    pub shape: ShapeClass,
    /// Fraction of activity in the single largest commit.
    pub peak_concentration: f64,
    /// Classification under the taxa tree.
    pub class: ProjectClass,
    /// Repository-level context, when known.
    pub context: Option<ProjectContext>,
}

impl EvolutionProfile {
    /// Build the profile of a schema history using the canonical
    /// [`REED_THRESHOLD`].
    pub fn of(history: &SchemaHistory) -> EvolutionProfile {
        Self::with_threshold(history, REED_THRESHOLD)
    }

    /// Build the profile with an explicit reed threshold (used by the
    /// threshold-sensitivity ablation).
    pub fn with_threshold(history: &SchemaHistory, reed_threshold: u64) -> EvolutionProfile {
        let measures = measure_history(history);
        Self::from_measures(history, &measures, reed_threshold)
    }

    /// Build the profile when the measures were already computed.
    pub fn from_measures(
        history: &SchemaHistory,
        measures: &[TransitionMeasure],
        reed_threshold: u64,
    ) -> EvolutionProfile {
        let hb = Heartbeat::from_measures(measures);
        let table_insertions: u64 = measures.iter().map(|m| m.delta.table_insertions()).sum();
        let table_deletions: u64 = measures.iter().map(|m| m.delta.table_deletions()).sum();
        let table_line: Vec<usize> = history
            .versions
            .iter()
            .map(|v| v.schema.table_count())
            .collect();
        let features = TaxonFeatures {
            commits: history.commit_count() as u64,
            active_commits: hb.active_commits(),
            total_activity: hb.total_activity(),
            reeds: hb.reeds(reed_threshold),
        };
        EvolutionProfile {
            project: history.project.clone(),
            sup_months: history.sup_months(),
            total_activity: hb.total_activity(),
            commits: history.commit_count() as u64,
            active_commits: hb.active_commits(),
            reeds: hb.reeds(reed_threshold),
            turf: hb.turf(reed_threshold),
            table_insertions,
            table_deletions,
            tables_start: history.v0().map(|v| v.schema.table_count()).unwrap_or(0) as u64,
            tables_end: history.last().map(|v| v.schema.table_count()).unwrap_or(0) as u64,
            attrs_start: history
                .v0()
                .map(|v| v.schema.attribute_count())
                .unwrap_or(0) as u64,
            attrs_end: history
                .last()
                .map(|v| v.schema.attribute_count())
                .unwrap_or(0) as u64,
            expansion: hb.total_expansion(),
            maintenance: hb.total_maintenance(),
            shape: classify_shape(&table_line),
            peak_concentration: hb.peak_concentration(),
            class: classify(features),
            context: None,
        }
    }

    /// Attach repository-level context.
    pub fn with_context(mut self, context: ProjectContext) -> Self {
        self.context = Some(context);
        self
    }

    /// Share of repository commits that touched the DDL file, in percent
    /// (the paper's "commits concerning the DDL file amounted to 4–6% of the
    /// total commits"). `None` without context.
    pub fn ddl_commit_share(&self) -> Option<f64> {
        let ctx = self.context?;
        if ctx.total_commits == 0 {
            return None;
        }
        Some(100.0 * self.commits as f64 / ctx.total_commits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CommitMeta, SchemaVersion};
    use crate::taxa::Taxon;
    use schevo_ddl::parse_schema;
    use schevo_vcs::timestamp::Timestamp;

    fn version(day: i64, sql: &str) -> SchemaVersion {
        SchemaVersion {
            meta: CommitMeta {
                id: format!("c{day}"),
                timestamp: Timestamp::from_date(2018, 1, 1) + day * 86_400,
                author: "dev".into(),
                message: String::new(),
            },
            schema: parse_schema(sql).unwrap(),
            source_len: sql.len(),
        }
    }

    fn history(specs: &[(i64, &str)]) -> SchemaHistory {
        SchemaHistory {
            project: "t/p".into(),
            versions: specs.iter().map(|&(d, s)| version(d, s)).collect(),
        }
    }

    #[test]
    fn frozen_profile() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (30, "-- touched docs only\nCREATE TABLE a (x INT);"),
        ]);
        let p = EvolutionProfile::of(&h);
        assert_eq!(p.class.taxon(), Some(Taxon::Frozen));
        assert_eq!(p.total_activity, 0);
        assert_eq!(p.commits, 2);
        assert_eq!(p.active_commits, 0);
        assert_eq!(p.shape, ShapeClass::Flat);
        assert_eq!((p.tables_start, p.tables_end), (1, 1));
    }

    #[test]
    fn almost_frozen_profile() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT, y INT, z INT);"),
            (10, "CREATE TABLE a (x BIGINT, y TEXT, z DATETIME);"),
        ]);
        let p = EvolutionProfile::of(&h);
        // 3 type changes = 3 maintenance attributes, 1 active commit.
        assert_eq!(p.class.taxon(), Some(Taxon::AlmostFrozen));
        assert_eq!(p.total_activity, 3);
        assert_eq!(p.maintenance, 3);
        assert_eq!(p.expansion, 0);
        assert_eq!(p.turf, 1);
        assert_eq!(p.reeds, 0);
    }

    #[test]
    fn focused_shot_frozen_profile() {
        // One commit births two tables with 16 attributes total (> 14: reed).
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (
                20,
                "CREATE TABLE a (x INT);\
                 CREATE TABLE b (c1 INT, c2 INT, c3 INT, c4 INT, c5 INT, c6 INT, c7 INT, c8 INT);\
                 CREATE TABLE c (d1 INT, d2 INT, d3 INT, d4 INT, d5 INT, d6 INT, d7 INT, d8 INT);",
            ),
        ]);
        let p = EvolutionProfile::of(&h);
        assert_eq!(p.total_activity, 16);
        assert_eq!(p.reeds, 1);
        assert_eq!(p.class.taxon(), Some(Taxon::FocusedShotFrozen));
        assert_eq!(p.table_insertions, 2);
        assert_eq!(p.shape, ShapeClass::SingleStepUp);
        assert!((p.peak_concentration - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moderate_profile_accumulates_turf() {
        // Five active commits, each injecting 2 attributes: activity 10 with
        // 5 active commits → Moderate (rule 4 fails: no reeds; rule 5: <90).
        let steps: Vec<String> = (0..=5)
            .map(|k| {
                let cols: Vec<String> = (0..=(2 * k)).map(|i| format!("c{i} INT")).collect();
                format!("CREATE TABLE a ({});", cols.join(", "))
            })
            .collect();
        let specs: Vec<(i64, &str)> = steps
            .iter()
            .enumerate()
            .map(|(i, s)| (i as i64 * 30, s.as_str()))
            .collect();
        let h = history(&specs);
        let p = EvolutionProfile::of(&h);
        assert_eq!(p.active_commits, 5);
        assert_eq!(p.total_activity, 10);
        assert_eq!(p.class.taxon(), Some(Taxon::Moderate));
        assert_eq!(p.turf, 5);
        assert_eq!(p.shape, ShapeClass::Flat);
    }

    #[test]
    fn context_and_ddl_share() {
        let h = history(&[(0, "CREATE TABLE a (x INT);"), (5, "CREATE TABLE a (y INT);")]);
        let p = EvolutionProfile::of(&h).with_context(ProjectContext {
            pup_months: 30,
            total_commits: 40,
        });
        assert_eq!(p.ddl_commit_share(), Some(5.0));
        let p0 = EvolutionProfile::of(&h);
        assert_eq!(p0.ddl_commit_share(), None);
    }

    #[test]
    fn empty_history_is_history_less() {
        let h = SchemaHistory::default();
        let p = EvolutionProfile::of(&h);
        assert_eq!(p.class, ProjectClass::HistoryLess);
        assert_eq!(p.tables_start, 0);
    }
}
