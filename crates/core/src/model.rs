//! Schema histories: the central data object of the study.
//!
//! A [`SchemaHistory`] is "a list of commits (a.k.a. versions) of the same
//! DDL file of a database schema, ordered over time" (§III-B). Each version
//! carries its commit metadata and its parsed logical [`Schema`].

use schevo_ddl::{parse_schema, ParseError, Schema};
use schevo_vcs::history::FileVersion;
use schevo_vcs::timestamp::Timestamp;
use serde::{Deserialize, Serialize};

/// Commit metadata attached to one schema version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitMeta {
    /// Commit id (hex digest of the underlying VCS commit).
    pub id: String,
    /// Commit timestamp.
    pub timestamp: Timestamp,
    /// Author name.
    pub author: String,
    /// Commit message.
    pub message: String,
}

/// One version of the schema: commit metadata plus the parsed schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaVersion {
    /// Commit metadata.
    pub meta: CommitMeta,
    /// Parsed logical schema of the file at this commit.
    pub schema: Schema,
    /// Length of the raw file, in bytes (for corpus statistics).
    pub source_len: usize,
}

/// A project's schema history.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemaHistory {
    /// Project name, e.g. `owner/repo`.
    pub project: String,
    /// Versions in commit order; index 0 is the originating version **V0**.
    pub versions: Vec<SchemaVersion>,
}

impl SchemaHistory {
    /// Build a history by parsing every extracted file version.
    ///
    /// # Errors
    ///
    /// Fails with the first [`ParseError`] met; the collection funnel treats
    /// such projects as erroneous and excludes them.
    pub fn from_file_versions(
        project: impl Into<String>,
        versions: &[FileVersion],
    ) -> Result<SchemaHistory, ParseError> {
        let mut parsed = Vec::with_capacity(versions.len());
        for v in versions {
            let schema = parse_schema(&v.content)?;
            parsed.push(SchemaVersion {
                meta: CommitMeta {
                    id: v.commit.to_hex(),
                    timestamp: v.timestamp,
                    author: v.author.clone(),
                    message: v.message.clone(),
                },
                schema,
                source_len: v.content.len(),
            });
        }
        Ok(SchemaHistory {
            project: project.into(),
            versions: parsed,
        })
    }

    /// Number of commits of the DDL file (the paper's `#Commits`).
    pub fn commit_count(&self) -> usize {
        self.versions.len()
    }

    /// Number of transitions (`#Commits − 1`; 0 for history-less projects).
    pub fn transition_count(&self) -> usize {
        self.versions.len().saturating_sub(1)
    }

    /// Whether the project is *history-less* (a single commit — excluded
    /// from taxon analysis, Table I).
    pub fn is_history_less(&self) -> bool {
        self.versions.len() <= 1
    }

    /// The originating version V0, if any.
    pub fn v0(&self) -> Option<&SchemaVersion> {
        self.versions.first()
    }

    /// The last version, if any.
    pub fn last(&self) -> Option<&SchemaVersion> {
        self.versions.last()
    }

    /// Iterate over transitions as `(index, old, new)` — index is the
    /// 1-based transition id used on the heartbeat's x-axis.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, &SchemaVersion, &SchemaVersion)> {
        self.versions
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i + 1, &w[0], &w[1]))
    }

    /// The Schema Update Period in months: the span between the first and
    /// last commit of the schema file (≥ 1 by convention).
    pub fn sup_months(&self) -> u64 {
        match (self.v0(), self.last()) {
            (Some(a), Some(b)) => a.meta.timestamp.span_months(b.meta.timestamp) as u64,
            _ => 0,
        }
    }

    /// The Schema Update Period in days.
    pub fn sup_days(&self) -> u64 {
        match (self.v0(), self.last()) {
            (Some(a), Some(b)) => b.meta.timestamp.days_since(a.meta.timestamp).max(0) as u64,
            _ => 0,
        }
    }

    /// The schema-size line: `(days since V0, #tables, #attributes)` per
    /// version — the series behind the paper's left-hand charts.
    pub fn size_line(&self) -> Vec<(i64, usize, usize)> {
        let Some(v0) = self.v0() else {
            return Vec::new();
        };
        let origin = v0.meta.timestamp;
        self.versions
            .iter()
            .map(|v| {
                (
                    v.meta.timestamp.days_since(origin),
                    v.schema.table_count(),
                    v.schema.attribute_count(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_vcs::repo::{FileChange, Repository};
    use schevo_vcs::history::{file_history, WalkStrategy};

    fn ts(days: i64) -> Timestamp {
        Timestamp::from_date(2018, 1, 1) + days * 86_400
    }

    fn build_history() -> SchemaHistory {
        let mut repo = Repository::new("t/proj");
        repo.commit(
            &[FileChange::write("s.sql", "CREATE TABLE a (x INT);")],
            "dev",
            ts(0),
            "v0",
        )
        .unwrap();
        repo.commit(
            &[FileChange::write(
                "s.sql",
                "CREATE TABLE a (x INT, y INT);",
            )],
            "dev",
            ts(40),
            "add y",
        )
        .unwrap();
        repo.commit(
            &[FileChange::write(
                "s.sql",
                "CREATE TABLE a (x INT, y INT);\nCREATE TABLE b (z INT);",
            )],
            "dev",
            ts(100),
            "add table b",
        )
        .unwrap();
        let fv = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        SchemaHistory::from_file_versions("t/proj", &fv).unwrap()
    }

    #[test]
    fn builds_from_vcs_versions() {
        let h = build_history();
        assert_eq!(h.commit_count(), 3);
        assert_eq!(h.transition_count(), 2);
        assert!(!h.is_history_less());
        assert_eq!(h.v0().unwrap().schema.attribute_count(), 1);
        assert_eq!(h.last().unwrap().schema.table_count(), 2);
    }

    #[test]
    fn transitions_are_one_based_pairs() {
        let h = build_history();
        let t: Vec<usize> = h.transitions().map(|(i, _, _)| i).collect();
        assert_eq!(t, vec![1, 2]);
        let (_, old, new) = h.transitions().next().unwrap();
        assert_eq!(old.schema.attribute_count(), 1);
        assert_eq!(new.schema.attribute_count(), 2);
    }

    #[test]
    fn sup_in_months_and_days() {
        let h = build_history();
        assert_eq!(h.sup_days(), 100);
        // 2018-01-01 → 2018-04-11 spans Jan..Apr → 4 months by convention.
        assert_eq!(h.sup_months(), 4);
    }

    #[test]
    fn size_line_tracks_growth() {
        let h = build_history();
        assert_eq!(
            h.size_line(),
            vec![(0, 1, 1), (40, 1, 2), (100, 2, 3)]
        );
    }

    #[test]
    fn history_less_detection() {
        let h = SchemaHistory {
            project: "x".into(),
            versions: vec![],
        };
        assert!(h.is_history_less());
        assert_eq!(h.sup_months(), 0);
        assert!(h.size_line().is_empty());
    }

    #[test]
    fn parse_error_propagates() {
        use schevo_vcs::sha1::sha1;
        let bad = FileVersion {
            commit: sha1(b"x"),
            timestamp: ts(0),
            author: "a".into(),
            message: "m".into(),
            content: "CREATE TABLE broken (a INT".into(), // unterminated
        };
        // Tolerant parser degrades this to a skip, yielding an empty schema,
        // not an error — verify that behaviour instead.
        let h = SchemaHistory::from_file_versions("p", &[bad]).unwrap();
        assert_eq!(h.versions[0].schema.table_count(), 0);
        // A truly unlexable file (unterminated string) does error.
        let worse = FileVersion {
            commit: sha1(b"y"),
            timestamp: ts(0),
            author: "a".into(),
            message: "m".into(),
            content: "CREATE TABLE t (a INT); INSERT INTO t VALUES ('oops".into(),
        };
        assert!(SchemaHistory::from_file_versions("p", &[worse]).is_err());
    }
}
