//! Per-transition measurements — the paper's §III-B "categories of
//! measurements": timing, schema size, and quantified updates.

use crate::diff::{diff, SchemaDelta};
use crate::model::SchemaHistory;
use schevo_vcs::timestamp::Timestamp;
use serde::{Deserialize, Serialize};

/// Everything Hecate computes for a single transition `i → i+1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMeasure {
    /// 1-based transition id (the heartbeat's x-axis).
    pub transition_id: usize,
    /// Commit id of version `i+1`.
    pub commit: String,
    /// Commit timestamp of version `i+1`.
    pub timestamp: Timestamp,
    /// Distance of the `i+1` commit from V0 in days.
    pub days_since_v0: i64,
    /// Running month since V0 (1-based, 30-day windows).
    pub running_month: i64,
    /// Running year since V0 (1-based).
    pub running_year: i64,
    /// Schema size of the older version: `(tables, attributes)`.
    pub size_before: (usize, usize),
    /// Schema size of the newer version: `(tables, attributes)`.
    pub size_after: (usize, usize),
    /// The quantified updates.
    pub delta: SchemaDelta,
}

impl TransitionMeasure {
    /// Expansion of this transition in attributes.
    pub fn expansion(&self) -> u64 {
        self.delta.expansion()
    }

    /// Maintenance of this transition in attributes.
    pub fn maintenance(&self) -> u64 {
        self.delta.maintenance()
    }

    /// Total activity of this transition.
    pub fn activity(&self) -> u64 {
        self.delta.activity()
    }

    /// Whether this is an active commit.
    pub fn is_active(&self) -> bool {
        self.delta.is_active()
    }
}

/// Diff every transition of a history, in order.
///
/// This is the shared input to the measurement pass and the extension
/// studies ([`crate::fk::fk_profile_with`],
/// [`crate::tables::table_lives_with`]): computing the deltas once and
/// fanning them out replaces three independent diff passes per history,
/// and lets callers substitute cached deltas (the pipeline's
/// content-addressed diff cache does exactly that).
///
/// Each [`diff`] call matches names as interned `u32` symbols
/// ([`crate::intern`]); repeated transitions over the same history amortize
/// the interning because table and attribute names recur verbatim from one
/// version to the next.
pub fn compute_deltas(history: &SchemaHistory) -> Vec<SchemaDelta> {
    history
        .transitions()
        .map(|(_, old, new)| diff(&old.schema, &new.schema))
        .collect()
}

/// Run the measurement pass over a whole history using precomputed
/// transition deltas (one per transition, in transition order).
///
/// The deltas are moved into the returned measures, so callers that
/// already hold them pay no extra diff or clone.
///
/// # Panics
///
/// Panics when `deltas.len()` differs from the history's transition
/// count.
pub fn measure_history_with(
    history: &SchemaHistory,
    deltas: Vec<SchemaDelta>,
) -> Vec<TransitionMeasure> {
    let Some(v0) = history.v0() else {
        assert!(deltas.is_empty(), "deltas for an empty history");
        return Vec::new();
    };
    assert_eq!(
        deltas.len(),
        history.transition_count(),
        "one delta per transition"
    );
    let origin = v0.meta.timestamp;
    history
        .transitions()
        .zip(deltas)
        .map(|((id, old, new), delta)| TransitionMeasure {
            transition_id: id,
            commit: new.meta.id.clone(),
            timestamp: new.meta.timestamp,
            days_since_v0: new.meta.timestamp.days_since(origin),
            running_month: new.meta.timestamp.running_month(origin),
            running_year: new.meta.timestamp.running_year(origin),
            size_before: (old.schema.table_count(), old.schema.attribute_count()),
            size_after: (new.schema.table_count(), new.schema.attribute_count()),
            delta,
        })
        .collect()
}

/// Run the measurement pass over a whole history.
///
/// Returns one [`TransitionMeasure`] per transition, in order. A
/// history-less project yields an empty vector.
pub fn measure_history(history: &SchemaHistory) -> Vec<TransitionMeasure> {
    measure_history_with(history, compute_deltas(history))
}

/// Aggregate transition measures into per-month `(month, expansion,
/// maintenance)` rows — the series of the paper's Fig. 1/9 monthly charts.
/// Months with no activity between active months are included with zeros,
/// so idle periods are visible.
pub fn monthly_activity(measures: &[TransitionMeasure]) -> Vec<(i64, u64, u64)> {
    if measures.is_empty() {
        return Vec::new();
    }
    let last_month = measures.iter().map(|m| m.running_month).max().unwrap_or(1);
    let mut rows: Vec<(i64, u64, u64)> = (1..=last_month).map(|m| (m, 0, 0)).collect();
    for m in measures {
        let slot = &mut rows[(m.running_month - 1) as usize];
        slot.1 += m.expansion();
        slot.2 += m.maintenance();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CommitMeta, SchemaVersion};
    use schevo_ddl::parse_schema;

    fn version(day: i64, sql: &str) -> SchemaVersion {
        SchemaVersion {
            meta: CommitMeta {
                id: format!("c{day}"),
                timestamp: Timestamp::from_date(2018, 1, 1) + day * 86_400,
                author: "dev".into(),
                message: format!("day {day}"),
            },
            schema: parse_schema(sql).unwrap(),
            source_len: sql.len(),
        }
    }

    fn history(specs: &[(i64, &str)]) -> SchemaHistory {
        SchemaHistory {
            project: "t/p".into(),
            versions: specs.iter().map(|&(d, s)| version(d, s)).collect(),
        }
    }

    #[test]
    fn measures_timing_and_sizes() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (45, "CREATE TABLE a (x INT, y INT);"),
            (370, "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z INT);"),
        ]);
        let ms = measure_history(&h);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].transition_id, 1);
        assert_eq!(ms[0].days_since_v0, 45);
        assert_eq!(ms[0].running_month, 2);
        assert_eq!(ms[0].running_year, 1);
        assert_eq!(ms[0].size_before, (1, 1));
        assert_eq!(ms[0].size_after, (1, 2));
        assert_eq!(ms[1].days_since_v0, 370);
        assert_eq!(ms[1].running_year, 2);
        assert_eq!(ms[1].size_after, (2, 3));
    }

    #[test]
    fn active_flag_reflects_delta() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (1, "-- comment only change\nCREATE TABLE a (x INT);"),
            (2, "CREATE TABLE a (x INT, y INT);"),
        ]);
        let ms = measure_history(&h);
        assert!(!ms[0].is_active(), "comment-only commit is non-active");
        assert!(ms[1].is_active());
        assert_eq!(ms[1].expansion(), 1);
    }

    #[test]
    fn empty_history_measures_nothing() {
        let h = SchemaHistory::default();
        assert!(measure_history(&h).is_empty());
        assert!(monthly_activity(&[]).is_empty());
    }

    #[test]
    fn monthly_aggregation_includes_idle_months() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (10, "CREATE TABLE a (x INT, y INT);"),
            (100, "CREATE TABLE a (x INT, y INT, z INT);"),
        ]);
        let ms = measure_history(&h);
        let rows = monthly_activity(&ms);
        // day 10 → month 1, day 100 → month 4; months 2 and 3 idle.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (1, 1, 0));
        assert_eq!(rows[1], (2, 0, 0));
        assert_eq!(rows[2], (3, 0, 0));
        assert_eq!(rows[3], (4, 1, 0));
    }

    #[test]
    fn maintenance_aggregates_in_months() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT, y TEXT);"),
            (5, "CREATE TABLE a (x BIGINT);"),
        ]);
        let rows = monthly_activity(&measure_history(&h));
        // y ejected + x type-changed = 2 maintenance.
        assert_eq!(rows, vec![(1, 0, 2)]);
    }
}
