//! The foreign-key extension study — the paper's second open path
//! (§VI: "extract the treatment of constraints (esp., foreign keys) in
//! FOSS projects"), following the cited companion work on schema evolution
//! and foreign keys.
//!
//! Three questions are answered per project:
//! 1. *Usage*: what fraction of tables declare foreign keys at all?
//! 2. *Heartbeat of FK change*: how many transitions add/remove FKs?
//! 3. *Integrity*: how many declared FKs dangle (reference a missing table
//!    or missing columns) — the "lack of integrity constraints" the earlier
//!    literature reports?

use crate::diff::SchemaDelta;
use crate::model::SchemaHistory;
use schevo_ddl::Schema;
use serde::{Deserialize, Serialize};

/// FK statistics of a single schema version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FkSnapshot {
    /// Tables in the schema.
    pub tables: usize,
    /// Tables declaring at least one foreign key.
    pub tables_with_fk: usize,
    /// Total declared foreign keys.
    pub fk_count: usize,
    /// FKs referencing a table absent from the schema.
    pub dangling_table: usize,
    /// FKs whose referenced columns do not exist on the referenced table
    /// (only checked when the referenced table exists and columns are
    /// spelled out).
    pub dangling_columns: usize,
}

/// Take the FK snapshot of one schema version.
pub fn fk_snapshot(schema: &Schema) -> FkSnapshot {
    let mut snap = FkSnapshot {
        tables: schema.table_count(),
        ..Default::default()
    };
    for table in schema.tables() {
        if !table.foreign_keys().is_empty() {
            snap.tables_with_fk += 1;
        }
        for fk in table.foreign_keys() {
            snap.fk_count += 1;
            match schema.table(&fk.foreign_table) {
                None => snap.dangling_table += 1,
                Some(target) => {
                    if !fk.foreign_columns.is_empty()
                        && fk
                            .foreign_columns
                            .iter()
                            .any(|c| target.attribute(c).is_none())
                    {
                        snap.dangling_columns += 1;
                    }
                }
            }
        }
    }
    snap
}

/// FK evolution statistics of a whole history.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FkProfile {
    /// Snapshot at V0.
    pub start: FkSnapshot,
    /// Snapshot at the last version.
    pub end: FkSnapshot,
    /// Total FK births across all transitions.
    pub fk_births: usize,
    /// Total FK deaths across all transitions.
    pub fk_deaths: usize,
    /// Transitions that touched at least one FK.
    pub fk_active_transitions: usize,
    /// Total transitions.
    pub transitions: usize,
}

impl FkProfile {
    /// Percentage of tables with FKs at the end of history.
    pub fn end_fk_table_pct(&self) -> f64 {
        if self.end.tables == 0 {
            0.0
        } else {
            100.0 * self.end.tables_with_fk as f64 / self.end.tables as f64
        }
    }
}

/// Compute the FK profile of a history from precomputed transition
/// deltas (one per transition, in transition order — see
/// [`crate::measures::compute_deltas`]).
///
/// # Panics
///
/// Panics when `deltas.len()` differs from the history's transition
/// count.
pub fn fk_profile_with(history: &SchemaHistory, deltas: &[SchemaDelta]) -> FkProfile {
    assert_eq!(
        deltas.len(),
        history.transition_count(),
        "one delta per transition"
    );
    let mut profile = FkProfile {
        start: history
            .v0()
            .map(|v| fk_snapshot(&v.schema))
            .unwrap_or_default(),
        end: history
            .last()
            .map(|v| fk_snapshot(&v.schema))
            .unwrap_or_default(),
        transitions: history.transition_count(),
        ..Default::default()
    };
    for d in deltas {
        // Count only FK changes on *surviving* tables (as the diff does);
        // FKs born with a whole table or removed with one follow the table.
        if !d.fk_added.is_empty() || !d.fk_removed.is_empty() {
            profile.fk_active_transitions += 1;
        }
        profile.fk_births += d.fk_added.len();
        profile.fk_deaths += d.fk_removed.len();
    }
    profile
}

/// Compute the FK profile of a history.
pub fn fk_profile(history: &SchemaHistory) -> FkProfile {
    fk_profile_with(history, &crate::measures::compute_deltas(history))
}

/// Corpus-level aggregate over many FK profiles.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FkCorpusStats {
    /// Projects inspected.
    pub projects: usize,
    /// Projects declaring any FK at any point.
    pub projects_with_fks: usize,
    /// Median percentage of FK-bearing tables at end of history (over
    /// FK-using projects).
    pub median_fk_table_pct: f64,
    /// Total dangling references across final versions.
    pub dangling_total: usize,
    /// Projects whose final version has at least one dangling reference.
    pub projects_with_dangling: usize,
}

/// Aggregate FK statistics over a corpus of histories.
pub fn fk_corpus_stats(profiles: &[FkProfile]) -> FkCorpusStats {
    let using: Vec<&FkProfile> = profiles
        .iter()
        .filter(|p| p.end.fk_count > 0 || p.start.fk_count > 0 || p.fk_births > 0)
        .collect();
    let pcts: Vec<f64> = using.iter().map(|p| p.end_fk_table_pct()).collect();
    FkCorpusStats {
        projects: profiles.len(),
        projects_with_fks: using.len(),
        median_fk_table_pct: if pcts.is_empty() {
            0.0
        } else {
            schevo_stats::median(&pcts)
        },
        dangling_total: profiles
            .iter()
            .map(|p| p.end.dangling_table + p.end.dangling_columns)
            .sum(),
        projects_with_dangling: profiles
            .iter()
            .filter(|p| p.end.dangling_table + p.end.dangling_columns > 0)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CommitMeta, SchemaVersion};
    use schevo_ddl::parse_schema;
    use schevo_vcs::timestamp::Timestamp;

    fn version(day: i64, sql: &str) -> SchemaVersion {
        SchemaVersion {
            meta: CommitMeta {
                id: format!("c{day}"),
                timestamp: Timestamp::from_date(2018, 1, 1) + day * 86_400,
                author: "dev".into(),
                message: String::new(),
            },
            schema: parse_schema(sql).unwrap(),
            source_len: sql.len(),
        }
    }

    #[test]
    fn snapshot_counts_usage_and_dangling() {
        let s = parse_schema(
            "CREATE TABLE p (id INT);\
             CREATE TABLE c (pid INT, gid INT,\
               FOREIGN KEY (pid) REFERENCES p (id),\
               FOREIGN KEY (gid) REFERENCES ghost (id));\
             CREATE TABLE d (x INT, FOREIGN KEY (x) REFERENCES p (nope));",
        )
        .unwrap();
        let snap = fk_snapshot(&s);
        assert_eq!(snap.tables, 3);
        assert_eq!(snap.tables_with_fk, 2);
        assert_eq!(snap.fk_count, 3);
        assert_eq!(snap.dangling_table, 1, "ghost reference");
        assert_eq!(snap.dangling_columns, 1, "p.nope reference");
    }

    #[test]
    fn profile_counts_fk_heartbeat() {
        let h = SchemaHistory {
            project: "t".into(),
            versions: vec![
                version(0, "CREATE TABLE p (id INT); CREATE TABLE c (pid INT);"),
                version(
                    10,
                    "CREATE TABLE p (id INT); CREATE TABLE c (pid INT, \
                     FOREIGN KEY (pid) REFERENCES p (id));",
                ),
                version(20, "CREATE TABLE p (id INT); CREATE TABLE c (pid INT);"),
            ],
        };
        let prof = fk_profile(&h);
        assert_eq!(prof.fk_births, 1);
        assert_eq!(prof.fk_deaths, 1);
        assert_eq!(prof.fk_active_transitions, 2);
        assert_eq!(prof.transitions, 2);
        assert_eq!(prof.start.fk_count, 0);
        assert_eq!(prof.end.fk_count, 0);
    }

    #[test]
    fn corpus_stats_aggregate() {
        let with_fk = FkProfile {
            end: FkSnapshot {
                tables: 4,
                tables_with_fk: 2,
                fk_count: 2,
                dangling_table: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let without = FkProfile::default();
        let stats = fk_corpus_stats(&[with_fk, without]);
        assert_eq!(stats.projects, 2);
        assert_eq!(stats.projects_with_fks, 1);
        assert_eq!(stats.median_fk_table_pct, 50.0);
        assert_eq!(stats.dangling_total, 1);
        assert_eq!(stats.projects_with_dangling, 1);
    }

    #[test]
    fn empty_history_defaults() {
        let prof = fk_profile(&SchemaHistory::default());
        assert_eq!(prof.transitions, 0);
        assert_eq!(prof.end_fk_table_pct(), 0.0);
    }
}
