//! Table-level lives — the paper's "open path": *"test the existence of
//! patterns at the table level"* (§VI), following the Electrolysis pattern
//! of the cited prior studies: dead tables gravitate to short lives with
//! little update activity, while survivors concentrate at long durations,
//! and the more active they are the longer they last.
//!
//! For every table that ever existed in a schema history this module
//! computes its *life*: birth/death versions, duration, and per-table
//! update activity (attribute injections/ejections/type/PK changes while
//! the table was alive).

use crate::intern::{intern, SymbolMap};
use crate::model::SchemaHistory;
use schevo_vcs::timestamp::Timestamp;
use serde::{Deserialize, Serialize};

/// The fate of a table at the end of the observed history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableFate {
    /// Present in the last version of the schema.
    Survivor,
    /// Removed before the last version.
    Dead,
}

/// The life of one table within a schema history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableLife {
    /// Table name.
    pub name: String,
    /// Index of the version where the table first appears (0 = V0).
    pub birth_version: usize,
    /// Index of the first version where the table is gone, if it died.
    pub death_version: Option<usize>,
    /// Timestamp of birth.
    pub born_at: Timestamp,
    /// Timestamp of death (the commit that removed it), if any.
    pub died_at: Option<Timestamp>,
    /// Duration in days: birth → death, or birth → end of history.
    pub duration_days: i64,
    /// Attributes at birth.
    pub arity_at_birth: usize,
    /// Attributes at death or at the end of history.
    pub arity_at_end: usize,
    /// Intra-table update activity over the table's life: injections +
    /// ejections + type changes + PK changes, in attributes.
    pub update_activity: u64,
    /// Survivor or dead.
    pub fate: TableFate,
}

impl TableLife {
    /// Whether the table never saw an intra-table update.
    pub fn is_quiet(&self) -> bool {
        self.update_activity == 0
    }
}

/// Compute the lives of every table from precomputed transition deltas
/// (one per transition, in transition order — see
/// [`crate::measures::compute_deltas`]).
///
/// A table that is dropped and later re-created under the same name gets
/// **two** lives (matching the table-level studies, which treat re-creation
/// as a new biography).
///
/// # Panics
///
/// Panics when `deltas.len()` differs from the history's transition
/// count.
pub fn table_lives_with(
    history: &SchemaHistory,
    deltas: &[crate::diff::SchemaDelta],
) -> Vec<TableLife> {
    assert_eq!(
        deltas.len(),
        history.transition_count(),
        "one delta per transition"
    );
    let mut lives: Vec<TableLife> = Vec::new();
    // Open lives by interned table name → index into `lives`. Keys are
    // symbols, so every per-delta lookup below is an integer probe; the
    // map is never iterated for output (only `values()` at the end, where
    // each entry is updated independently), so symbol-id order cannot
    // leak into results.
    let mut open: SymbolMap<usize> = SymbolMap::default();
    let Some(v0) = history.v0() else {
        return lives;
    };
    let end_ts = history.last().map(|v| v.meta.timestamp).unwrap_or(v0.meta.timestamp);
    let last_version = history.versions.len() - 1;

    // Birth pass for V0.
    for table in v0.schema.tables() {
        open.insert(intern(&table.name), lives.len());
        lives.push(TableLife {
            name: table.name.clone(),
            birth_version: 0,
            death_version: None,
            born_at: v0.meta.timestamp,
            died_at: None,
            duration_days: 0,
            arity_at_birth: table.arity(),
            arity_at_end: table.arity(),
            update_activity: 0,
            fate: TableFate::Survivor,
        });
    }

    for ((idx, old, new), delta) in history.transitions().zip(deltas) {
        // Deaths.
        for dead_name in &delta.tables_deleted {
            if let Some(i) = open.remove(&intern(dead_name)) {
                let life = &mut lives[i];
                life.death_version = Some(idx);
                life.died_at = Some(new.meta.timestamp);
                life.fate = TableFate::Dead;
                life.duration_days = new.meta.timestamp.days_since(life.born_at).max(0);
                life.arity_at_end = old
                    .schema
                    .table(dead_name)
                    .map(|t| t.arity())
                    .unwrap_or(life.arity_at_end);
            }
        }
        // Births.
        for born_name in &delta.tables_inserted {
            let arity = new
                .schema
                .table(born_name)
                .map(|t| t.arity())
                .unwrap_or(0);
            open.insert(intern(born_name), lives.len());
            lives.push(TableLife {
                name: born_name.clone(),
                birth_version: idx,
                death_version: None,
                born_at: new.meta.timestamp,
                died_at: None,
                duration_days: 0,
                arity_at_birth: arity,
                arity_at_end: arity,
                update_activity: 0,
                fate: TableFate::Survivor,
            });
        }
        // Intra-table activity for surviving tables.
        let credit = |lives: &mut Vec<TableLife>, open: &SymbolMap<usize>, t: &str, n: u64| {
            if let Some(&i) = open.get(&intern(t)) {
                lives[i].update_activity += n;
            }
        };
        for (t, _) in &delta.injected {
            credit(&mut lives, &open, t, 1);
        }
        for (t, _) in &delta.ejected {
            credit(&mut lives, &open, t, 1);
        }
        for (t, _) in &delta.type_changed {
            credit(&mut lives, &open, t, 1);
        }
        for (t, _) in &delta.pk_changed {
            credit(&mut lives, &open, t, 1);
        }
        // Track current arity of open tables.
        for table in new.schema.tables() {
            if let Some(&i) = open.get(&intern(&table.name)) {
                lives[i].arity_at_end = table.arity();
            }
        }
        let _ = last_version;
    }
    // Close survivors at the end of history.
    for &i in open.values() {
        let life = &mut lives[i];
        life.duration_days = end_ts.days_since(life.born_at).max(0);
    }
    lives
}

/// Compute the lives of every table that ever appeared in the history.
pub fn table_lives(history: &SchemaHistory) -> Vec<TableLife> {
    table_lives_with(history, &crate::measures::compute_deltas(history))
}

/// The four Electrolysis quadrants: duration (short/long, split at the
/// pooled median) × update activity (quiet/active).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableQuadrant {
    /// Short life, no updates — where dead tables gravitate.
    ShortQuiet,
    /// Short life despite updates.
    ShortActive,
    /// Long life without updates.
    LongQuiet,
    /// Long, actively maintained life — where survivors gravitate.
    LongActive,
}

/// Assign each life to a quadrant, splitting duration at the pooled median.
pub fn quadrants(lives: &[TableLife]) -> Vec<(TableQuadrant, &TableLife)> {
    if lives.is_empty() {
        return Vec::new();
    }
    let durations: Vec<f64> = lives.iter().map(|l| l.duration_days as f64).collect();
    let median = schevo_stats::median(&durations);
    lives
        .iter()
        .map(|l| {
            let long = l.duration_days as f64 > median;
            let q = match (long, l.is_quiet()) {
                (false, true) => TableQuadrant::ShortQuiet,
                (false, false) => TableQuadrant::ShortActive,
                (true, true) => TableQuadrant::LongQuiet,
                (true, false) => TableQuadrant::LongActive,
            };
            (q, l)
        })
        .collect()
}

/// The fate × activity contingency table `[[dead_quiet, dead_active],
/// [survivor_quiet, survivor_active]]` — input to the χ² independence test
/// that makes the Electrolysis claim statistical.
pub fn fate_activity_table(lives: &[TableLife]) -> [[u64; 2]; 2] {
    let mut t = [[0u64; 2]; 2];
    for l in lives {
        let row = usize::from(l.fate == TableFate::Survivor);
        let col = usize::from(!l.is_quiet());
        t[row][col] += 1;
    }
    t
}

/// Aggregate Electrolysis-style statistics over a set of table lives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ElectrolysisStats {
    /// Total tables observed.
    pub tables: usize,
    /// Survivors.
    pub survivors: usize,
    /// Dead tables.
    pub dead: usize,
    /// Median duration (days) of survivors.
    pub survivor_median_duration: f64,
    /// Median duration (days) of dead tables.
    pub dead_median_duration: f64,
    /// Share of dead tables that never saw an update (the "quiet death").
    pub dead_quiet_pct: f64,
    /// Share of survivors with at least one update.
    pub survivor_active_pct: f64,
    /// Median update activity of active survivors.
    pub active_survivor_median_activity: f64,
}

/// Compute the Electrolysis aggregate over many lives (typically pooled
/// across a corpus).
pub fn electrolysis(lives: &[TableLife]) -> ElectrolysisStats {
    let survivors: Vec<&TableLife> = lives.iter().filter(|l| l.fate == TableFate::Survivor).collect();
    let dead: Vec<&TableLife> = lives.iter().filter(|l| l.fate == TableFate::Dead).collect();
    let med = |v: &[f64]| if v.is_empty() { 0.0 } else { schevo_stats::median(v) };
    let surv_dur: Vec<f64> = survivors.iter().map(|l| l.duration_days as f64).collect();
    let dead_dur: Vec<f64> = dead.iter().map(|l| l.duration_days as f64).collect();
    let active_surv: Vec<f64> = survivors
        .iter()
        .filter(|l| l.update_activity > 0)
        .map(|l| l.update_activity as f64)
        .collect();
    ElectrolysisStats {
        tables: lives.len(),
        survivors: survivors.len(),
        dead: dead.len(),
        survivor_median_duration: med(&surv_dur),
        dead_median_duration: med(&dead_dur),
        dead_quiet_pct: if dead.is_empty() {
            0.0
        } else {
            100.0 * dead.iter().filter(|l| l.is_quiet()).count() as f64 / dead.len() as f64
        },
        survivor_active_pct: if survivors.is_empty() {
            0.0
        } else {
            100.0 * survivors.iter().filter(|l| !l.is_quiet()).count() as f64
                / survivors.len() as f64
        },
        active_survivor_median_activity: med(&active_surv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CommitMeta, SchemaVersion};
    use schevo_ddl::parse_schema;

    fn version(day: i64, sql: &str) -> SchemaVersion {
        SchemaVersion {
            meta: CommitMeta {
                id: format!("c{day}"),
                timestamp: Timestamp::from_date(2018, 1, 1) + day * 86_400,
                author: "dev".into(),
                message: String::new(),
            },
            schema: parse_schema(sql).unwrap(),
            source_len: sql.len(),
        }
    }

    fn history(specs: &[(i64, &str)]) -> SchemaHistory {
        SchemaHistory {
            project: "t/p".into(),
            versions: specs.iter().map(|&(d, s)| version(d, s)).collect(),
        }
    }

    #[test]
    fn survivor_and_dead_lives() {
        let h = history(&[
            (0, "CREATE TABLE keep (a INT); CREATE TABLE doomed (x INT, y INT);"),
            (50, "CREATE TABLE keep (a INT, b INT); CREATE TABLE doomed (x INT, y INT);"),
            (100, "CREATE TABLE keep (a INT, b INT);"),
        ]);
        let lives = table_lives(&h);
        assert_eq!(lives.len(), 2);
        let keep = lives.iter().find(|l| l.name == "keep").unwrap();
        assert_eq!(keep.fate, TableFate::Survivor);
        assert_eq!(keep.duration_days, 100);
        assert_eq!(keep.update_activity, 1, "one injection");
        assert_eq!((keep.arity_at_birth, keep.arity_at_end), (1, 2));
        let doomed = lives.iter().find(|l| l.name == "doomed").unwrap();
        assert_eq!(doomed.fate, TableFate::Dead);
        assert_eq!(doomed.death_version, Some(2));
        assert_eq!(doomed.duration_days, 100);
        assert!(doomed.is_quiet());
    }

    #[test]
    fn mid_life_birth() {
        let h = history(&[
            (0, "CREATE TABLE a (x INT);"),
            (30, "CREATE TABLE a (x INT); CREATE TABLE late (y INT);"),
            (90, "CREATE TABLE a (x INT); CREATE TABLE late (y INT, z INT);"),
        ]);
        let lives = table_lives(&h);
        let late = lives.iter().find(|l| l.name == "late").unwrap();
        assert_eq!(late.birth_version, 1);
        assert_eq!(late.duration_days, 60);
        assert_eq!(late.update_activity, 1);
    }

    #[test]
    fn recreated_table_gets_two_lives() {
        let h = history(&[
            (0, "CREATE TABLE t (a INT); CREATE TABLE other (o INT);"),
            (10, "CREATE TABLE other (o INT);"),
            (20, "CREATE TABLE t (a INT, b INT); CREATE TABLE other (o INT);"),
        ]);
        let lives = table_lives(&h);
        let t_lives: Vec<&TableLife> = lives.iter().filter(|l| l.name == "t").collect();
        assert_eq!(t_lives.len(), 2);
        assert_eq!(t_lives[0].fate, TableFate::Dead);
        assert_eq!(t_lives[1].fate, TableFate::Survivor);
        assert_eq!(t_lives[1].arity_at_birth, 2);
    }

    #[test]
    fn electrolysis_aggregate() {
        let h = history(&[
            (0, "CREATE TABLE s1 (a INT); CREATE TABLE s2 (b INT); CREATE TABLE d (x INT);"),
            (5, "CREATE TABLE s1 (a INT, a2 INT); CREATE TABLE s2 (b INT); CREATE TABLE d (x INT);"),
            (400, "CREATE TABLE s1 (a INT, a2 INT); CREATE TABLE s2 (b INT);"),
        ]);
        let lives = table_lives(&h);
        let stats = electrolysis(&lives);
        assert_eq!(stats.tables, 3);
        assert_eq!(stats.survivors, 2);
        assert_eq!(stats.dead, 1);
        assert_eq!(stats.dead_quiet_pct, 100.0);
        assert_eq!(stats.survivor_active_pct, 50.0);
        assert_eq!(stats.survivor_median_duration, 400.0);
    }

    #[test]
    fn quadrants_split_at_median_duration() {
        let mk = |days: i64, activity: u64, fate: TableFate| TableLife {
            name: "t".into(),
            birth_version: 0,
            death_version: None,
            born_at: Timestamp(0),
            died_at: None,
            duration_days: days,
            arity_at_birth: 1,
            arity_at_end: 1,
            update_activity: activity,
            fate,
        };
        let lives = vec![
            mk(10, 0, TableFate::Dead),
            mk(20, 5, TableFate::Dead),
            mk(500, 0, TableFate::Survivor),
            mk(600, 9, TableFate::Survivor),
        ];
        let q = quadrants(&lives);
        assert_eq!(q[0].0, TableQuadrant::ShortQuiet);
        assert_eq!(q[1].0, TableQuadrant::ShortActive);
        assert_eq!(q[2].0, TableQuadrant::LongQuiet);
        assert_eq!(q[3].0, TableQuadrant::LongActive);
        let ct = fate_activity_table(&lives);
        assert_eq!(ct, [[1, 1], [1, 1]]);
        assert!(quadrants(&[]).is_empty());
    }

    #[test]
    fn contingency_feeds_chi2() {
        // Strong dependence: dead tables quiet, survivors active.
        let mk = |q: bool, fate: TableFate| TableLife {
            name: "t".into(),
            birth_version: 0,
            death_version: None,
            born_at: Timestamp(0),
            died_at: None,
            duration_days: 100,
            arity_at_birth: 1,
            arity_at_end: 1,
            update_activity: u64::from(!q),
            fate,
        };
        let mut lives = Vec::new();
        for _ in 0..40 {
            lives.push(mk(true, TableFate::Dead));
            lives.push(mk(false, TableFate::Survivor));
        }
        for _ in 0..5 {
            lives.push(mk(false, TableFate::Dead));
            lives.push(mk(true, TableFate::Survivor));
        }
        let ct = fate_activity_table(&lives);
        let rows: Vec<Vec<u64>> = ct.iter().map(|r| r.to_vec()).collect();
        let test = schevo_stats::chi2_independence(&rows).unwrap();
        assert!(test.p_value < 1e-10, "fate and activity are dependent");
    }

    #[test]
    fn empty_history_no_lives() {
        let lives = table_lives(&SchemaHistory::default());
        assert!(lives.is_empty());
        let stats = electrolysis(&lives);
        assert_eq!(stats.tables, 0);
        assert_eq!(stats.dead_quiet_pct, 0.0);
    }
}
