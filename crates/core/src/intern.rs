//! A global string-interning table for schema identifiers.
//!
//! The diff engine compares the same table and attribute names thousands of
//! times across a history: every transition re-hashes `users`, `id`,
//! `created_at`, … as full strings. Interning maps each distinct name to a
//! dense [`Symbol`] (`u32`) once, after which equality and map lookups are
//! integer operations.
//!
//! ## Determinism contract
//!
//! Symbol *ids* depend on interning order, which depends on thread
//! interleaving when several mining workers intern concurrently. Ids must
//! therefore never escape into any serialized or user-visible artifact:
//! [`crate::diff::SchemaDelta`] carries plain `String`s cloned from the
//! input schemas, and symbols are used only for *matching* inside a single
//! `diff` call. The interner itself only grows — symbols stay valid for the
//! process lifetime, which is what lets them outlive any `CandidateStream`
//! or cached delta that was produced while holding one.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock};

/// An interned string: a dense index into the global symbol table.
///
/// `Copy`, 4 bytes, and equality/hashing are integer operations. Two
/// symbols are equal iff the strings they intern are byte-equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw table index. Only meaningful within this process.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// The global symbol table: string → id plus the reverse side.
pub(crate) struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Intern one string, allocating only on first sight.
    pub(crate) fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        Symbol(id)
    }
}

static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();

fn table() -> &'static Mutex<Interner> {
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Run `f` with exclusive access to the global interner. Batch callers
/// (schema-view construction in `diff`) use this to pay one lock per
/// schema instead of one per name.
pub(crate) fn with_interner<R>(f: impl FnOnce(&mut Interner) -> R) -> R {
    let mut guard = match table().lock() {
        Ok(g) => g,
        // A panic while holding the lock cannot leave the table in a
        // broken state (push + insert are the only mutations), so the
        // poisoned value is still usable.
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Intern `name`, returning its stable per-process [`Symbol`].
pub fn intern(name: &str) -> Symbol {
    with_interner(|t| t.intern(name))
}

/// Resolve a symbol back to its string (cloned out of the table).
///
/// Returns `None` only for a `Symbol` forged from another process — every
/// symbol handed out by [`intern`] resolves.
pub fn resolve(sym: Symbol) -> Option<String> {
    with_interner(|t| t.strings.get(sym.0 as usize).cloned())
}

/// Number of distinct strings interned so far — exported as the
/// `intern.symbols` gauge by the mining engine.
pub fn symbol_count() -> usize {
    with_interner(|t| t.strings.len())
}

/// A pass-through hasher for [`Symbol`] keys: the symbol id is already a
/// dense unique integer, so it only needs mixing, not a full SipHash pass.
#[derive(Default)]
pub struct SymbolHasher(u64);

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not used by Symbol's Hash impl, which is a single
        // write_u32): fold bytes in so the hasher stays correct for any key.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        // Fibonacci multiplicative mix — spreads dense low ids across the
        // full 64-bit space so HashMap bucket selection stays uniform.
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A `HashMap` keyed by [`Symbol`] with the pass-through hasher.
pub type SymbolMap<V> = HashMap<Symbol, V, BuildHasherDefault<SymbolHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_distinct() {
        let a1 = intern("users");
        let a2 = intern("users");
        let b = intern("orders");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(resolve(a1).as_deref(), Some("users"));
        assert_eq!(resolve(b).as_deref(), Some("orders"));
    }

    #[test]
    fn symbol_count_grows_monotonically() {
        let before = symbol_count();
        // Process-global table: use names no other test interns.
        intern("intern_test_unique_name_one");
        intern("intern_test_unique_name_two");
        intern("intern_test_unique_name_one");
        assert_eq!(symbol_count(), before + 2);
    }

    #[test]
    fn symbol_map_round_trips() {
        let mut m: SymbolMap<usize> = SymbolMap::default();
        let syms: Vec<Symbol> = (0..100)
            .map(|i| intern(&format!("intern_test_col_{i}")))
            .collect();
        for (i, &s) in syms.iter().enumerate() {
            m.insert(s, i);
        }
        assert_eq!(m.len(), 100);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(m.get(s), Some(&i));
        }
    }

    #[test]
    fn empty_and_unicode_names_intern() {
        let e = intern("");
        let u = intern("naïve_täble");
        assert_eq!(resolve(e).as_deref(), Some(""));
        assert_eq!(resolve(u).as_deref(), Some("naïve_täble"));
        assert_ne!(e, u);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let names: Vec<String> = (0..50).map(|i| format!("intern_test_race_{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| intern(n)).collect::<Vec<Symbol>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &results[1..] {
            assert_eq!(w, &results[0], "same string must yield the same symbol");
        }
    }
}
