//! The heartbeat `H = {c_i(e_i, m_i)}` — the ordered list of
//! (expansion, maintenance) pairs, one per commit — and the reed/turf
//! vocabulary built on it (§III-B).

use crate::measures::TransitionMeasure;
use schevo_stats::threshold::reed_limit;
use serde::{Deserialize, Serialize};

/// The paper's reed limit: commits with total activity **strictly above 14
/// attributes** are *reeds*; active commits at or below it are *turf*.
/// Derived from the 85% split of single-active-commit project activities
/// (see [`derive_reed_threshold`]); the constant is the paper's published
/// value.
pub const REED_THRESHOLD: u64 = 14;

/// One heartbeat point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatPoint {
    /// 1-based transition id.
    pub transition_id: usize,
    /// Expansion (attributes added), drawn above the x-axis in the paper.
    pub expansion: u64,
    /// Maintenance (deletions, type or PK changes), drawn below the x-axis.
    pub maintenance: u64,
}

impl HeartbeatPoint {
    /// Total activity of the commit.
    pub fn activity(&self) -> u64 {
        self.expansion + self.maintenance
    }

    /// Whether the commit is active.
    pub fn is_active(&self) -> bool {
        self.activity() > 0
    }

    /// Whether the commit is a reed under `threshold`.
    pub fn is_reed(&self, threshold: u64) -> bool {
        self.activity() > threshold
    }

    /// Whether the commit is turf (active but not a reed) under `threshold`.
    pub fn is_turf(&self, threshold: u64) -> bool {
        self.is_active() && !self.is_reed(threshold)
    }
}

/// The heartbeat of one schema history.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Points in transition order.
    pub points: Vec<HeartbeatPoint>,
}

impl Heartbeat {
    /// Build the heartbeat from measured transitions.
    pub fn from_measures(measures: &[TransitionMeasure]) -> Heartbeat {
        Heartbeat {
            points: measures
                .iter()
                .map(|m| HeartbeatPoint {
                    transition_id: m.transition_id,
                    expansion: m.expansion(),
                    maintenance: m.maintenance(),
                })
                .collect(),
        }
    }

    /// Total activity over the whole history.
    pub fn total_activity(&self) -> u64 {
        self.points.iter().map(|p| p.activity()).sum()
    }

    /// Total expansion.
    pub fn total_expansion(&self) -> u64 {
        self.points.iter().map(|p| p.expansion).sum()
    }

    /// Total maintenance.
    pub fn total_maintenance(&self) -> u64 {
        self.points.iter().map(|p| p.maintenance).sum()
    }

    /// Number of active commits.
    pub fn active_commits(&self) -> u64 {
        self.points.iter().filter(|p| p.is_active()).count() as u64
    }

    /// Number of reeds under `threshold`.
    pub fn reeds(&self, threshold: u64) -> u64 {
        self.points.iter().filter(|p| p.is_reed(threshold)).count() as u64
    }

    /// Number of turf commits under `threshold`.
    pub fn turf(&self, threshold: u64) -> u64 {
        self.points.iter().filter(|p| p.is_turf(threshold)).count() as u64
    }

    /// The largest single-commit activity (0 for an empty heartbeat).
    pub fn peak_activity(&self) -> u64 {
        self.points.iter().map(|p| p.activity()).max().unwrap_or(0)
    }

    /// Fraction of total activity concentrated in the single largest commit
    /// (0.0 for a zero-activity heartbeat) — the "90% of the project's
    /// post-V0 activity in one reed" observation of §IV-E.
    pub fn peak_concentration(&self) -> f64 {
        let total = self.total_activity();
        if total == 0 {
            0.0
        } else {
            self.peak_activity() as f64 / total as f64
        }
    }
}

/// Derive the reed threshold exactly as §III-B prescribes: take the total
/// activities of all projects with a **single active commit**, sort them
/// (a power-law-like distribution), and split at the 85% limit.
///
/// Returns [`REED_THRESHOLD`] when fewer than 5 qualifying projects exist
/// (the derivation is meaningless on tiny corpora).
pub fn derive_reed_threshold(single_active_commit_activities: &[u64]) -> u64 {
    if single_active_commit_activities.len() < 5 {
        return REED_THRESHOLD;
    }
    let v: Vec<f64> = single_active_commit_activities
        .iter()
        .map(|&a| a as f64)
        .collect();
    reed_limit(&v).unwrap_or(REED_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(points: &[(u64, u64)]) -> Heartbeat {
        Heartbeat {
            points: points
                .iter()
                .enumerate()
                .map(|(i, &(e, m))| HeartbeatPoint {
                    transition_id: i + 1,
                    expansion: e,
                    maintenance: m,
                })
                .collect(),
        }
    }

    #[test]
    fn totals_and_counts() {
        let h = hb(&[(0, 0), (3, 1), (20, 0), (0, 2)]);
        assert_eq!(h.total_activity(), 26);
        assert_eq!(h.total_expansion(), 23);
        assert_eq!(h.total_maintenance(), 3);
        assert_eq!(h.active_commits(), 3);
        assert_eq!(h.reeds(REED_THRESHOLD), 1);
        assert_eq!(h.turf(REED_THRESHOLD), 2);
    }

    #[test]
    fn reed_is_strictly_above_threshold() {
        let h = hb(&[(14, 0), (15, 0), (7, 7), (8, 7)]);
        // Activities: 14, 15, 14, 15 → two reeds.
        assert_eq!(h.reeds(14), 2);
        assert_eq!(h.turf(14), 2);
    }

    #[test]
    fn inactive_commits_are_neither_reed_nor_turf() {
        let p = HeartbeatPoint {
            transition_id: 1,
            expansion: 0,
            maintenance: 0,
        };
        assert!(!p.is_active());
        assert!(!p.is_reed(14));
        assert!(!p.is_turf(14));
    }

    #[test]
    fn peak_concentration() {
        let h = hb(&[(190, 0), (5, 0), (5, 0)]);
        assert_eq!(h.peak_activity(), 190);
        assert!((h.peak_concentration() - 0.95).abs() < 1e-12);
        assert_eq!(hb(&[]).peak_concentration(), 0.0);
        assert_eq!(hb(&[(0, 0)]).peak_concentration(), 0.0);
    }

    #[test]
    fn derive_threshold_small_corpus_falls_back() {
        assert_eq!(derive_reed_threshold(&[1, 2, 3]), REED_THRESHOLD);
        assert_eq!(derive_reed_threshold(&[]), REED_THRESHOLD);
    }

    #[test]
    fn derive_threshold_power_law() {
        // 85 small activities spread over 1..=14, 15 in the long tail.
        let mut v: Vec<u64> = (0..85).map(|i| (i % 14) + 1).collect();
        v.extend((0..15).map(|i| 25 + i * 30));
        let t = derive_reed_threshold(&v);
        assert!((12..=20).contains(&t), "t = {t}");
    }

    #[test]
    fn empty_heartbeat_zeroes() {
        let h = hb(&[]);
        assert_eq!(h.total_activity(), 0);
        assert_eq!(h.active_commits(), 0);
        assert_eq!(h.peak_activity(), 0);
    }
}
