//! The attribute-level schema diff engine (the reproduction of *Hecate*).
//!
//! For a transition `old → new` the engine identifies and quantifies the
//! paper's six update categories, *all measured in attributes* (§III-B):
//!
//! | category | meaning |
//! |---|---|
//! | born      | attributes born with a new table |
//! | injected  | attributes injected into an existing table |
//! | deleted   | attributes deleted with a removed table |
//! | ejected   | attributes ejected from a surviving table |
//! | type-changed | attributes whose data type changed |
//! | pk-changed   | attributes whose primary-key participation changed |
//!
//! **Expansion** = born + injected; **Maintenance** = the other four;
//! **Activity** = Expansion + Maintenance. An attribute that changes both
//! its type and its key participation counts once in each category — the
//! categories quantify *updates*, not touched attributes.

use crate::intern::{self, Symbol, SymbolMap};
use schevo_ddl::{Schema, Table};
use serde::{Deserialize, Serialize};

/// A named attribute occurrence `(table, attribute)`.
pub type AttrRef = (String, String);

/// The outcome of diffing two schema versions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaDelta {
    /// Names of tables present in `new` but not `old`.
    pub tables_inserted: Vec<String>,
    /// Names of tables present in `old` but not `new`.
    pub tables_deleted: Vec<String>,
    /// Attributes born with new tables.
    pub born: Vec<AttrRef>,
    /// Attributes injected into surviving tables.
    pub injected: Vec<AttrRef>,
    /// Attributes deleted together with their table.
    pub deleted: Vec<AttrRef>,
    /// Attributes ejected from surviving tables.
    pub ejected: Vec<AttrRef>,
    /// Attributes (in surviving tables) whose data type changed.
    pub type_changed: Vec<AttrRef>,
    /// Attributes (in surviving tables) whose PK participation changed.
    pub pk_changed: Vec<AttrRef>,
    /// Foreign keys present in `new` but not `old` (keyed by owning table).
    /// **Not** part of the paper's activity measures; tracked for the
    /// foreign-key extension study (`crate::fk`).
    pub fk_added: Vec<(String, schevo_ddl::schema::ForeignKey)>,
    /// Foreign keys present in `old` but not `new` — same caveat.
    pub fk_removed: Vec<(String, schevo_ddl::schema::ForeignKey)>,
}

impl SchemaDelta {
    /// Expansion in attributes: born + injected.
    pub fn expansion(&self) -> u64 {
        (self.born.len() + self.injected.len()) as u64
    }

    /// Maintenance in attributes: deleted + ejected + type + PK changes.
    pub fn maintenance(&self) -> u64 {
        (self.deleted.len() + self.ejected.len() + self.type_changed.len() + self.pk_changed.len())
            as u64
    }

    /// Total activity: expansion + maintenance.
    pub fn activity(&self) -> u64 {
        self.expansion() + self.maintenance()
    }

    /// Whether the transition is an *active commit* (activity > 0).
    pub fn is_active(&self) -> bool {
        self.activity() > 0
    }

    /// Number of tables inserted.
    pub fn table_insertions(&self) -> u64 {
        self.tables_inserted.len() as u64
    }

    /// Number of tables deleted.
    pub fn table_deletions(&self) -> u64 {
        self.tables_deleted.len() as u64
    }
}

/// A [`Table`] annotated with interned identifiers: attribute symbols in
/// declaration order, a symbol-keyed attribute index, and the primary key
/// as symbols. All matching inside [`diff`] happens on these `u32` views;
/// the emitted [`SchemaDelta`] clones strings back out of the table itself.
struct TableView<'a> {
    table: &'a Table,
    /// Attribute symbols, parallel to `table.attributes()`.
    attr_syms: Vec<Symbol>,
    /// Symbol → index into `table.attributes()`. Attribute names are
    /// unique within a table (`push_attribute` replaces in place), so the
    /// map is total over `attr_syms`.
    attrs: SymbolMap<u32>,
    /// Primary-key attribute symbols, in key order.
    pk: Vec<Symbol>,
}

impl TableView<'_> {
    fn attribute(&self, sym: Symbol) -> Option<&schevo_ddl::Attribute> {
        self.attrs
            .get(&sym)
            .and_then(|&i| self.table.attributes().get(i as usize))
    }

    fn in_primary_key(&self, sym: Symbol) -> bool {
        self.pk.contains(&sym)
    }
}

/// A [`Schema`] annotated with interned identifiers: table views in file
/// order plus a symbol-keyed table index.
struct SchemaView<'a> {
    tables: Vec<(Symbol, TableView<'a>)>,
    index: SymbolMap<u32>,
}

impl<'a> SchemaView<'a> {
    /// Build the view, interning every table and attribute name. One lock
    /// acquisition per schema, not per name.
    fn build(schema: &'a Schema) -> Self {
        intern::with_interner(|it| {
            let mut tables = Vec::with_capacity(schema.tables().len());
            let mut index = SymbolMap::default();
            for (ti, table) in schema.tables().iter().enumerate() {
                let tsym = it.intern(&table.name);
                let attr_syms: Vec<Symbol> = table
                    .attributes()
                    .iter()
                    .map(|a| it.intern(&a.name))
                    .collect();
                let mut attrs = SymbolMap::default();
                attrs.reserve(attr_syms.len());
                for (ai, &asym) in attr_syms.iter().enumerate() {
                    attrs.insert(asym, ai as u32);
                }
                let pk = table
                    .primary_key()
                    .iter()
                    .map(|k| it.intern(k))
                    .collect();
                index.insert(tsym, ti as u32);
                tables.push((
                    tsym,
                    TableView {
                        table,
                        attr_syms,
                        attrs,
                        pk,
                    },
                ));
            }
            SchemaView { tables, index }
        })
    }

    fn table(&self, sym: Symbol) -> Option<&TableView<'a>> {
        self.index
            .get(&sym)
            .and_then(|&i| self.tables.get(i as usize))
            .map(|(_, tv)| tv)
    }
}

/// Diff two schema versions into a [`SchemaDelta`].
///
/// Tables and attributes are matched by name; renames register as a
/// delete/insert pair, mirroring the original Hecate tool (rename detection
/// is undecidable from DDL text alone and the paper's measures do not
/// include it).
///
/// Internally names are interned ([`crate::intern`]) and matched as `u32`
/// symbols; the emitted delta carries strings cloned from the input
/// schemas in file order, so the output is bit-identical to a string-keyed
/// diff and independent of symbol-id assignment order.
pub fn diff(old: &Schema, new: &Schema) -> SchemaDelta {
    let _span = schevo_obs::span!("core.diff");
    let mut delta = SchemaDelta::default();
    let old_view = SchemaView::build(old);
    let new_view = SchemaView::build(new);

    for (tsym, tv) in &new_view.tables {
        let table = tv.table;
        match old_view.table(*tsym) {
            None => {
                delta.tables_inserted.push(table.name.clone());
                for attr in table.attributes() {
                    delta.born.push((table.name.clone(), attr.name.clone()));
                }
            }
            Some(old_tv) => {
                let old_table = old_tv.table;
                // Surviving table: attribute-level comparison on symbols.
                for (attr, &asym) in table.attributes().iter().zip(&tv.attr_syms) {
                    match old_tv.attribute(asym) {
                        None => {
                            delta
                                .injected
                                .push((table.name.clone(), attr.name.clone()));
                        }
                        Some(old_attr) => {
                            if !old_attr.data_type.logical_eq(&attr.data_type) {
                                delta
                                    .type_changed
                                    .push((table.name.clone(), attr.name.clone()));
                            }
                            let was_pk = old_tv.in_primary_key(asym);
                            let is_pk = tv.in_primary_key(asym);
                            if was_pk != is_pk {
                                delta
                                    .pk_changed
                                    .push((table.name.clone(), attr.name.clone()));
                            }
                        }
                    }
                }
                for (old_attr, &asym) in old_table.attributes().iter().zip(&old_tv.attr_syms) {
                    if !tv.attrs.contains_key(&asym) {
                        delta
                            .ejected
                            .push((table.name.clone(), old_attr.name.clone()));
                    }
                }
                // FK set comparison (multiset by value) for surviving tables.
                for fk in table.foreign_keys() {
                    let before = old_table.foreign_keys().iter().filter(|f| *f == fk).count();
                    let after = table.foreign_keys().iter().filter(|f| *f == fk).count();
                    if after > before
                        && delta
                            .fk_added
                            .iter()
                            .filter(|(t, f)| t == &table.name && f == fk)
                            .count()
                            < after - before
                    {
                        delta.fk_added.push((table.name.clone(), fk.clone()));
                    }
                }
                for fk in old_table.foreign_keys() {
                    let before = old_table.foreign_keys().iter().filter(|f| *f == fk).count();
                    let after = table.foreign_keys().iter().filter(|f| *f == fk).count();
                    if before > after
                        && delta
                            .fk_removed
                            .iter()
                            .filter(|(t, f)| t == &table.name && f == fk)
                            .count()
                            < before - after
                    {
                        delta.fk_removed.push((table.name.clone(), fk.clone()));
                    }
                }
            }
        }
    }
    for (tsym, old_tv) in &old_view.tables {
        if !new_view.index.contains_key(tsym) {
            let old_table = old_tv.table;
            delta.tables_deleted.push(old_table.name.clone());
            for attr in old_table.attributes() {
                delta
                    .deleted
                    .push((old_table.name.clone(), attr.name.clone()));
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_ddl::parse_schema;

    fn s(sql: &str) -> Schema {
        parse_schema(sql).unwrap()
    }

    #[test]
    fn identical_schemas_are_inactive() {
        let a = s("CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a));");
        let d = diff(&a, &a);
        assert_eq!(d, SchemaDelta::default());
        assert!(!d.is_active());
        assert_eq!(d.activity(), 0);
    }

    #[test]
    fn new_table_births_attributes() {
        let old = s("CREATE TABLE t (a INT);");
        let new = s("CREATE TABLE t (a INT); CREATE TABLE u (x INT, y INT, z INT);");
        let d = diff(&old, &new);
        assert_eq!(d.tables_inserted, vec!["u".to_string()]);
        assert_eq!(d.born.len(), 3);
        assert_eq!(d.expansion(), 3);
        assert_eq!(d.maintenance(), 0);
    }

    #[test]
    fn dropped_table_deletes_attributes() {
        let old = s("CREATE TABLE t (a INT); CREATE TABLE u (x INT, y INT);");
        let new = s("CREATE TABLE t (a INT);");
        let d = diff(&old, &new);
        assert_eq!(d.tables_deleted, vec!["u".to_string()]);
        assert_eq!(d.deleted.len(), 2);
        assert_eq!(d.maintenance(), 2);
        assert_eq!(d.expansion(), 0);
    }

    #[test]
    fn injection_and_ejection_in_surviving_table() {
        let old = s("CREATE TABLE t (a INT, gone TEXT);");
        let new = s("CREATE TABLE t (a INT, fresh TEXT);");
        let d = diff(&old, &new);
        assert_eq!(d.injected, vec![("t".to_string(), "fresh".to_string())]);
        assert_eq!(d.ejected, vec![("t".to_string(), "gone".to_string())]);
        assert_eq!(d.expansion(), 1);
        assert_eq!(d.maintenance(), 1);
        assert_eq!(d.activity(), 2);
    }

    #[test]
    fn type_change_detected_logically() {
        let old = s("CREATE TABLE t (a INT(11), b VARCHAR(100));");
        let new = s("CREATE TABLE t (a INTEGER, b VARCHAR(255));");
        let d = diff(&old, &new);
        // a: INT(11) vs INTEGER is cosmetic; b: length change is real.
        assert_eq!(d.type_changed, vec![("t".to_string(), "b".to_string())]);
        assert_eq!(d.activity(), 1);
    }

    #[test]
    fn pk_change_counts_each_participant() {
        let old = s("CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY (a));");
        let new = s("CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY (b, c));");
        let d = diff(&old, &new);
        // a leaves the key; b and c enter it.
        assert_eq!(d.pk_changed.len(), 3);
        assert_eq!(d.maintenance(), 3);
    }

    #[test]
    fn type_and_pk_change_both_count() {
        let old = s("CREATE TABLE t (a INT, PRIMARY KEY (a));");
        let new = s("CREATE TABLE t (a BIGINT);");
        let d = diff(&old, &new);
        assert_eq!(d.type_changed.len(), 1);
        assert_eq!(d.pk_changed.len(), 1);
        assert_eq!(d.activity(), 2);
    }

    #[test]
    fn rename_is_delete_plus_insert() {
        let old = s("CREATE TABLE old_name (a INT);");
        let new = s("CREATE TABLE new_name (a INT);");
        let d = diff(&old, &new);
        assert_eq!(d.table_insertions(), 1);
        assert_eq!(d.table_deletions(), 1);
        assert_eq!(d.born.len(), 1);
        assert_eq!(d.deleted.len(), 1);
    }

    #[test]
    fn empty_to_populated_and_back() {
        let empty = Schema::new();
        let full = s("CREATE TABLE t (a INT, b INT);");
        let grow = diff(&empty, &full);
        assert_eq!(grow.expansion(), 2);
        let shrink = diff(&full, &empty);
        assert_eq!(shrink.maintenance(), 2);
        // Categories mirror under swap.
        assert_eq!(grow.born.len(), shrink.deleted.len());
    }

    #[test]
    fn fk_changes_tracked_but_not_active() {
        let old = s("CREATE TABLE p (id INT); CREATE TABLE c (id INT, pid INT);");
        let new = s("CREATE TABLE p (id INT); CREATE TABLE c (id INT, pid INT, \
                     FOREIGN KEY (pid) REFERENCES p (id));");
        let d = diff(&old, &new);
        assert_eq!(d.fk_added.len(), 1);
        assert_eq!(d.fk_added[0].0, "c");
        assert!(d.fk_removed.is_empty());
        assert!(!d.is_active(), "FK changes are not activity (§III-B)");
        let back = diff(&new, &old);
        assert_eq!(back.fk_removed.len(), 1);
        assert!(back.fk_added.is_empty());
    }

    #[test]
    fn unchanged_fks_register_nothing() {
        let a = s("CREATE TABLE p (id INT); CREATE TABLE c (pid INT, \
                   FOREIGN KEY (pid) REFERENCES p (id));");
        let d = diff(&a, &a);
        assert!(d.fk_added.is_empty());
        assert!(d.fk_removed.is_empty());
    }

    #[test]
    fn index_changes_are_invisible() {
        let old = s("CREATE TABLE t (a INT, KEY idx_a (a));");
        let new = s("CREATE TABLE t (a INT);");
        assert!(!diff(&old, &new).is_active(), "index drop is non-logical");
    }

    #[test]
    fn not_null_change_is_not_counted() {
        // The paper's categories cover types and PKs, not nullability.
        let old = s("CREATE TABLE t (a INT);");
        let new = s("CREATE TABLE t (a INT NOT NULL);");
        assert!(!diff(&old, &new).is_active());
    }
}
