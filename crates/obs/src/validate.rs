//! Structural validators for the emitted observability artifacts.
//!
//! These are the "tiny validators" the CI gate runs against real CLI
//! output: they check the documented shape of the trace JSONL, the
//! metrics JSON, and the run manifest without pulling in a JSON-Schema
//! engine. Each returns a human-readable error naming the first
//! violation, or a count of validated records on success.

use serde_json::Value;

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing key `{key}`"))
}

fn expect_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a non-negative integer"))
}

fn expect_str<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a string"))
}

fn expect_bool(v: &Value, key: &str, ctx: &str) -> Result<bool, String> {
    field(v, key, ctx)?
        .as_bool()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a boolean"))
}

/// Validate Chrome-trace JSONL as emitted by `--trace-out`: every
/// non-empty line is a JSON object holding string `name`/`cat`, phase
/// `"X"`, and integer `ts`/`dur`/`pid`/`tid`, with `args` a map of
/// strings. Returns the number of validated events.
pub fn validate_trace_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("trace line {}", idx + 1);
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{ctx}: not valid JSON: {e}"))?;
        if v.as_map().is_none() {
            return Err(format!("{ctx}: not a JSON object"));
        }
        expect_str(&v, "name", &ctx)?;
        expect_str(&v, "cat", &ctx)?;
        let ph = expect_str(&v, "ph", &ctx)?;
        if ph != "X" {
            return Err(format!("{ctx}: `ph` is {ph:?}, expected \"X\""));
        }
        expect_u64(&v, "ts", &ctx)?;
        expect_u64(&v, "dur", &ctx)?;
        expect_u64(&v, "pid", &ctx)?;
        expect_u64(&v, "tid", &ctx)?;
        let args = field(&v, "args", &ctx)?;
        let Some(pairs) = args.as_map() else {
            return Err(format!("{ctx}: `args` is not an object"));
        };
        for (k, av) in pairs {
            if av.as_str().is_none() {
                return Err(format!("{ctx}: arg `{k}` is not a string"));
            }
        }
        count += 1;
    }
    Ok(count)
}

fn validate_histogram(h: &Value, ctx: &str) -> Result<(), String> {
    let count = expect_u64(h, "count", ctx)?;
    expect_u64(h, "sum", ctx)?;
    expect_u64(h, "min", ctx)?;
    expect_u64(h, "max", ctx)?;
    let buckets = field(h, "buckets", ctx)?
        .as_seq()
        .ok_or_else(|| format!("{ctx}: `buckets` is not an array"))?;
    if buckets.len() != crate::metrics::BUCKETS {
        return Err(format!(
            "{ctx}: expected {} buckets, found {}",
            crate::metrics::BUCKETS,
            buckets.len()
        ));
    }
    let mut total = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        let n = b
            .as_u64()
            .ok_or_else(|| format!("{ctx}: bucket {i} is not a non-negative integer"))?;
        total += n;
    }
    if total != count {
        return Err(format!(
            "{ctx}: bucket counts sum to {total} but `count` is {count}"
        ));
    }
    Ok(())
}

/// Check a `[name, value]` pair section (`counters` / `gauges`).
fn validate_scalar_section(v: &Value, section: &str) -> Result<usize, String> {
    let seq = field(v, section, "metrics")?
        .as_seq()
        .ok_or_else(|| format!("metrics: `{section}` is not an array"))?;
    for (i, pair) in seq.iter().enumerate() {
        let ctx = format!("metrics {section}[{i}]");
        let Some(entry) = pair.as_seq() else {
            return Err(format!("{ctx}: not a [name, value] pair"));
        };
        if entry.len() != 2 {
            return Err(format!("{ctx}: expected 2 elements, found {}", entry.len()));
        }
        if entry[0].as_str().is_none() {
            return Err(format!("{ctx}: name is not a string"));
        }
        if entry[1].as_u64().is_none() {
            return Err(format!("{ctx}: value is not a non-negative integer"));
        }
    }
    Ok(seq.len())
}

/// Validate metrics JSON as emitted by `--metrics-out`: `counters` and
/// `gauges` are `[name, u64]` pair lists, `histograms` are
/// `[name, histogram]` pairs whose bucket counts sum to `count`.
/// Returns the total number of validated metrics.
pub fn validate_metrics_json(text: &str) -> Result<usize, String> {
    let v: Value =
        serde_json::from_str(text).map_err(|e| format!("metrics: not valid JSON: {e}"))?;
    let mut total = validate_scalar_section(&v, "counters")?;
    total += validate_scalar_section(&v, "gauges")?;
    let hists = field(&v, "histograms", "metrics")?
        .as_seq()
        .ok_or_else(|| "metrics: `histograms` is not an array".to_string())?;
    for (i, pair) in hists.iter().enumerate() {
        let ctx = format!("metrics histograms[{i}]");
        let Some(entry) = pair.as_seq() else {
            return Err(format!("{ctx}: not a [name, histogram] pair"));
        };
        if entry.len() != 2 || entry[0].as_str().is_none() {
            return Err(format!("{ctx}: expected [name, histogram]"));
        }
        validate_histogram(&entry[1], &ctx)?;
    }
    Ok(total + hists.len())
}

/// Validate a run manifest as emitted by `--manifest-out`. Checks the
/// schema version, every required scalar, the stage list, the quarantine
/// block, and (when present) the journal block. Returns the number of
/// stages recorded.
pub fn validate_manifest_json(text: &str) -> Result<usize, String> {
    let v: Value =
        serde_json::from_str(text).map_err(|e| format!("manifest: not valid JSON: {e}"))?;
    let ctx = "manifest";
    let version = expect_u64(&v, "manifest_version", ctx)?;
    if version != crate::manifest::MANIFEST_VERSION {
        return Err(format!(
            "{ctx}: unknown manifest_version {version} (expected {})",
            crate::manifest::MANIFEST_VERSION
        ));
    }
    expect_str(&v, "command", ctx)?;
    expect_u64(&v, "seed", ctx)?;
    expect_u64(&v, "scale_divisor", ctx)?;
    expect_u64(&v, "workers", ctx)?;
    expect_bool(&v, "cache", ctx)?;
    expect_bool(&v, "strict", ctx)?;
    let digest = expect_str(&v, "corpus_digest", ctx)?;
    if digest.len() != 40 || !digest.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("{ctx}: `corpus_digest` is not a 40-hex-char SHA-1"));
    }
    expect_u64(&v, "wall_us", ctx)?;
    let stages = field(&v, "stages", ctx)?
        .as_seq()
        .ok_or_else(|| format!("{ctx}: `stages` is not an array"))?;
    for (i, stage) in stages.iter().enumerate() {
        let sctx = format!("manifest stages[{i}]");
        expect_str(stage, "name", &sctx)?;
        expect_u64(stage, "wall_us", &sctx)?;
    }
    let q = field(&v, "quarantine", ctx)?;
    let qctx = "manifest quarantine";
    expect_u64(q, "recovered", qctx)?;
    expect_u64(q, "quarantined", qctx)?;
    expect_u64(q, "deadline_exceeded", qctx)?;
    let classes = field(q, "classes", qctx)?
        .as_seq()
        .ok_or_else(|| format!("{qctx}: `classes` is not an array"))?;
    for (i, class) in classes.iter().enumerate() {
        let cctx = format!("{qctx} classes[{i}]");
        expect_str(class, "class", &cctx)?;
        expect_u64(class, "recovered", &cctx)?;
        expect_u64(class, "quarantined", &cctx)?;
    }
    let journal = field(&v, "journal", ctx)?;
    if !journal.is_null() {
        let jctx = "manifest journal";
        expect_str(journal, "path", jctx)?;
        expect_u64(journal, "replayed", jctx)?;
        expect_u64(journal, "mined_fresh", jctx)?;
        expect_u64(journal, "stale_discarded", jctx)?;
        let tail = field(journal, "corrupt_tail", jctx)?;
        if !tail.is_null() && tail.as_str().is_none() {
            return Err(format!("{jctx}: `corrupt_tail` is neither null nor a string"));
        }
    }
    Ok(stages.len())
}

/// Schema version of the serve request log.
pub const REQUEST_LOG_VERSION: u64 = 1;

/// Validate a serve request log as emitted by `--request-log`: one JSON
/// object per line with `v` = [`REQUEST_LOG_VERSION`], string
/// `id`/`op`/`status` (status one of `ok`/`busy`/`draining`/`error`),
/// integer `ts_ms`/`queue_us`/`wall_us`/`bytes_in`/`bytes_out`/
/// `quarantined`, and `stages` an array of `[name, wall_us]` pairs.
/// `ts_ms` must be non-decreasing across lines (the log is written in
/// completion order under one lock). Returns the number of validated
/// entries.
pub fn validate_request_log_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_ts = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("request-log line {}", idx + 1);
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("{ctx}: not valid JSON: {e}"))?;
        if v.as_map().is_none() {
            return Err(format!("{ctx}: not a JSON object"));
        }
        let version = expect_u64(&v, "v", &ctx)?;
        if version != REQUEST_LOG_VERSION {
            return Err(format!(
                "{ctx}: unknown request-log version {version} (expected {REQUEST_LOG_VERSION})"
            ));
        }
        let id = expect_str(&v, "id", &ctx)?;
        if id.is_empty() {
            return Err(format!("{ctx}: `id` is empty"));
        }
        expect_str(&v, "op", &ctx)?;
        let status = expect_str(&v, "status", &ctx)?;
        if !matches!(status, "ok" | "busy" | "draining" | "error") {
            return Err(format!("{ctx}: unknown status {status:?}"));
        }
        let ts_ms = expect_u64(&v, "ts_ms", &ctx)?;
        if ts_ms < last_ts {
            return Err(format!(
                "{ctx}: `ts_ms` {ts_ms} goes backwards (previous line was {last_ts})"
            ));
        }
        last_ts = ts_ms;
        expect_u64(&v, "queue_us", &ctx)?;
        expect_u64(&v, "wall_us", &ctx)?;
        expect_u64(&v, "bytes_in", &ctx)?;
        expect_u64(&v, "bytes_out", &ctx)?;
        expect_u64(&v, "quarantined", &ctx)?;
        let stages = field(&v, "stages", &ctx)?
            .as_seq()
            .ok_or_else(|| format!("{ctx}: `stages` is not an array"))?;
        for (i, stage) in stages.iter().enumerate() {
            let sctx = format!("{ctx} stages[{i}]");
            let Some(pair) = stage.as_seq() else {
                return Err(format!("{sctx}: not a [name, wall_us] pair"));
            };
            if pair.len() != 2 || pair[0].as_str().is_none() || pair[1].as_u64().is_none() {
                return Err(format!("{sctx}: expected [name, wall_us]"));
            }
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_validator_accepts_real_output_and_names_violations() {
        let good = "{\"name\": \"a.b\", \"cat\": \"a\", \"ph\": \"X\", \"ts\": 1, \"dur\": 2, \"pid\": 1, \"tid\": 1, \"args\": {\"k\": \"v\"}}\n";
        assert_eq!(validate_trace_jsonl(good), Ok(1));
        assert_eq!(validate_trace_jsonl(""), Ok(0));
        let bad_phase = good.replace("\"X\"", "\"B\"");
        let err = validate_trace_jsonl(&bad_phase).expect_err("phase must be X");
        assert!(err.contains("`ph`"), "{err}");
        let bad_arg = good.replace("\"v\"", "3");
        let err = validate_trace_jsonl(&bad_arg).expect_err("args must be strings");
        assert!(err.contains("arg `k`"), "{err}");
    }

    #[test]
    fn request_log_validator_checks_shape_and_monotonic_ts() {
        let a = "{\"v\": 1, \"ts_ms\": 5, \"id\": \"req-1\", \"op\": \"study\", \"status\": \"ok\", \"queue_us\": 0, \"wall_us\": 900, \"bytes_in\": 40, \"bytes_out\": 8000, \"quarantined\": 0, \"stages\": [[\"parse\", 300], [\"diff\", 200]]}";
        let b = "{\"v\": 1, \"ts_ms\": 7, \"id\": \"req-2\", \"op\": \"study\", \"status\": \"busy\", \"queue_us\": 0, \"wall_us\": 1, \"bytes_in\": 40, \"bytes_out\": 90, \"quarantined\": 0, \"stages\": []}";
        let log = format!("{a}\n{b}\n");
        assert_eq!(validate_request_log_jsonl(&log), Ok(2));
        assert_eq!(validate_request_log_jsonl(""), Ok(0));

        let reordered = format!("{b}\n{a}\n");
        let err = validate_request_log_jsonl(&reordered).expect_err("ts must be monotonic");
        assert!(err.contains("goes backwards"), "{err}");

        let bad_status = a.replace("\"ok\"", "\"shrug\"");
        let err = validate_request_log_jsonl(&bad_status).expect_err("status enum");
        assert!(err.contains("unknown status"), "{err}");

        let bad_stage = a.replace("[\"parse\", 300]", "[\"parse\"]");
        let err = validate_request_log_jsonl(&bad_stage).expect_err("stage pair");
        assert!(err.contains("stages[0]"), "{err}");

        let bad_version = a.replace("\"v\": 1", "\"v\": 9");
        let err = validate_request_log_jsonl(&bad_version).expect_err("version");
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn metrics_validator_checks_bucket_sums() {
        let r = crate::metrics::Registry::new();
        r.add("hits", 2);
        r.observe("lat", 5);
        let json = r.snapshot().to_json();
        assert_eq!(validate_metrics_json(&json), Ok(2));
        let broken = json.replacen("\"count\": 1", "\"count\": 9", 1);
        let err = validate_metrics_json(&broken).expect_err("bucket sum mismatch");
        assert!(err.contains("sum to"), "{err}");
    }
}
