//! Observability for the mining pipeline: structured tracing, a metrics
//! registry, run manifests, a progress heartbeat, and one stderr event
//! formatter.
//!
//! The subsystem is built around a hard invariant inherited from the
//! executor and durability layers: **observability must never perturb the
//! study**. Clean stdout, `study_results.json` and `artifacts/*.csv` are
//! byte-identical whether every feature here is on or off; the black-box
//! differential in `tests/traced_differential.rs` and `scripts/ci.sh`
//! enforces it. Everything here therefore writes only to its own files
//! (`--trace-out`, `--metrics-out`, `--manifest-out`) or to stderr.
//!
//! ## Pieces
//!
//! - [`trace`]: a [`span!`]-guard API over a process-global tracer.
//!   Disabled (the default) a span costs one relaxed atomic load; enabled,
//!   spans land in per-thread shard buffers that are merged
//!   deterministically at drain time and rendered as Chrome-trace
//!   compatible JSONL.
//! - [`metrics`]: an instantiable [`metrics::Registry`] of atomic
//!   counters, gauges and log₂-bucketed histograms whose merge is
//!   associative and commutative (pinned by proptest in
//!   `tests/merge_laws.rs`), exported as JSON or Prometheus text.
//! - [`manifest`]: the run manifest — seed, flags, corpus digest, stage
//!   wall times, quarantine and journal summaries — a plain serializable
//!   struct the CLI writes atomically through `report::atomic`.
//! - [`scope`]: the request-scoped counterpart to the global tracer — an
//!   instantiable [`scope::TraceScope`] span sink the daemon attaches to
//!   one request via [`ObsHooks`], so per-stage spans land with their
//!   owning request instead of the process.
//! - [`profile`]: a dependency-free sampling wall-clock profiler over
//!   the logical span stacks, producing collapsed-stack output for
//!   flamegraphs; runtime-togglable through the serve `profile` op.
//! - [`progress`]: an opt-in stderr heartbeat with per-stage ETA.
//! - [`procinfo`]: the peak-RSS sampler (`VmHWM` from procfs) behind
//!   the `process.peak_rss_bytes` gauge and the CI memory ceiling.
//! - [`events`]: the single formatter behind every operational stderr
//!   line (`[+elapsed-ms] topic: message`), replacing the ad-hoc prints
//!   the CLI and examples used to carry.
//! - [`validate`]: tiny structural validators for the trace JSONL,
//!   metrics JSON, manifest JSON and request-log JSONL schemas, used by
//!   the CI gates.

#![warn(missing_docs)]

pub mod events;
pub mod manifest;
pub mod metrics;
pub mod procinfo;
pub mod profile;
pub mod progress;
pub mod scope;
pub mod trace;
pub mod validate;

use std::sync::Arc;

/// Observability hooks threaded through a study run.
///
/// The default (all `None`) is the fully-off configuration: the pipeline
/// pays nothing beyond a handful of `Option` checks. The process-global
/// tracer is *not* part of this struct — spans are cheap enough to leave
/// in place unconditionally and are gated by [`trace::enabled`].
#[derive(Debug, Clone, Default)]
pub struct ObsHooks {
    /// Metrics registry the run folds its counters and latency
    /// histograms into.
    pub registry: Option<Arc<metrics::Registry>>,
    /// Progress heartbeat advanced as mining tasks complete.
    pub progress: Option<Arc<progress::Progress>>,
    /// Request-scoped span sink: when set, the engine records per-stage
    /// spans (journal replay, mining pass, per-task parse/diff/measures)
    /// into this scope instead of leaving them attributable only to the
    /// process. The daemon attaches one scope per request.
    pub trace: Option<Arc<scope::TraceScope>>,
}

impl ObsHooks {
    /// Hooks carrying a registry only.
    pub fn with_registry(registry: Arc<metrics::Registry>) -> Self {
        ObsHooks {
            registry: Some(registry),
            ..ObsHooks::default()
        }
    }
}
