//! Span tracing with per-thread shard buffers and a Chrome-trace JSONL
//! renderer.
//!
//! The tracer is process-global so deep layers (the DDL parser, the diff
//! engine, the history walker) can open spans without any context being
//! threaded through their signatures. It is off by default: the [`span!`]
//! macro compiles to one relaxed [`AtomicBool`] load and an inert guard,
//! so the instrumented hot paths cost nothing measurable until
//! `--trace-out` turns collection on.
//!
//! Enabled, each thread appends finished spans to its own shard (an
//! uncontended mutex registered in a global list on first use), and
//! [`drain`] merges all shards **deterministically**: events are sorted
//! by `(ts_us, seq)` where `seq` is a process-wide ticket, so the same
//! set of events always serializes in the same order regardless of which
//! worker produced which span. The merge itself is pure
//! ([`merge_shards`]) and its order-independence is pinned by proptest.

use serde_json::Value;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One finished span, in microseconds relative to the tracer epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, dot-separated (`"mine.task"`, `"ddl.parse"`).
    pub name: String,
    /// Category — the first dot-segment of the name (`"mine"`, `"ddl"`).
    pub cat: String,
    /// Start time in µs since the tracer epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Stable per-thread id (assigned in shard-registration order).
    pub tid: u64,
    /// Process-wide completion ticket; makes the `(ts_us, seq)` sort key
    /// a total order.
    pub seq: u64,
    /// Span arguments as key/value strings.
    pub args: Vec<(String, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

type Shard = Arc<Mutex<Vec<TraceEvent>>>;

fn shards() -> &'static Mutex<Vec<Shard>> {
    static SHARDS: OnceLock<Mutex<Vec<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_SHARD: RefCell<Option<(u64, Shard)>> = const { RefCell::new(None) };
}

/// Whether span collection is on. One relaxed load — this is the entire
/// cost of an instrumented call site while tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span collection on or off. Enabling pins the tracer epoch (the
/// zero point of every `ts_us`) on first use.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn record(event: TraceEvent) {
    let (tid, shard) = LOCAL_SHARD.with(|cell| {
        let mut slot = cell.borrow_mut();
        let entry = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let shard: Shard = Arc::new(Mutex::new(Vec::new()));
            if let Ok(mut all) = shards().lock() {
                all.push(Arc::clone(&shard));
            }
            (tid, shard)
        });
        (entry.0, Arc::clone(&entry.1))
    });
    let mut event = event;
    event.tid = tid;
    if let Ok(mut buf) = shard.lock() {
        buf.push(event);
    };
}

/// A live span. Created by the [`span!`](crate::span) macro; records one
/// [`TraceEvent`] on drop when the tracer was enabled at entry.
#[derive(Debug)]
pub struct SpanGuard(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    name: String,
    args: Vec<(&'static str, String)>,
    start: Instant,
    /// Whether this guard pushed onto the profiler's logical stack — the
    /// guard remembers so an enable/disable race can never unbalance it.
    pushed: bool,
}

impl SpanGuard {
    /// Open a span. Call sites should go through [`span!`](crate::span),
    /// which checks [`enabled`] *before* evaluating any argument.
    pub fn enter(name: &str, args: Vec<(&'static str, String)>) -> SpanGuard {
        let pushed = crate::profile::enabled();
        if pushed {
            crate::profile::push(name);
        }
        SpanGuard(Some(SpanInner {
            name: name.to_string(),
            args,
            start: Instant::now(),
            pushed,
        }))
    }

    /// The no-op guard handed out while tracing is off.
    pub fn inert() -> SpanGuard {
        SpanGuard(None)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        if inner.pushed {
            crate::profile::pop();
        }
        if !enabled() {
            return;
        }
        let ts_us = inner
            .start
            .saturating_duration_since(epoch())
            .as_micros() as u64;
        let dur_us = inner.start.elapsed().as_micros() as u64;
        let cat = inner
            .name
            .split('.')
            .next()
            .unwrap_or_default()
            .to_string();
        record(TraceEvent {
            name: inner.name,
            cat,
            ts_us,
            dur_us,
            tid: 0, // assigned by `record`
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            args: inner
                .args
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }
}

/// Open a span guard: `span!("mine.task", project = name)`.
///
/// Arguments are only evaluated (and only allocate) when tracing or
/// profiling is enabled; otherwise the macro is two relaxed atomic loads
/// returning an inert guard. Bind the result (`let _span = span!(...)`) —
/// the span closes when the guard drops. While the sampling profiler is
/// on, the guard also publishes the span name on this thread's logical
/// stack ([`crate::profile`]) so wall-clock samples carry real frames.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() || $crate::profile::enabled() {
            $crate::trace::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), format!("{}", $val))),*],
            )
        } else {
            $crate::trace::SpanGuard::inert()
        }
    };
}

/// Merge per-worker shards into one deterministic event sequence: the
/// concatenation sorted by `(ts_us, seq)`. Since `seq` is unique, this
/// is a total order — any permutation or regrouping of the same shards
/// merges to the identical sequence (pinned by `tests/merge_laws.rs`).
pub fn merge_shards(shards: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = shards.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.ts_us, e.seq));
    all
}

/// Take every buffered event out of the global tracer, merged
/// deterministically. Shards stay registered (threads keep appending to
/// their existing buffers), only their contents are taken.
pub fn drain() -> Vec<TraceEvent> {
    let mut taken: Vec<Vec<TraceEvent>> = Vec::new();
    if let Ok(all) = shards().lock() {
        for shard in all.iter() {
            if let Ok(mut buf) = shard.lock() {
                taken.push(std::mem::take(&mut *buf));
            }
        }
    }
    merge_shards(taken)
}

/// Render events as Chrome-trace-compatible JSONL: one complete-event
/// (`"ph": "X"`) JSON object per line. Perfetto opens the file directly;
/// for `chrome://tracing`, wrap the lines in `[` … `]` (the legacy viewer
/// also accepts an array with a missing closing bracket, so prepending a
/// single `[` line is enough).
pub fn to_chrome_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let args = Value::Map(
            e.args
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        let obj = Value::Map(vec![
            ("name".to_string(), Value::Str(e.name.clone())),
            ("cat".to_string(), Value::Str(e.cat.clone())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::U64(e.ts_us)),
            ("dur".to_string(), Value::U64(e.dur_us)),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(e.tid)),
            ("args".to_string(), args),
        ]);
        match serde_json::to_string(&obj) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => continue, // string-keyed map of scalars always encodes
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, seq: u64, name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: name.split('.').next().unwrap_or_default().to_string(),
            ts_us: ts,
            dur_us: 1,
            tid: 1,
            seq,
            args: Vec::new(),
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let a = vec![ev(5, 2, "a"), ev(9, 4, "b")];
        let b = vec![ev(5, 1, "c"), ev(7, 3, "d")];
        let ab = merge_shards(vec![a.clone(), b.clone()]);
        let ba = merge_shards(vec![b, a]);
        assert_eq!(ab, ba);
        let names: Vec<&str> = ab.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["c", "a", "d", "b"]);
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let events = vec![ev(1, 0, "mine.task"), ev(2, 1, "ddl.parse")];
        let jsonl = to_chrome_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(v.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert!(v.get("ts").and_then(|t| t.as_u64()).is_some());
        }
    }

    #[test]
    fn global_tracer_roundtrip() {
        // The one test exercising global state: enable, span, drain.
        // Other tests use the pure merge/render functions only, so this
        // cannot race with them even under parallel test execution.
        set_enabled(true);
        {
            let _g = crate::span!("test.outer", item = 7);
            let _inner = crate::span!("test.inner");
        }
        set_enabled(false);
        let events = drain();
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.name.as_str())
            .filter(|n| n.starts_with("test."))
            .collect();
        assert!(names.contains(&"test.outer"));
        assert!(names.contains(&"test.inner"));
        let outer = events
            .iter()
            .find(|e| e.name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.cat, "test");
        assert_eq!(outer.args, vec![("item".to_string(), "7".to_string())]);
        // Disabled spans are free and record nothing.
        let _g = crate::span!("test.disabled");
        drop(_g);
        assert!(drain().iter().all(|e| e.name != "test.disabled"));
    }
}
