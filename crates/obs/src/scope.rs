//! Request-scoped span collection for the serving mode.
//!
//! The process-global tracer in [`crate::trace`] answers "what did this
//! *process* do", which is the right shape for a one-shot batch study but
//! useless for a resident daemon answering many simultaneous requests:
//! every span lands in one undifferentiated pool. A [`TraceScope`] is the
//! per-request counterpart — an instantiable span sink with its own epoch
//! and sequence counter that the server attaches to [`crate::ObsHooks`]
//! for exactly one request, so every stage span recorded through it is
//! attributable to the owning request and can be exported as that
//! request's own Chrome-trace JSONL.
//!
//! Scopes reuse the [`TraceEvent`] record and the deterministic
//! `(ts_us, seq)` merge order from [`crate::trace`], so the same
//! validators and viewers work on both whole-process and per-request
//! trace files.

use crate::trace::{merge_shards, to_chrome_jsonl, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A per-request span sink. Cheap to create (one `Instant` plus two empty
/// cells); safe to record into from any worker thread.
#[derive(Debug)]
pub struct TraceScope {
    epoch: Instant,
    seq: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceScope {
    fn default() -> Self {
        TraceScope::new()
    }
}

impl TraceScope {
    /// A fresh scope whose epoch (the zero point of every `ts_us`) is now.
    pub fn new() -> TraceScope {
        TraceScope {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since this scope's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// An `Instant` translated into this scope's timeline, for callers
    /// that synthesize child spans at explicit offsets.
    pub fn ts_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Record one finished span with explicit timing. `tid` is a display
    /// lane, not a real thread id — callers pick stable lanes (the server
    /// uses `0`, the engine uses the worker slot) so per-request traces
    /// render deterministically grouped in Perfetto.
    pub fn record(
        &self,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        tid: u64,
        args: Vec<(String, String)>,
    ) {
        let cat = name.split('.').next().unwrap_or_default().to_string();
        let event = TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            dur_us,
            tid,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            args,
        };
        match self.events.lock() {
            Ok(mut buf) => buf.push(event),
            Err(poisoned) => poisoned.into_inner().push(event),
        }
    }

    /// Record a span that started at `start` (an `Instant` taken inside
    /// this scope's lifetime) and just finished.
    pub fn record_since(&self, name: &str, start: Instant, tid: u64, args: Vec<(String, String)>) {
        let ts_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        self.record(name, ts_us, dur_us, tid, args);
    }

    /// Open a guard that records `name` on drop (lane `0`, no args).
    pub fn span(self: &Arc<Self>, name: &str) -> ScopeSpan {
        ScopeSpan {
            scope: Arc::clone(self),
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take every recorded span out of the scope in the deterministic
    /// `(ts_us, seq)` order shared with [`crate::trace::drain`].
    pub fn drain(&self) -> Vec<TraceEvent> {
        let taken = match self.events.lock() {
            Ok(mut buf) => std::mem::take(&mut *buf),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        merge_shards(vec![taken])
    }

    /// Drain and render as Chrome-trace JSONL (same format as
    /// `--trace-out`, so `validate_trace_jsonl` and Perfetto both apply).
    pub fn to_chrome_jsonl(&self) -> String {
        to_chrome_jsonl(&self.drain())
    }
}

/// Guard returned by [`TraceScope::span`]; records its span on drop.
#[derive(Debug)]
pub struct ScopeSpan {
    scope: Arc<TraceScope>,
    name: String,
    start: Instant,
}

impl Drop for ScopeSpan {
    fn drop(&mut self) {
        self.scope
            .record_since(&self.name, self.start, 0, Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_records_and_drains_in_order() {
        let scope = Arc::new(TraceScope::new());
        scope.record("b.second", 20, 5, 1, Vec::new());
        scope.record("a.first", 10, 3, 0, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(scope.len(), 2);
        let events = scope.drain();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(events[0].cat, "a");
        assert!(scope.is_empty());
    }

    #[test]
    fn scope_guard_records_on_drop_and_renders_valid_jsonl() {
        let scope = Arc::new(TraceScope::new());
        {
            let _g = scope.span("serve.request");
        }
        scope.record("mine.task", 1, 2, 3, Vec::new());
        let jsonl = scope.to_chrome_jsonl();
        assert_eq!(crate::validate::validate_trace_jsonl(&jsonl), Ok(2));
        assert!(jsonl.contains("serve.request"));
    }

    #[test]
    fn scopes_are_independent() {
        let a = TraceScope::new();
        let b = TraceScope::new();
        a.record("only.a", 0, 1, 0, Vec::new());
        assert_eq!(b.len(), 0);
        assert_eq!(a.drain().len(), 1);
    }
}
