//! Process self-inspection: the peak-RSS gauge behind the scale-tier
//! memory ceiling.
//!
//! Linux exposes the high-water mark of the resident set as `VmHWM` in
//! `/proc/self/status` (kibibytes). The CLI samples it once, after the
//! study finishes, into the `process.peak_rss_bytes` gauge — which is
//! what `scripts/ci.sh` asserts stays under the streaming ceiling at
//! 20× scale. On platforms without procfs the sample is simply absent;
//! nothing downstream requires it.

/// Peak resident set size of this process in bytes, or `None` when the
/// platform does not expose `/proc/self/status` (or the field is
/// missing / malformed).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Reset the peak-RSS watermark so a later [`peak_rss_bytes`] reads the
/// high-water mark *since this call* rather than since process start.
///
/// Writes `5` to `/proc/self/clear_refs` (Linux ≥ 4.0; needs write
/// permission on the file, which a process always has on itself unless
/// hardened out). Returns `false` when the reset is unavailable — the
/// caller should then label its measurement as cumulative. Used by
/// `bench_scale_mine` to attribute memory to each backend/scale
/// configuration inside one bench process.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

/// Extract `VmHWM` (reported in kB) from a `/proc/<pid>/status` body.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tschevo\nVmPeak:\t  999 kB\nVmHWM:\t  5120 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm(status), Some(5120 * 1024));
    }

    #[test]
    fn missing_or_malformed_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tschevo\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[test]
    fn live_sample_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("procfs present but VmHWM missing");
            assert!(rss > 0);
        }
    }

    #[test]
    fn reset_shrinks_or_keeps_the_watermark() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        // Push the watermark up, then reset: the new reading must not
        // exceed the old one (it tracks only post-reset usage).
        let ballast = vec![0u8; 8 << 20];
        let before = peak_rss_bytes().expect("VmHWM readable");
        drop(ballast);
        if reset_peak_rss() {
            let after = peak_rss_bytes().expect("VmHWM readable after reset");
            assert!(after <= before, "reset raised the watermark: {before} -> {after}");
        }
    }
}
