//! A dependency-free sampling wall-clock profiler with collapsed-stack
//! output.
//!
//! Real `SIGPROF`-driven unwinding needs an async-signal-safe unwinder —
//! a native dependency this repo deliberately does not take. Instead the
//! profiler samples the *logical* stacks the tracing layer already
//! maintains: when profiling is enabled, every [`crate::span!`] guard
//! pushes its span name onto a per-thread stack cell on entry and pops it
//! on drop, and a sampler thread wakes on a fixed interval, reads every
//! registered cell, and increments a count for each non-idle stack. The
//! result is the classic collapsed-stack format
//! (`outer;inner count` per line) that `flamegraph.pl` and speedscope
//! consume directly.
//!
//! Because the instrumented span sites live in the hot layers (the DDL
//! parser, the diff engine, the history walker, the mining task wrapper),
//! a wall-clock profile of a busy daemon shows where request time truly
//! goes — without perturbing the study: disabled, the whole feature costs
//! one relaxed atomic load per span site, and its output never touches
//! stdout or the study artifacts.
//!
//! The profiler is process-global and runtime-togglable (the serve
//! `profile` op calls [`start`] / [`stop`] on a live daemon); only one
//! sampler runs at a time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Stack = Arc<Mutex<Vec<String>>>;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn stacks() -> &'static Mutex<Vec<Stack>> {
    static STACKS: OnceLock<Mutex<Vec<Stack>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_STACK: RefCell<Option<Stack>> = const { RefCell::new(None) };
}

/// Whether the sampler is collecting. One relaxed load — the entire cost
/// of an instrumented span site while profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn local_stack() -> Stack {
    LOCAL_STACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let entry = slot.get_or_insert_with(|| {
            let stack: Stack = Arc::new(Mutex::new(Vec::new()));
            let registered = Arc::clone(&stack);
            if let Ok(mut all) = stacks().lock() {
                all.push(registered);
            }
            stack
        });
        Arc::clone(entry)
    })
}

/// Push a span name onto this thread's logical stack. Called by the span
/// guard on entry while profiling is enabled.
pub fn push(name: &str) {
    let stack = local_stack();
    if let Ok(mut s) = stack.lock() {
        s.push(name.to_string());
    };
}

/// Pop this thread's logical stack. Called by the span guard on drop for
/// every span that pushed (the guard remembers, so enable/disable races
/// never unbalance the stack).
pub fn pop() {
    let stack = LOCAL_STACK.with(|cell| cell.borrow().as_ref().map(Arc::clone));
    if let Some(stack) = stack {
        if let Ok(mut s) = stack.lock() {
            s.pop();
        };
    }
}

#[derive(Debug, Default)]
struct Samples {
    /// Collapsed stack (`a;b;c`) → number of samples observed in it.
    stacks: BTreeMap<String, u64>,
    /// Total sampler wakeups, including fully-idle ones.
    ticks: u64,
}

#[derive(Debug)]
struct SamplerState {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Samples>>,
    handle: Option<JoinHandle<()>>,
    interval_ms: u64,
}

fn state() -> &'static Mutex<Option<SamplerState>> {
    static STATE: OnceLock<Mutex<Option<SamplerState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn render_collapsed(samples: &Samples) -> String {
    let mut out = String::new();
    for (stack, count) in &samples.stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Start the sampler at `interval_ms` between samples (clamped to ≥ 1).
/// Returns `false` (and changes nothing) if a sampler is already running.
pub fn start(interval_ms: u64) -> bool {
    let mut st = match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if st.is_some() {
        return false;
    }
    let interval_ms = interval_ms.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(Mutex::new(Samples::default()));
    ENABLED.store(true, Ordering::Relaxed);
    let thread_stop = Arc::clone(&stop);
    let thread_samples = Arc::clone(&samples);
    let handle = std::thread::Builder::new()
        .name("schevo-profiler".to_string())
        .spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(interval_ms));
                let cells: Vec<Stack> = match stacks().lock() {
                    Ok(all) => all.iter().map(Arc::clone).collect(),
                    Err(_) => Vec::new(),
                };
                let mut observed: Vec<String> = Vec::new();
                for cell in cells {
                    if let Ok(s) = cell.lock() {
                        if !s.is_empty() {
                            observed.push(s.join(";"));
                        }
                    }
                }
                if let Ok(mut agg) = thread_samples.lock() {
                    agg.ticks += 1;
                    for key in observed {
                        *agg.stacks.entry(key).or_insert(0) += 1;
                    }
                }
            }
        });
    match handle {
        Ok(h) => {
            *st = Some(SamplerState {
                stop,
                samples,
                handle: Some(h),
                interval_ms,
            });
            true
        }
        Err(_) => {
            ENABLED.store(false, Ordering::Relaxed);
            false
        }
    }
}

/// Stop the sampler and return its collapsed-stack output (one
/// `stack count` line per distinct stack, sorted). `None` if no sampler
/// was running.
pub fn stop() -> Option<String> {
    let taken = {
        let mut st = match state().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.take()
    };
    let mut taken = taken?;
    ENABLED.store(false, Ordering::Relaxed);
    taken.stop.store(true, Ordering::Relaxed);
    if let Some(h) = taken.handle.take() {
        let _ = h.join();
    }
    let samples = match taken.samples.lock() {
        Ok(s) => render_collapsed(&s),
        Err(poisoned) => render_collapsed(&poisoned.into_inner()),
    };
    Some(samples)
}

/// Whether a sampler is currently running, and at what interval.
pub fn status() -> Option<u64> {
    let st = match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    st.as_ref().map(|s| s.interval_ms)
}

/// Collapsed-stack snapshot of the samples collected so far without
/// stopping the sampler. `None` if no sampler is running.
pub fn collapsed() -> Option<String> {
    let st = match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let samples = Arc::clone(&st.as_ref()?.samples);
    drop(st);
    let out = match samples.lock() {
        Ok(s) => render_collapsed(&s),
        Err(poisoned) => render_collapsed(&poisoned.into_inner()),
    };
    Some(out)
}

/// Validate collapsed-stack text: every non-empty line is
/// `frame[;frame…] count` with a positive integer count and non-empty
/// frames. Returns the number of stack lines.
pub fn validate_collapsed(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("collapsed line {}", idx + 1);
        let Some((stack, n)) = line.rsplit_once(' ') else {
            return Err(format!("{ctx}: no `stack count` separator"));
        };
        if n.parse::<u64>().map(|v| v == 0).unwrap_or(true) {
            return Err(format!("{ctx}: count `{n}` is not a positive integer"));
        }
        if stack.split(';').any(|frame| frame.is_empty()) {
            return Err(format!("{ctx}: empty frame in `{stack}`"));
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsed_rendering_is_sorted_and_valid() {
        let mut s = Samples::default();
        s.stacks.insert("mine.task;ddl.parse".to_string(), 7);
        s.stacks.insert("mine.task".to_string(), 2);
        let out = render_collapsed(&s);
        assert_eq!(out, "mine.task 2\nmine.task;ddl.parse 7\n");
        assert_eq!(validate_collapsed(&out), Ok(2));
    }

    #[test]
    fn validator_names_violations() {
        assert_eq!(validate_collapsed(""), Ok(0));
        let err = validate_collapsed("mine.task zero").expect_err("bad count");
        assert!(err.contains("positive integer"), "{err}");
        let err = validate_collapsed("a;;b 3").expect_err("empty frame");
        assert!(err.contains("empty frame"), "{err}");
    }

    #[test]
    fn sampler_observes_a_held_span() {
        // The one test exercising the global sampler. Serialized with
        // nothing: no other test in this crate starts a sampler.
        assert!(start(1), "sampler starts");
        assert!(!start(1), "second start is refused");
        assert_eq!(status(), Some(1));
        {
            let _outer = crate::span!("proftest.outer");
            let _inner = crate::span!("proftest.inner");
            // Hold the spans across a few sampler wakeups.
            std::thread::sleep(Duration::from_millis(40));
        }
        let out = stop().expect("sampler was running");
        assert!(stop().is_none(), "second stop is a no-op");
        assert!(!enabled());
        assert!(
            out.contains("proftest.outer;proftest.inner"),
            "nested stack sampled: {out:?}"
        );
        validate_collapsed(&out).expect("output validates");
        // With profiling off, span guards no longer push.
        let _g = crate::span!("proftest.after");
        assert!(LOCAL_STACK.with(|c| c
            .borrow()
            .as_ref()
            .map(|s| s.lock().map(|v| v.is_empty()).unwrap_or(false))
            .unwrap_or(true)));
    }
}
