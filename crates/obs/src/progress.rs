//! Opt-in stderr progress heartbeat with per-stage ETA.
//!
//! A [`Progress`] instance is created by the CLI when `--progress` is
//! given and threaded through [`crate::ObsHooks`]. Stages declare a
//! total (`begin_stage`), workers call [`Progress::advance`] as units
//! complete, and the heartbeat prints at most once per throttle interval
//! (default 200 ms) so tight loops do not flood stderr. All output goes
//! through the [`crate::events`] formatter under the `progress` topic;
//! stdout is never touched.

use crate::events;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default minimum interval between heartbeat lines.
pub const DEFAULT_THROTTLE: Duration = Duration::from_millis(200);

#[derive(Debug)]
struct State {
    stage: String,
    total: u64,
    done: u64,
    started: Instant,
    last_print: Option<Instant>,
}

/// A throttled per-stage progress reporter.
#[derive(Debug)]
pub struct Progress {
    state: Mutex<Option<State>>,
    throttle: Duration,
}

impl Default for Progress {
    fn default() -> Self {
        Progress::new()
    }
}

impl Progress {
    /// A reporter with the default throttle interval.
    pub fn new() -> Progress {
        Progress::with_throttle(DEFAULT_THROTTLE)
    }

    /// A reporter printing at most once per `throttle` (tests use zero).
    pub fn with_throttle(throttle: Duration) -> Progress {
        Progress {
            state: Mutex::new(None),
            throttle,
        }
    }

    /// Start a stage with a known unit count. Replaces any stage still
    /// open and prints an opening heartbeat.
    pub fn begin_stage(&self, stage: &str, total: u64) {
        let mut slot = match self.state.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        *slot = Some(State {
            stage: stage.to_string(),
            total,
            done: 0,
            started: Instant::now(),
            last_print: None,
        });
        events::info("progress", &format!("{stage}: 0/{total}"));
    }

    /// Record `n` completed units in the current stage, printing a
    /// heartbeat with ETA when the throttle interval has elapsed.
    pub fn advance(&self, n: u64) {
        let mut slot = match self.state.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let Some(state) = slot.as_mut() else { return };
        state.done += n;
        let now = Instant::now();
        let due = match state.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= self.throttle,
        };
        if !due || state.done >= state.total {
            // Completion is announced by `end_stage`, not here.
            return;
        }
        state.last_print = Some(now);
        let line = heartbeat_line(
            &state.stage,
            state.done,
            state.total,
            now.duration_since(state.started),
        );
        events::info("progress", &line);
    }

    /// Close the current stage, printing a final line with its wall time.
    pub fn end_stage(&self) {
        let mut slot = match self.state.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let Some(state) = slot.take() else { return };
        let secs = state.started.elapsed().as_secs_f64();
        events::info(
            "progress",
            &format!(
                "{}: done ({}/{} in {:.1}s)",
                state.stage, state.done, state.total, secs
            ),
        );
    }
}

/// Format one heartbeat body: `stage: done/total (pct%, eta Ns)`.
/// Pure, so the format is unit-testable without timing.
pub fn heartbeat_line(stage: &str, done: u64, total: u64, elapsed: Duration) -> String {
    let pct = if total == 0 {
        100.0
    } else {
        done as f64 / total as f64 * 100.0
    };
    let eta = if done == 0 || total <= done {
        None
    } else {
        let per_unit = elapsed.as_secs_f64() / done as f64;
        Some(per_unit * (total - done) as f64)
    };
    match eta {
        Some(eta) => format!("{stage}: {done}/{total} ({pct:.0}%, eta {eta:.0}s)"),
        None => format!("{stage}: {done}/{total} ({pct:.0}%)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_includes_eta_once_rate_is_known() {
        let line = heartbeat_line("mine", 25, 100, Duration::from_secs(5));
        assert_eq!(line, "mine: 25/100 (25%, eta 15s)");
        let no_eta = heartbeat_line("mine", 0, 100, Duration::from_secs(5));
        assert_eq!(no_eta, "mine: 0/100 (0%)");
    }

    #[test]
    fn zero_total_stage_reports_full() {
        assert_eq!(
            heartbeat_line("funnel", 0, 0, Duration::ZERO),
            "funnel: 0/0 (100%)"
        );
    }

    #[test]
    fn advance_without_stage_is_a_no_op() {
        let p = Progress::with_throttle(Duration::ZERO);
        p.advance(3); // must not panic or print a stage
        p.end_stage();
    }
}
