//! The metrics registry: atomic counters, gauges, and log₂-bucketed
//! histograms with an associative, commutative merge.
//!
//! A [`Registry`] is instantiable (not global): the CLI creates one per
//! run and threads it through [`crate::ObsHooks`], so unit tests and
//! parallel studies never share state. Counter and gauge handles are
//! `Arc`-backed atomics, safe to update from any worker; histograms take
//! a short uncontended lock. Exports are deterministic: names sort
//! lexicographically in both the JSON and Prometheus renderings.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram.
///
/// Bucket `0` counts observations equal to zero; bucket `i ≥ 1` counts
/// observations `v` with `2^(i-1) ≤ v < 2^i`. The struct is a plain
/// value: [`Histogram::merge`] is associative and commutative with
/// [`Histogram::new`] as identity (`tests/merge_laws.rs` pins all three
/// laws by proptest), which is what makes per-worker or per-task
/// histograms mergeable in any grouping without changing the result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value; `u64::MAX` while empty.
    pub min: u64,
    /// Largest observed value; `0` while empty.
    pub max: u64,
    /// Per-bucket counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// The empty histogram (the merge identity).
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Bucket index of a value: `0` for zero, else `floor(log2 v) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The exclusive upper bound of bucket `i` (`1` for the zero bucket,
    /// else `2^i`); `None` for the last bucket, whose bound is +∞.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i == 0 {
            Some(1)
        } else if i < BUCKETS - 1 {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Fold another histogram into this one. Associative, commutative,
    /// with [`Histogram::new`] as identity.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }

    /// `min` as reported to consumers: `0` while empty, so exports never
    /// carry the `u64::MAX` sentinel.
    pub fn reported_min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate value at quantile `q` (in percent, `0..=100`) from the
    /// bucket boundaries: the inclusive upper edge of the bucket holding
    /// the `ceil(q·count/100)`-th observation, clamped into the observed
    /// `[min, max]` range. Zero for an empty histogram. Log₂ buckets make
    /// this a factor-of-two estimate — the right fidelity for a live
    /// latency display, not for benchmarking.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count.saturating_mul(q.min(100)))
            .div_ceil(100)
            .max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let edge = match Self::bucket_bound(i) {
                    Some(bound) => bound.saturating_sub(1),
                    None => self.max,
                };
                return edge.clamp(self.reported_min(), self.max);
            }
        }
        self.max
    }
}

/// Seconds of traffic covered by one slot of a [`RedRing`].
pub const RED_SLOT_SECS: u64 = 10;

/// Number of slots in a [`RedRing`] — 30 × 10 s covers the 5-minute
/// window; the 1-minute window reads the newest 6 slots.
pub const RED_SLOTS: usize = 30;

#[derive(Debug, Clone)]
struct RedSlot {
    /// Absolute slot number (`now_s / RED_SLOT_SECS`) this cell holds.
    slot: u64,
    requests: u64,
    errors: u64,
    hist: Histogram,
}

impl RedSlot {
    fn reset(&mut self, slot: u64) {
        self.slot = slot;
        self.requests = 0;
        self.errors = 0;
        self.hist = Histogram::new();
    }
}

/// Sliding-window RED (rate / errors / duration) accumulator: a ring of
/// [`RED_SLOTS`] time slots, each holding a request count, an error
/// count, and a duration [`Histogram`].
///
/// Callers inject time as whole seconds on a monotonic clock (the server
/// passes seconds since its own start), which keeps the ring clock-free
/// and unit-testable. Both [`RedRing::record`] and [`RedRing::window`]
/// take the one internal lock, so a window snapshot is always a
/// consistent cut — a concurrent scraper can never observe a torn
/// histogram (pinned by the drain-scrape test in `crates/serve`).
#[derive(Debug)]
pub struct RedRing {
    inner: Mutex<Vec<RedSlot>>,
}

impl Default for RedRing {
    fn default() -> Self {
        RedRing::new()
    }
}

impl RedRing {
    /// A fresh, empty ring.
    pub fn new() -> RedRing {
        RedRing {
            inner: Mutex::new(
                (0..RED_SLOTS)
                    .map(|_| RedSlot {
                        slot: u64::MAX,
                        requests: 0,
                        errors: 0,
                        hist: Histogram::new(),
                    })
                    .collect(),
            ),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<RedSlot>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record one finished request observed at `now_s` (monotonic whole
    /// seconds) with the given duration and error flag.
    pub fn record(&self, now_s: u64, duration_us: u64, error: bool) {
        let slot = now_s / RED_SLOT_SECS;
        let idx = (slot % RED_SLOTS as u64) as usize;
        let mut ring = self.lock();
        if ring[idx].slot != slot {
            ring[idx].reset(slot);
        }
        ring[idx].requests += 1;
        if error {
            ring[idx].errors += 1;
        }
        ring[idx].hist.observe(duration_us);
    }

    /// Merge every slot overlapping the last `window_secs` seconds ending
    /// at `now_s` into one consistent [`RedWindow`] snapshot.
    pub fn window(&self, now_s: u64, window_secs: u64) -> RedWindow {
        let newest = now_s / RED_SLOT_SECS;
        let span = (window_secs.max(RED_SLOT_SECS) / RED_SLOT_SECS).min(RED_SLOTS as u64);
        let oldest = newest.saturating_sub(span - 1);
        let ring = self.lock();
        let mut out = RedWindow {
            window_secs: span * RED_SLOT_SECS,
            requests: 0,
            errors: 0,
            duration: Histogram::new(),
        };
        for cell in ring.iter() {
            if cell.slot >= oldest && cell.slot <= newest {
                out.requests += cell.requests;
                out.errors += cell.errors;
                out.duration.merge(&cell.hist);
            }
        }
        out
    }
}

/// One consistent RED window snapshot from a [`RedRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct RedWindow {
    /// Width of the window actually covered, in seconds.
    pub window_secs: u64,
    /// Requests finished inside the window.
    pub requests: u64,
    /// Of those, how many failed (`error` / shed / drained).
    pub errors: u64,
    /// Duration distribution of the window's requests, in µs.
    pub duration: Histogram,
}

impl RedWindow {
    /// Export the window as gauges under `prefix` (e.g. `serve.red.1m`):
    /// `.requests`, `.errors`, `.p50_us`, `.p95_us`, `.p99_us`,
    /// `.max_us`, and `.window_secs`. Gauges (not counters) because a
    /// sliding window goes down as traffic ages out.
    pub fn export_into(&self, registry: &Registry, prefix: &str) {
        registry.set_gauge(&format!("{prefix}.requests"), self.requests);
        registry.set_gauge(&format!("{prefix}.errors"), self.errors);
        registry.set_gauge(&format!("{prefix}.p50_us"), self.duration.quantile(50));
        registry.set_gauge(&format!("{prefix}.p95_us"), self.duration.quantile(95));
        registry.set_gauge(&format!("{prefix}.p99_us"), self.duration.quantile(99));
        registry.set_gauge(&format!("{prefix}.max_us"), self.duration.max);
        registry.set_gauge(&format!("{prefix}.window_secs"), self.window_secs);
    }
}

/// Handle to an atomic counter registered in a [`Registry`].
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to an atomic gauge registered in a [`Registry`].
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics. Cheap to create; handle lookups take a
/// short lock, updates through handles are lock-free (counters, gauges)
/// or uncontended (histograms).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = match self.counters.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        Counter(Arc::clone(
            map.entry(name.to_string()).or_default(),
        ))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = match self.gauges.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Add `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Set the gauge named `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// Record one observation in the histogram named `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let handle = {
            let mut map = match self.histograms.lock() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
                Arc::new(Mutex::new(Histogram::new()))
            }))
        };
        match handle.lock() {
            Ok(mut h) => h.observe(value),
            Err(poisoned) => poisoned.into_inner().observe(value),
        };
    }

    /// Fold a whole histogram into the one named `name`.
    pub fn merge_histogram(&self, name: &str, other: &Histogram) {
        let handle = {
            let mut map = match self.histograms.lock() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
                Arc::new(Mutex::new(Histogram::new()))
            }))
        };
        match handle.lock() {
            Ok(mut h) => h.merge(other),
            Err(poisoned) => poisoned.into_inner().merge(other),
        };
    }

    /// Freeze the registry into a serializable snapshot, every section
    /// sorted by metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = match self.counters.lock() {
            Ok(m) => m.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
            Err(p) => p.into_inner().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
        };
        let gauges = match self.gauges.lock() {
            Ok(m) => m.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
            Err(p) => p.into_inner().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
        };
        let histograms = match self.histograms.lock() {
            Ok(m) => m
                .iter()
                .map(|(k, v)| {
                    let h = match v.lock() {
                        Ok(h) => h.clone(),
                        Err(p) => p.into_inner().clone(),
                    };
                    (k.clone(), h)
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen, serializable view of a [`Registry`]. Each section is a
/// name-sorted list of `[name, value]` pairs (histogram values are the
/// full [`Histogram`] objects).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Pretty JSON rendering (the `--metrics-out` format), terminated by
    /// a newline. `min` is reported as `0` for empty histograms.
    pub fn to_json(&self) -> String {
        // Render through the value tree so empty-histogram `min` can be
        // normalized without a second snapshot type.
        let mut export = self.clone();
        for (_, h) in export.histograms.iter_mut() {
            h.min = h.reported_min();
        }
        match serde_json::to_string_pretty(&export) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(_) => "{}\n".to_string(), // plain data always encodes
        }
    }

    /// Prometheus text exposition (the `--metrics-format prom` format).
    /// Metric names are sanitized to `[a-zA-Z0-9_]`; histograms render as
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c == 0 && Histogram::bucket_bound(i).is_some() {
                    continue; // keep the exposition small; +Inf always prints
                }
                cumulative += c;
                match Histogram::bucket_bound(i) {
                    Some(bound) => {
                        out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"))
                    }
                    None => out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
                }
            }
            if h.buckets.last() == Some(&0) {
                out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// Rebuild a [`MetricsSnapshot`] from its JSON rendering.
pub fn snapshot_from_json(json: &str) -> Result<MetricsSnapshot, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    serde_json::from_value(&value).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every bucket's lower bound lands in its own bucket.
        for i in 1..BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(1u64 << (i - 1)), i);
        }
    }

    #[test]
    fn observe_and_merge() {
        let mut a = Histogram::new();
        a.observe(0);
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1005);
        assert_eq!((a.min, a.max), (0, 1000));
        assert_eq!(a.buckets.iter().sum::<u64>(), a.count);
    }

    #[test]
    fn registry_roundtrip() {
        let r = Registry::new();
        r.add("cache.hits", 3);
        r.counter("cache.hits").inc();
        r.set_gauge("workers", 4);
        r.observe("latency", 7);
        r.observe("latency", 900);
        let snap = r.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(4));
        assert_eq!(snap.gauge("workers"), Some(4));
        let h = snap.histogram("latency").expect("histogram registered");
        assert_eq!(h.count, 2);
        let json = snap.to_json();
        let back = snapshot_from_json(&json).expect("snapshot JSON round-trips");
        assert_eq!(back.counter("cache.hits"), Some(4));
        assert_eq!(back.histogram("latency").map(|h| h.count), Some(2));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE cache_hits counter"));
        assert!(prom.contains("cache_hits 4"));
        assert!(prom.contains("latency_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("latency_count 2"));
    }

    #[test]
    fn quantile_estimates_from_bucket_edges() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(50), 0);
        for v in [10, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.observe(v);
        }
        // p50 lands in the [8,16) bucket → inclusive edge 15.
        assert_eq!(h.quantile(50), 15);
        // p100 lands in the top occupied bucket, clamped to the true max.
        assert_eq!(h.quantile(100), 5000);
        assert!(h.quantile(99) <= h.max);
        assert!(h.quantile(0) >= h.min);
    }

    #[test]
    fn red_ring_windows_slide_and_merge_consistently() {
        let ring = RedRing::new();
        ring.record(5, 100, false); // slot 0
        ring.record(65, 200, true); // slot 6
        ring.record(70, 300, false); // slot 7
        // 1m window at t=75 covers slots 2..=7: excludes the t=5 request.
        let w1 = ring.window(75, 60);
        assert_eq!((w1.requests, w1.errors), (2, 1));
        assert_eq!(w1.duration.count, 2);
        assert_eq!(w1.duration.sum, 500);
        // 5m window still sees everything.
        let w5 = ring.window(75, 300);
        assert_eq!((w5.requests, w5.errors), (3, 1));
        // Much later, the ring has aged everything out of both windows.
        let old = ring.window(5_000, 300);
        assert_eq!(old.requests, 0);
        // Windows are internally consistent (no tearing even in the
        // single-threaded case: bucket sums match counts).
        assert_eq!(w5.duration.buckets.iter().sum::<u64>(), w5.duration.count);
    }

    #[test]
    fn red_ring_reuses_slots_across_wraparound() {
        let ring = RedRing::new();
        ring.record(0, 1, false);
        // Same ring index RED_SLOTS slots later must evict the old slot.
        let later = RED_SLOTS as u64 * RED_SLOT_SECS;
        ring.record(later, 2, false);
        let w = ring.window(later, 60);
        assert_eq!(w.requests, 1);
        assert_eq!(w.duration.sum, 2);
    }

    #[test]
    fn red_window_exports_gauges() {
        let ring = RedRing::new();
        ring.record(3, 400, false);
        ring.record(4, 800, true);
        let r = Registry::new();
        ring.window(5, 60).export_into(&r, "serve.red.1m");
        let snap = r.snapshot();
        assert_eq!(snap.gauge("serve.red.1m.requests"), Some(2));
        assert_eq!(snap.gauge("serve.red.1m.errors"), Some(1));
        assert_eq!(snap.gauge("serve.red.1m.window_secs"), Some(60));
        assert_eq!(snap.gauge("serve.red.1m.max_us"), Some(800));
        assert!(snap.gauge("serve.red.1m.p50_us").unwrap_or(0) >= 400);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let r = Registry::new();
        r.merge_histogram("empty", &Histogram::new());
        let json = r.snapshot().to_json();
        let back = snapshot_from_json(&json).expect("parses");
        let h = back.histogram("empty").expect("present");
        assert_eq!((h.count, h.min, h.max), (0, 0, 0));
    }
}
