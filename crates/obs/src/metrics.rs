//! The metrics registry: atomic counters, gauges, and log₂-bucketed
//! histograms with an associative, commutative merge.
//!
//! A [`Registry`] is instantiable (not global): the CLI creates one per
//! run and threads it through [`crate::ObsHooks`], so unit tests and
//! parallel studies never share state. Counter and gauge handles are
//! `Arc`-backed atomics, safe to update from any worker; histograms take
//! a short uncontended lock. Exports are deterministic: names sort
//! lexicographically in both the JSON and Prometheus renderings.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram.
///
/// Bucket `0` counts observations equal to zero; bucket `i ≥ 1` counts
/// observations `v` with `2^(i-1) ≤ v < 2^i`. The struct is a plain
/// value: [`Histogram::merge`] is associative and commutative with
/// [`Histogram::new`] as identity (`tests/merge_laws.rs` pins all three
/// laws by proptest), which is what makes per-worker or per-task
/// histograms mergeable in any grouping without changing the result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value; `u64::MAX` while empty.
    pub min: u64,
    /// Largest observed value; `0` while empty.
    pub max: u64,
    /// Per-bucket counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// The empty histogram (the merge identity).
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Bucket index of a value: `0` for zero, else `floor(log2 v) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The exclusive upper bound of bucket `i` (`1` for the zero bucket,
    /// else `2^i`); `None` for the last bucket, whose bound is +∞.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i == 0 {
            Some(1)
        } else if i < BUCKETS - 1 {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Fold another histogram into this one. Associative, commutative,
    /// with [`Histogram::new`] as identity.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }

    /// `min` as reported to consumers: `0` while empty, so exports never
    /// carry the `u64::MAX` sentinel.
    pub fn reported_min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

/// Handle to an atomic counter registered in a [`Registry`].
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to an atomic gauge registered in a [`Registry`].
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics. Cheap to create; handle lookups take a
/// short lock, updates through handles are lock-free (counters, gauges)
/// or uncontended (histograms).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = match self.counters.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        Counter(Arc::clone(
            map.entry(name.to_string()).or_default(),
        ))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = match self.gauges.lock() {
            Ok(m) => m,
            Err(poisoned) => poisoned.into_inner(),
        };
        Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Add `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Set the gauge named `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// Record one observation in the histogram named `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let handle = {
            let mut map = match self.histograms.lock() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
                Arc::new(Mutex::new(Histogram::new()))
            }))
        };
        match handle.lock() {
            Ok(mut h) => h.observe(value),
            Err(poisoned) => poisoned.into_inner().observe(value),
        };
    }

    /// Fold a whole histogram into the one named `name`.
    pub fn merge_histogram(&self, name: &str, other: &Histogram) {
        let handle = {
            let mut map = match self.histograms.lock() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
                Arc::new(Mutex::new(Histogram::new()))
            }))
        };
        match handle.lock() {
            Ok(mut h) => h.merge(other),
            Err(poisoned) => poisoned.into_inner().merge(other),
        };
    }

    /// Freeze the registry into a serializable snapshot, every section
    /// sorted by metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = match self.counters.lock() {
            Ok(m) => m.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
            Err(p) => p.into_inner().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
        };
        let gauges = match self.gauges.lock() {
            Ok(m) => m.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
            Err(p) => p.into_inner().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
        };
        let histograms = match self.histograms.lock() {
            Ok(m) => m
                .iter()
                .map(|(k, v)| {
                    let h = match v.lock() {
                        Ok(h) => h.clone(),
                        Err(p) => p.into_inner().clone(),
                    };
                    (k.clone(), h)
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen, serializable view of a [`Registry`]. Each section is a
/// name-sorted list of `[name, value]` pairs (histogram values are the
/// full [`Histogram`] objects).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Pretty JSON rendering (the `--metrics-out` format), terminated by
    /// a newline. `min` is reported as `0` for empty histograms.
    pub fn to_json(&self) -> String {
        // Render through the value tree so empty-histogram `min` can be
        // normalized without a second snapshot type.
        let mut export = self.clone();
        for (_, h) in export.histograms.iter_mut() {
            h.min = h.reported_min();
        }
        match serde_json::to_string_pretty(&export) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(_) => "{}\n".to_string(), // plain data always encodes
        }
    }

    /// Prometheus text exposition (the `--metrics-format prom` format).
    /// Metric names are sanitized to `[a-zA-Z0-9_]`; histograms render as
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c == 0 && Histogram::bucket_bound(i).is_some() {
                    continue; // keep the exposition small; +Inf always prints
                }
                cumulative += c;
                match Histogram::bucket_bound(i) {
                    Some(bound) => {
                        out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"))
                    }
                    None => out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
                }
            }
            if h.buckets.last() == Some(&0) {
                out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// Rebuild a [`MetricsSnapshot`] from its JSON rendering.
pub fn snapshot_from_json(json: &str) -> Result<MetricsSnapshot, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    serde_json::from_value(&value).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every bucket's lower bound lands in its own bucket.
        for i in 1..BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(1u64 << (i - 1)), i);
        }
    }

    #[test]
    fn observe_and_merge() {
        let mut a = Histogram::new();
        a.observe(0);
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1005);
        assert_eq!((a.min, a.max), (0, 1000));
        assert_eq!(a.buckets.iter().sum::<u64>(), a.count);
    }

    #[test]
    fn registry_roundtrip() {
        let r = Registry::new();
        r.add("cache.hits", 3);
        r.counter("cache.hits").inc();
        r.set_gauge("workers", 4);
        r.observe("latency", 7);
        r.observe("latency", 900);
        let snap = r.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(4));
        assert_eq!(snap.gauge("workers"), Some(4));
        let h = snap.histogram("latency").expect("histogram registered");
        assert_eq!(h.count, 2);
        let json = snap.to_json();
        let back = snapshot_from_json(&json).expect("snapshot JSON round-trips");
        assert_eq!(back.counter("cache.hits"), Some(4));
        assert_eq!(back.histogram("latency").map(|h| h.count), Some(2));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE cache_hits counter"));
        assert!(prom.contains("cache_hits 4"));
        assert!(prom.contains("latency_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("latency_count 2"));
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let r = Registry::new();
        r.merge_histogram("empty", &Histogram::new());
        let json = r.snapshot().to_json();
        let back = snapshot_from_json(&json).expect("parses");
        let h = back.histogram("empty").expect("present");
        assert_eq!((h.count, h.min, h.max), (0, 0, 0));
    }
}
