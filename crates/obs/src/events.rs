//! The single stderr formatter for operational events.
//!
//! Every diagnostic line the CLI, pipeline, and examples emit goes
//! through [`render`]: `topic: message` for informational events,
//! `topic: warning: message` for warnings. This replaces the ad-hoc
//! `eprintln!` prints that had drifted into inconsistent prefixes
//! (`"journal:"` vs bare text vs `"warning:"`-first), while keeping the
//! established `journal:` / `quarantine:` topic prefixes stable so
//! existing consumers of stderr keep matching.
//!
//! Events never touch stdout — stdout is reserved for study output and
//! is covered by the byte-identical differential gates.

use std::fmt;

/// Event severity. Only two levels: operational narration and warnings.
/// Hard failures are `Err` values, not events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Normal operational narration.
    Info,
    /// Something degraded or surprising that did not stop the run.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => Ok(()),
            Severity::Warn => f.write_str("warning: "),
        }
    }
}

/// Format one event line (without trailing newline):
/// `topic: message` or `topic: warning: message`.
pub fn render(topic: &str, severity: Severity, message: &str) -> String {
    format!("{topic}: {severity}{message}")
}

/// Emit an informational event to stderr.
pub fn info(topic: &str, message: &str) {
    eprintln!("{}", render(topic, Severity::Info, message));
}

/// Emit a warning event to stderr.
pub fn warn(topic: &str, message: &str) {
    eprintln!("{}", render(topic, Severity::Warn, message));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_renders_topic_prefix() {
        assert_eq!(
            render("journal", Severity::Info, "3 outcome(s) replayed"),
            "journal: 3 outcome(s) replayed"
        );
    }

    #[test]
    fn warn_renders_warning_marker_after_topic() {
        let line = render("journal", Severity::Warn, "corrupt tail truncated on resume");
        assert_eq!(line, "journal: warning: corrupt tail truncated on resume");
        // The topic prefix and the message both survive verbatim, so
        // substring assertions on either keep working.
        assert!(line.starts_with("journal: "));
        assert!(line.contains("corrupt tail truncated on resume"));
    }
}
