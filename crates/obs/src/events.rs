//! The single stderr formatter for operational events.
//!
//! Every diagnostic line the CLI, pipeline, and examples emit goes
//! through [`render`]: `topic: message` for informational events,
//! `topic: warning: message` for warnings. This replaces the ad-hoc
//! `eprintln!` prints that had drifted into inconsistent prefixes
//! (`"journal:"` vs bare text vs `"warning:"`-first), while keeping the
//! established `journal:` / `quarantine:` topic prefixes stable so
//! existing consumers of stderr keep matching.
//!
//! Events never touch stdout — stdout is reserved for study output and
//! is covered by the byte-identical differential gates.
//!
//! Emitted lines carry a monotonic elapsed-ms prefix (`[+12.345ms] `)
//! taken from a process-wide epoch pinned at the first event, so
//! interleaved stderr from a daemon serving concurrent requests can be
//! re-ordered after the fact. The prefix wraps [`render`]'s output
//! rather than changing it: the pinned `journal:` / `require --journal`
//! substrings stay intact and every existing `contains`-style consumer
//! keeps matching.

use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Milliseconds elapsed since the event epoch (pinned at first use).
/// Monotonic: taken from [`Instant`], never wall-clock.
pub fn elapsed_ms() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

/// Prefix a rendered event line with the monotonic elapsed-ms stamp:
/// `[+12.345ms] topic: message`.
pub fn stamp(line: &str) -> String {
    format!("[+{:.3}ms] {line}", elapsed_ms())
}

/// Event severity. Only two levels: operational narration and warnings.
/// Hard failures are `Err` values, not events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Normal operational narration.
    Info,
    /// Something degraded or surprising that did not stop the run.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => Ok(()),
            Severity::Warn => f.write_str("warning: "),
        }
    }
}

/// Format one event line (without trailing newline):
/// `topic: message` or `topic: warning: message`.
pub fn render(topic: &str, severity: Severity, message: &str) -> String {
    format!("{topic}: {severity}{message}")
}

/// Emit an informational event to stderr, elapsed-ms-stamped.
pub fn info(topic: &str, message: &str) {
    eprintln!("{}", stamp(&render(topic, Severity::Info, message)));
}

/// Emit a warning event to stderr, elapsed-ms-stamped.
pub fn warn(topic: &str, message: &str) {
    eprintln!("{}", stamp(&render(topic, Severity::Warn, message)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_renders_topic_prefix() {
        assert_eq!(
            render("journal", Severity::Info, "3 outcome(s) replayed"),
            "journal: 3 outcome(s) replayed"
        );
    }

    #[test]
    fn warn_renders_warning_marker_after_topic() {
        let line = render("journal", Severity::Warn, "corrupt tail truncated on resume");
        assert_eq!(line, "journal: warning: corrupt tail truncated on resume");
        // The topic prefix and the message both survive verbatim, so
        // substring assertions on either keep working.
        assert!(line.starts_with("journal: "));
        assert!(line.contains("corrupt tail truncated on resume"));
    }

    #[test]
    fn stamp_prefixes_without_disturbing_the_rendered_line() {
        let rendered = render("journal", Severity::Info, "3 outcome(s) replayed");
        let stamped = stamp(&rendered);
        // Shape: `[+<float>ms] journal: ...` — the pinned substrings
        // survive because the stamp only prepends.
        assert!(stamped.starts_with("[+"), "{stamped}");
        let rest = stamped.strip_prefix("[+").expect("prefix");
        let (ms, tail) = rest.split_once("ms] ").expect("ms] separator");
        assert!(ms.parse::<f64>().is_ok(), "stamp is a float: {ms}");
        assert_eq!(tail, rendered);
        assert!(stamped.contains("journal: "));
    }

    #[test]
    fn elapsed_ms_is_monotonic() {
        let a = elapsed_ms();
        let b = elapsed_ms();
        assert!(b >= a);
    }
}
