//! The run manifest: a self-describing record of one study run.
//!
//! The manifest captures everything needed to audit or reproduce a run —
//! seed and flags, the corpus digest, wall and per-stage times, the
//! quarantine summary, and (for durable runs) what the journal replayed
//! versus re-mined. The CLI assembles a [`RunManifest`] after the study
//! completes and writes [`RunManifest::render`] atomically through
//! `report::atomic`, so a crash mid-write never leaves a torn manifest.
//!
//! The schema is validated structurally by [`crate::validate`] and is
//! versioned through [`MANIFEST_VERSION`]; consumers should reject
//! manifests with a version they do not know.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Current manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;

/// Wall time of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageWall {
    /// Stage name (`"generate"`, `"funnel"`, `"mine"`, `"stats"`).
    pub name: String,
    /// Stage wall time in microseconds.
    pub wall_us: u64,
}

/// Per-class quarantine tallies carried in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCount {
    /// Degradation class name.
    pub class: String,
    /// Versions recovered (salvaged) under this class.
    pub recovered: u64,
    /// Histories quarantined under this class.
    pub quarantined: u64,
}

/// Quarantine summary carried in the manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineManifest {
    /// Total versions recovered across all classes.
    pub recovered: u64,
    /// Total histories quarantined across all classes.
    pub quarantined: u64,
    /// Tasks that exceeded the `--deadline-ms` watchdog.
    pub deadline_exceeded: u64,
    /// Per-class breakdown, in the quarantine report's canonical class
    /// order (classes with no events are omitted).
    pub classes: Vec<ClassCount>,
}

/// Journal summary carried in the manifest: what a durable run replayed
/// versus re-mined, and whether a corrupt tail was truncated on resume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalManifest {
    /// Journal file path.
    pub path: String,
    /// Outcomes replayed from the journal instead of re-mined.
    pub replayed: u64,
    /// Outcomes mined fresh this run.
    pub mined_fresh: u64,
    /// Journal entries discarded as stale (key no longer in the corpus).
    pub stale_discarded: u64,
    /// Description of a corrupt journal tail truncated on resume, if any.
    pub corrupt_tail: Option<String>,
}

/// A self-describing record of one study run. Field order is the JSON
/// key order (the vendored serde preserves declaration order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub manifest_version: u64,
    /// The command that produced this run (e.g. `"schevo study"`).
    pub command: String,
    /// Universe generator seed.
    pub seed: u64,
    /// Universe scale divisor (paper scale = 1).
    pub scale_divisor: u64,
    /// Worker thread count.
    pub workers: u64,
    /// Whether the parse/diff cache was enabled.
    pub cache: bool,
    /// Whether strict mode (abort on first degradation) was on.
    pub strict: bool,
    /// Fault injection percentage, when `--inject-faults` was given.
    pub inject_faults_pct: Option<u64>,
    /// Fault injection seed, when faults were injected.
    pub fault_seed: Option<u64>,
    /// Watchdog deadline per mining task, when `--deadline-ms` was given.
    pub deadline_ms: Option<u64>,
    /// Trace output path, when `--trace-out` was given.
    pub trace_out: Option<String>,
    /// Metrics output path, when `--metrics-out` was given.
    pub metrics_out: Option<String>,
    /// SHA-1 digest of the generated (and possibly fault-injected)
    /// corpus: seed, scale, repo names, SQL paths, branch tips.
    pub corpus_digest: String,
    /// Total run wall time in microseconds.
    pub wall_us: u64,
    /// Per-stage wall times, pipeline order.
    pub stages: Vec<StageWall>,
    /// Quarantine summary.
    pub quarantine: QuarantineManifest,
    /// Journal summary, when the run was durable (`--journal`).
    pub journal: Option<JournalManifest>,
}

impl RunManifest {
    /// Pretty JSON rendering, newline-terminated — the exact bytes the
    /// CLI writes to `--manifest-out`.
    pub fn render(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(_) => "{}\n".to_string(), // plain data always encodes
        }
    }

    /// Parse a manifest back from its JSON rendering.
    pub fn from_json(json: &str) -> Result<RunManifest, String> {
        let value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        serde_json::from_value(&value).map_err(|e| e.to_string())
    }
}

/// Canonical pipeline order for stage names in the manifest.
pub const STAGE_ORDER: [&str; 4] = ["generate", "funnel", "mine", "stats"];

/// Extract per-stage wall times from a metrics snapshot: every gauge
/// named `study.stage.<name>.nanos` becomes a [`StageWall`] (nanoseconds
/// rounded down to microseconds), ordered by [`STAGE_ORDER`] with any
/// unknown stages appended alphabetically.
pub fn stages_from_snapshot(snapshot: &MetricsSnapshot) -> Vec<StageWall> {
    let mut found: Vec<StageWall> = snapshot
        .gauges
        .iter()
        .filter_map(|(name, nanos)| {
            let inner = name
                .strip_prefix("study.stage.")?
                .strip_suffix(".nanos")?;
            Some(StageWall {
                name: inner.to_string(),
                wall_us: nanos / 1_000,
            })
        })
        .collect();
    found.sort_by_key(|s| {
        (
            STAGE_ORDER
                .iter()
                .position(|known| *known == s.name)
                .unwrap_or(STAGE_ORDER.len()),
            s.name.clone(),
        )
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> RunManifest {
        RunManifest {
            manifest_version: MANIFEST_VERSION,
            command: "schevo study".to_string(),
            seed: 2019,
            scale_divisor: 20,
            workers: 2,
            cache: true,
            strict: false,
            inject_faults_pct: None,
            fault_seed: None,
            deadline_ms: Some(5_000),
            trace_out: Some("trace.jsonl".to_string()),
            metrics_out: None,
            corpus_digest: "0".repeat(40),
            wall_us: 1_234_567,
            stages: vec![StageWall {
                name: "mine".to_string(),
                wall_us: 900_000,
            }],
            quarantine: QuarantineManifest::default(),
            journal: Some(JournalManifest {
                path: "run.journal".to_string(),
                replayed: 3,
                mined_fresh: 7,
                stale_discarded: 0,
                corrupt_tail: None,
            }),
        }
    }

    #[test]
    fn manifest_json_roundtrips() {
        let m = sample();
        let json = m.render();
        assert!(json.ends_with('\n'));
        let back = RunManifest::from_json(&json).expect("manifest parses");
        assert_eq!(back, m);
    }

    #[test]
    fn stage_walls_come_from_gauges_in_pipeline_order() {
        let r = Registry::new();
        r.set_gauge("study.stage.mine.nanos", 2_000_000);
        r.set_gauge("study.stage.funnel.nanos", 1_500);
        r.set_gauge("study.stage.custom.nanos", 99_000);
        r.set_gauge("unrelated.gauge", 7);
        let stages = stages_from_snapshot(&r.snapshot());
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["funnel", "mine", "custom"]);
        assert_eq!(stages[0].wall_us, 1);
        assert_eq!(stages[1].wall_us, 2_000);
    }
}
