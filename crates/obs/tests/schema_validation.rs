//! Schema validation for the emitted observability artifacts.
//!
//! Two layers: self-generated round-trips (the library's own emitters
//! must satisfy its own validators), and an env-var-driven gate the CI
//! script points at files a *real* CLI run produced:
//!
//! ```sh
//! SCHEVO_TRACE_FILE=trace.jsonl \
//! SCHEVO_METRICS_FILE=metrics.json \
//! SCHEVO_MANIFEST_FILE=manifest.json \
//! SCHEVO_REQUEST_LOG_FILE=requests.jsonl \
//!   cargo test -p schevo-obs --test schema_validation
//! ```
//!
//! Unset variables skip their check, so the suite stays green in a plain
//! `cargo test` with no artifacts on disk.

use schevo_obs::manifest::{
    ClassCount, JournalManifest, QuarantineManifest, RunManifest, StageWall, MANIFEST_VERSION,
};
use schevo_obs::metrics::Registry;
use schevo_obs::trace::{to_chrome_jsonl, TraceEvent};
use schevo_obs::validate::{
    validate_manifest_json, validate_metrics_json, validate_request_log_jsonl,
    validate_trace_jsonl,
};

#[test]
fn emitted_trace_jsonl_validates() {
    let events = vec![
        TraceEvent {
            name: "study.mine".to_string(),
            cat: "study".to_string(),
            ts_us: 10,
            dur_us: 250,
            tid: 1,
            seq: 0,
            args: vec![("candidates".to_string(), "42".to_string())],
        },
        TraceEvent {
            name: "ddl.parse".to_string(),
            cat: "ddl".to_string(),
            ts_us: 12,
            dur_us: 3,
            tid: 2,
            seq: 1,
            args: Vec::new(),
        },
    ];
    let jsonl = to_chrome_jsonl(&events);
    assert_eq!(validate_trace_jsonl(&jsonl), Ok(2));
}

#[test]
fn emitted_metrics_json_validates() {
    let r = Registry::new();
    r.add("mine.parse.hits", 10);
    r.add("mine.parse.misses", 4);
    r.set_gauge("study.stage.mine.nanos", 1_000_000);
    for v in [0, 1, 3, 900, u64::MAX] {
        r.observe("mine.task.parse_nanos", v);
    }
    let snapshot = r.snapshot();
    assert_eq!(validate_metrics_json(&snapshot.to_json()), Ok(4));
    // The Prometheus rendering carries the same totals.
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("mine_parse_hits 10"));
    assert!(prom.contains("mine_task_parse_nanos_count 5"));
    assert!(prom.contains("_bucket{le=\"+Inf\"} 5"));
}

#[test]
fn emitted_manifest_validates() {
    let manifest = RunManifest {
        manifest_version: MANIFEST_VERSION,
        command: "schevo study".to_string(),
        seed: 2019,
        scale_divisor: 1,
        workers: 8,
        cache: true,
        strict: false,
        inject_faults_pct: Some(10),
        fault_seed: Some(7),
        deadline_ms: Some(5_000),
        trace_out: Some("trace.jsonl".to_string()),
        metrics_out: Some("metrics.json".to_string()),
        corpus_digest: "a".repeat(40),
        wall_us: 9_000_000,
        stages: vec![
            StageWall {
                name: "funnel".to_string(),
                wall_us: 100,
            },
            StageWall {
                name: "mine".to_string(),
                wall_us: 8_000_000,
            },
        ],
        quarantine: QuarantineManifest {
            recovered: 2,
            quarantined: 1,
            deadline_exceeded: 1,
            classes: vec![ClassCount {
                class: "Syntax".to_string(),
                recovered: 2,
                quarantined: 1,
            }],
        },
        journal: Some(JournalManifest {
            path: "run.journal".to_string(),
            replayed: 5,
            mined_fresh: 37,
            stale_discarded: 1,
            corrupt_tail: Some("truncated 17 trailing byte(s)".to_string()),
        }),
    };
    assert_eq!(validate_manifest_json(&manifest.render()), Ok(2));
}

#[test]
fn validators_reject_wrong_shapes() {
    assert!(validate_trace_jsonl("not json\n").is_err());
    assert!(validate_trace_jsonl("{\"name\": \"x\"}\n").is_err());
    assert!(validate_metrics_json("[]").is_err());
    assert!(validate_manifest_json("{\"manifest_version\": 99}").is_err());
}

/// CI gate: validate artifact files produced by a real run, when the
/// environment points at them.
#[test]
fn artifacts_on_disk_validate() {
    type Validator = fn(&str) -> Result<usize, String>;
    let checks: [(&str, Validator); 4] = [
        ("SCHEVO_TRACE_FILE", validate_trace_jsonl),
        ("SCHEVO_METRICS_FILE", validate_metrics_json),
        ("SCHEVO_MANIFEST_FILE", validate_manifest_json),
        ("SCHEVO_REQUEST_LOG_FILE", validate_request_log_jsonl),
    ];
    for (var, check) in checks {
        let Ok(path) = std::env::var(var) else { continue };
        if path.is_empty() {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{var}={path}: unreadable: {e}"));
        match check(&text) {
            Ok(n) => eprintln!("{var}={path}: {n} record(s) valid"),
            Err(e) => panic!("{var}={path}: schema violation: {e}"),
        }
    }
}
