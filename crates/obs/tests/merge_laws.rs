//! Property tests pinning the algebra the observability layer relies on:
//! histogram merge is associative and commutative with the empty
//! histogram as identity, and the trace shard merge is independent of
//! which worker produced which shard. These laws are what make
//! per-worker metric tallies and per-thread span buffers combinable in
//! any grouping without changing the exported artifacts.

use proptest::prelude::*;
use schevo_obs::metrics::Histogram;
use schevo_obs::trace::{merge_shards, TraceEvent};

fn histogram_strategy() -> impl Strategy<Value = Histogram> {
    // Values spanning the full bucket range, including 0 and huge ones.
    proptest::collection::vec(
        prop_oneof![
            Just(0u64),
            1u64..16,
            1u64..1_000_000,
            (u64::MAX - 1000)..u64::MAX,
        ],
        0..24,
    )
    .prop_map(|values| {
        let mut h = Histogram::new();
        for v in values {
            h.observe(v);
        }
        h
    })
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in histogram_strategy(),
        b in histogram_strategy(),
    ) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in histogram_strategy(),
        b in histogram_strategy(),
        c in histogram_strategy(),
    ) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn empty_histogram_is_merge_identity(a in histogram_strategy()) {
        let empty = Histogram::new();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    #[test]
    fn histogram_invariants_hold(a in histogram_strategy()) {
        prop_assert_eq!(a.buckets.iter().sum::<u64>(), a.count);
        if a.count > 0 {
            prop_assert!(a.min <= a.max);
            prop_assert_eq!(a.reported_min(), a.min);
        } else {
            prop_assert_eq!(a.reported_min(), 0);
        }
    }
}

fn events_strategy() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u64..500, "[a-z]{1,6}"), 0..20).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (ts, name))| TraceEvent {
                cat: name.clone(),
                name,
                ts_us: ts,
                dur_us: 1,
                tid: 1,
                seq: i as u64,
                args: Vec::new(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn shard_merge_is_order_independent(
        shards in proptest::collection::vec(events_strategy(), 0..5),
        swap_a in 0usize..5,
        swap_b in 0usize..5,
    ) {
        let mut shards = shards;
        // Re-ticket seq across shards so the (ts, seq) key is a total
        // order, as the global ticket counter guarantees in production.
        let mut next = 0u64;
        for shard in shards.iter_mut() {
            for e in shard.iter_mut() {
                e.seq = next;
                next += 1;
            }
        }
        let baseline = merge_shards(shards.clone());
        if !shards.is_empty() {
            let (a, b) = (swap_a % shards.len(), swap_b % shards.len());
            shards.swap(a, b);
        }
        shards.reverse();
        let permuted = merge_shards(shards.clone());
        prop_assert_eq!(&baseline, &permuted);

        // Regrouping (merge of merges) also leaves the sequence fixed.
        let k = shards.len() / 2;
        let left = merge_shards(shards[..k].to_vec());
        let right = merge_shards(shards[k..].to_vec());
        prop_assert_eq!(baseline, merge_shards(vec![left, right]));
    }
}
