//! Hand-scripted exemplar projects mirroring the paper's per-project
//! figures (Figs. 1, 2, 5, 6, 7, 8, 9).
//!
//! Each exemplar is authored as an explicit op-level schedule through
//! [`ExemplarBuilder`], then materialized by the standard realizer — so the
//! figure series are produced by mining real repositories, exactly like the
//! main corpus.

use crate::plan::{CommitPlan, ProjectPlan, SchemaOp};
use crate::realize::{realize, GeneratedProject};
use rand::rngs::StdRng;
use rand::SeedableRng;
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_core::taxa::Taxon;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which figure an exemplar reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FigureTag {
    /// Fig. 1 left project (active; schema size + monthly activity).
    Fig1A,
    /// Fig. 1 right project (second active project).
    Fig1B,
    /// Fig. 2: the builderscon_octav reference example ("ladder up").
    Fig2,
    /// Fig. 5: a typical Almost Frozen schema (one active commit, 3 type
    /// changes).
    Fig5,
    /// Fig. 6: focused expansion of two tables (FS&Frozen).
    Fig6,
    /// Fig. 7: moderate tempo (tls-observatory-like).
    Fig7,
    /// Fig. 8 top: two-step schema increase with turf (FS&Low, short SUP).
    Fig8A,
    /// Fig. 8 bottom: a very large reed with very low other change (FS&Low).
    Fig8B,
    /// Fig. 9: high systematic activity with idle periods.
    Fig9,
}

impl FigureTag {
    /// All exemplars in figure order.
    pub const ALL: [FigureTag; 9] = [
        FigureTag::Fig1A,
        FigureTag::Fig1B,
        FigureTag::Fig2,
        FigureTag::Fig5,
        FigureTag::Fig6,
        FigureTag::Fig7,
        FigureTag::Fig8A,
        FigureTag::Fig8B,
        FigureTag::Fig9,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FigureTag::Fig1A => "Figure 1 (left): active project A",
            FigureTag::Fig1B => "Figure 1 (right): active project B",
            FigureTag::Fig2 => "Figure 2: reference example (ladder up)",
            FigureTag::Fig5 => "Figure 5: almost frozen",
            FigureTag::Fig6 => "Figure 6: focused expansion of two tables",
            FigureTag::Fig7 => "Figure 7: moderate tempo",
            FigureTag::Fig8A => "Figure 8 (top): two-step increase + turf",
            FigureTag::Fig8B => "Figure 8 (bottom): one very large reed",
            FigureTag::Fig9 => "Figure 9: high systematic activity",
        }
    }
}

/// Builder for hand-authored schedules with validated ops and exact
/// expansion/maintenance bookkeeping.
pub struct ExemplarBuilder {
    name: String,
    taxon: Taxon,
    start_arities: Vec<u64>,
    arities: BTreeMap<u64, u64>,
    next_id: u64,
    schedule: Vec<CommitPlan>,
}

impl ExemplarBuilder {
    /// Start a project whose V0 schema has the given table arities
    /// (tables get ids `0..n`).
    pub fn new(name: &str, taxon: Taxon, start_arities: &[u64]) -> Self {
        let mut arities = BTreeMap::new();
        for (i, &a) in start_arities.iter().enumerate() {
            assert!(a >= 1, "tables need at least one column");
            arities.insert(i as u64, a);
        }
        ExemplarBuilder {
            name: name.to_string(),
            taxon,
            start_arities: start_arities.to_vec(),
            next_id: start_arities.len() as u64,
            arities,
            schedule: Vec::new(),
        }
    }

    /// Allocate the id the next `CreateTable` op must use.
    pub fn new_table_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Append an active commit at `day` with the given ops; panics if an op
    /// is inconsistent with the live state (exemplars are hand-authored —
    /// fail loudly at construction).
    pub fn commit(&mut self, day: i64, ops: Vec<SchemaOp>) -> &mut Self {
        let mut expansion = 0u64;
        let mut maintenance = 0u64;
        for op in &ops {
            match *op {
                SchemaOp::CreateTable { id, arity } => {
                    assert!(arity >= 1, "born tables need a column");
                    assert!(
                        self.arities.insert(id, arity).is_none(),
                        "table id {id} reused"
                    );
                    expansion += arity;
                }
                SchemaOp::InjectColumns { table, count } => {
                    let a = self.arities.get_mut(&table).expect("inject: live table");
                    *a += count;
                    expansion += count;
                }
                SchemaOp::DropTable { table } => {
                    let a = self.arities.remove(&table).expect("drop: live table");
                    assert!(!self.arities.is_empty(), "cannot drop the last table");
                    maintenance += a;
                }
                SchemaOp::EjectColumns { table, count } => {
                    let a = self.arities.get_mut(&table).expect("eject: live table");
                    assert!(*a > count, "ejection would empty table {table}");
                    *a -= count;
                    maintenance += count;
                }
                SchemaOp::ChangeTypes { table, count } => {
                    let a = self.arities[&table];
                    assert!(count <= a, "type change beyond arity");
                    maintenance += count;
                }
                SchemaOp::TogglePk { table, count } => {
                    let a = self.arities[&table];
                    assert!(count <= a, "pk toggle beyond arity");
                    maintenance += count;
                }
            }
        }
        assert!(expansion + maintenance > 0, "use inactive() for empty commits");
        self.schedule.push(CommitPlan {
            day,
            ops,
            expansion,
            maintenance,
        });
        self
    }

    /// Append a non-active commit at `day`.
    pub fn inactive(&mut self, day: i64) -> &mut Self {
        self.schedule.push(CommitPlan {
            day,
            ops: Vec::new(),
            expansion: 0,
            maintenance: 0,
        });
        self
    }

    /// Finish into a [`ProjectPlan`]. `index` controls naming/layout.
    pub fn finish(&mut self, index: usize) -> ProjectPlan {
        let mut schedule = std::mem::take(&mut self.schedule);
        schedule.sort_by_key(|c| c.day);
        let active_commits = schedule.iter().filter(|c| c.activity() > 0).count() as u64;
        let activity: u64 = schedule.iter().map(|c| c.activity()).sum();
        let reeds = schedule
            .iter()
            .filter(|c| c.activity() > REED_THRESHOLD)
            .count() as u64;
        let sup_days = schedule.last().map(|c| c.day as u64).unwrap_or(0);
        let commits = schedule.len() as u64 + 1;
        ProjectPlan {
            index,
            name: self.name.clone(),
            taxon: self.taxon,
            tables_start: self.start_arities.len() as u64,
            start_arities: self.start_arities.clone(),
            commits,
            active_commits,
            activity,
            reeds,
            schedule,
            sup_days,
            pup_months: sup_days / 30 + 13,
            total_commits: commits * 20,
            contributors: 5,
            stars: 120,
            v0_date: (2015, 3, 2),
        }
    }
}

fn create(b: &mut ExemplarBuilder, arity: u64) -> SchemaOp {
    SchemaOp::CreateTable {
        id: b.new_table_id(),
        arity,
    }
}

/// Build one exemplar project.
pub fn build(tag: FigureTag) -> GeneratedProject {
    let mut rng = StdRng::seed_from_u64(0x5eed ^ tag as u64);
    let plan = match tag {
        FigureTag::Fig1A => fig1a(),
        FigureTag::Fig1B => fig1b(),
        FigureTag::Fig2 => fig2(),
        FigureTag::Fig5 => fig5(),
        FigureTag::Fig6 => fig6(),
        FigureTag::Fig7 => fig7(),
        FigureTag::Fig8A => fig8a(),
        FigureTag::Fig8B => fig8b(),
        FigureTag::Fig9 => fig9(),
    };
    realize(&mut rng, &plan)
}

/// Build every exemplar.
pub fn all_exemplars() -> Vec<(FigureTag, GeneratedProject)> {
    FigureTag::ALL.iter().map(|&t| (t, build(t))).collect()
}

/// Fig. 1 (left): an active project growing from 12 to ~40 tables over
/// three years with spikes and steady growth.
fn fig1a() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("corto/iotdb", Taxon::Active, &[5, 4, 6, 3, 5, 4, 6, 5, 3, 4, 5, 6]);
    // Year 1: steady monthly growth.
    for m in 1..=10i64 {
        let t = create(&mut b, 4);
        b.commit(m * 30, vec![t]);
        if m % 3 == 0 {
            b.inactive(m * 30 + 10);
        }
    }
    // A restructuring spike.
    let t1 = create(&mut b, 8);
    let t2 = create(&mut b, 6);
    b.commit(
        330,
        vec![
            SchemaOp::DropTable { table: 3 },
            SchemaOp::ChangeTypes { table: 0, count: 4 },
            t1,
            t2,
        ],
    );
    // Year 2: idle then steady again.
    for m in 16..=24i64 {
        let t = create(&mut b, 3);
        b.commit(
            m * 30,
            vec![t, SchemaOp::InjectColumns { table: 0, count: 1 }],
        );
    }
    // Year 3: maintenance-heavy period.
    for m in 28..=34i64 {
        b.commit(
            m * 30,
            vec![
                SchemaOp::ChangeTypes { table: 1, count: 2 },
                SchemaOp::InjectColumns { table: 2, count: 2 },
            ],
        );
    }
    b.finish(0)
}

/// Fig. 1 (right): a second active project with a different rhythm — two
/// bursts separated by idleness.
fn fig1b() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("meshping/telemetry", Taxon::Active, &[6, 5, 4, 5, 6, 4, 5, 4]);
    // Burst one, months 1–4: each commit births two sizable tables (reeds).
    for m in 1..=4i64 {
        let t = create(&mut b, 8);
        let u = create(&mut b, 7);
        b.commit(m * 30, vec![t, u]);
    }
    b.inactive(160).inactive(220).inactive(300);
    // Burst two, months 13–17, mixing growth with cleanup.
    for m in 13..=17i64 {
        let t = create(&mut b, 4);
        b.commit(
            m * 30,
            vec![
                t,
                SchemaOp::EjectColumns { table: 0, count: 1 },
                SchemaOp::TogglePk { table: 1, count: 1 },
            ],
        );
    }
    // Trailing turf.
    for m in 20..=26i64 {
        b.commit(m * 30, vec![SchemaOp::InjectColumns { table: 2, count: 2 }]);
    }
    b.finish(1)
}

/// Fig. 2: the builderscon_octav reference — a focused "ladder up" period
/// early, then infrequent, smaller commits; many non-active commits.
fn fig2() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("builderscon/octav", Taxon::Active, &[4, 3, 5]);
    // The ladder: tables added every few days in a focused window; every
    // third rung is a double-table step (a reed).
    for step in 0..8i64 {
        if step % 3 == 2 {
            let t = create(&mut b, 8);
            let u = create(&mut b, 8);
            b.commit(10 + step * 6, vec![t, u]);
        } else {
            let t = create(&mut b, 5);
            b.commit(10 + step * 6, vec![t]);
        }
    }
    b.inactive(70).inactive(85);
    // Mid-life: mixed growth and maintenance (one more reed).
    let t = create(&mut b, 12);
    b.commit(150, vec![t, SchemaOp::ChangeTypes { table: 0, count: 3 }]);
    let t = create(&mut b, 6);
    b.commit(220, vec![t]);
    b.inactive(300);
    b.commit(360, vec![SchemaOp::InjectColumns { table: 1, count: 5 }]);
    // Towards the end: infrequent, small.
    b.inactive(500);
    b.commit(600, vec![SchemaOp::InjectColumns { table: 2, count: 1 }]);
    b.commit(720, vec![SchemaOp::ChangeTypes { table: 2, count: 1 }]);
    b.finish(2)
}

/// Fig. 5: Almost Frozen — 8 commits post-V0, clustered in time, exactly
/// one active commit updating the data type of 3 attributes.
fn fig5() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("stackline/helpdesk", Taxon::AlmostFrozen, &[5, 4, 6, 3]);
    b.inactive(3).inactive(5).inactive(6);
    b.commit(9, vec![SchemaOp::ChangeTypes { table: 1, count: 3 }]);
    b.inactive(11).inactive(12).inactive(14).inactive(40);
    b.finish(3)
}

/// Fig. 6: FS&Frozen — a couple of active commits; the focus is the birth
/// of two tables (a small step up in the schema line).
fn fig6() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("jronak/onlinejudge", Taxon::FocusedShotFrozen, &[4, 5, 3]);
    b.inactive(4);
    let t1 = create(&mut b, 7);
    let t2 = create(&mut b, 6);
    b.commit(20, vec![t1, t2]);
    b.commit(55, vec![SchemaOp::InjectColumns { table: 0, count: 2 }]);
    b.inactive(70);
    b.finish(4)
}

/// Fig. 7: Moderate — 43 commits post-V0, 22 active, mild attribute
/// injections at varying time density, all turf.
fn fig7() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("mozilla/tls-observatory", Taxon::Moderate, &[6, 5, 4, 5]);
    let mut day = 5i64;
    let mut actives = 0;
    let mut k = 0usize;
    while actives < 22 {
        // Density varies: early commits close together, later spread out.
        day += if actives < 10 { 12 } else { 35 };
        if k.is_multiple_of(2) {
            let table = (k as u64) % 4;
            b.commit(day, vec![SchemaOp::InjectColumns { table, count: 1 + (k as u64 % 2) }]);
            actives += 1;
        } else {
            b.inactive(day);
        }
        k += 1;
    }
    // Remaining non-active commits to reach 43 post-V0.
    while b.schedule.len() < 43 {
        day += 10;
        b.inactive(day);
    }
    b.finish(5)
}

/// Fig. 8 (top): jasdel/harvester-like — a very short SUP with a two-step
/// schema increase (two reeds) and a few turf commits.
fn fig8a() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("jasdel/harvester", Taxon::FocusedShotLow, &[5, 4]);
    let t1 = create(&mut b, 9);
    let t2 = create(&mut b, 8);
    b.commit(3, vec![t1, t2]); // reed: 17 born
    b.commit(6, vec![SchemaOp::InjectColumns { table: 0, count: 3 }]);
    let t3 = create(&mut b, 10);
    let t4 = create(&mut b, 7);
    b.commit(10, vec![t3, t4]); // reed: 17 born
    b.commit(14, vec![SchemaOp::ChangeTypes { table: 1, count: 2 }]);
    b.commit(20, vec![SchemaOp::InjectColumns { table: 1, count: 2 }]);
    b.inactive(25);
    b.finish(6)
}

/// Fig. 8 (bottom): OWL-v3-like — one enormous reed (124 expansion + 68
/// maintenance) that concentrates ~90% of the project's activity.
fn fig8b() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("talkingdata/owl", Taxon::FocusedShotLow, &[8, 7, 9, 6, 8, 7, 8, 9, 7, 8]);
    b.inactive(10);
    b.commit(30, vec![SchemaOp::InjectColumns { table: 0, count: 4 }]);
    // The monster commit: a sweeping restructure.
    let mut ops = Vec::new();
    // 124 attributes of expansion: new tables + injections.
    for _ in 0..10 {
        let t = create(&mut b, 10);
        ops.push(t);
    }
    ops.push(SchemaOp::InjectColumns { table: 1, count: 12 });
    ops.push(SchemaOp::InjectColumns { table: 2, count: 12 });
    // 68 attributes of maintenance: drops, ejections, type changes.
    ops.push(SchemaOp::DropTable { table: 3 }); // 6
    ops.push(SchemaOp::DropTable { table: 9 }); // 8
    ops.push(SchemaOp::EjectColumns { table: 4, count: 4 });
    ops.push(SchemaOp::EjectColumns { table: 5, count: 3 });
    ops.push(SchemaOp::ChangeTypes { table: 0, count: 8 });
    ops.push(SchemaOp::ChangeTypes { table: 6, count: 8 });
    ops.push(SchemaOp::ChangeTypes { table: 7, count: 9 });
    ops.push(SchemaOp::TogglePk { table: 8, count: 7 });
    ops.push(SchemaOp::TogglePk { table: 4, count: 4 });
    ops.push(SchemaOp::TogglePk { table: 5, count: 4 });
    ops.push(SchemaOp::TogglePk { table: 6, count: 7 });
    b.commit(90, ops);
    b.commit(160, vec![SchemaOp::InjectColumns { table: 2, count: 3 }]);
    b.commit(250, vec![SchemaOp::ChangeTypes { table: 1, count: 2 }]);
    b.inactive(300);
    b.commit(400, vec![SchemaOp::InjectColumns { table: 0, count: 2 }]);
    b.finish(7)
}

/// Fig. 9: systematic high activity — constant turf and minor increases,
/// large spikes, and visible idle periods, over ~3 years.
fn fig9() -> ProjectPlan {
    let mut b = ExemplarBuilder::new("openrange/ocs", Taxon::Active, &[7, 6, 5, 6, 7, 5]);
    let mut day = 0i64;
    // Phase 1: constant turf for a year.
    for m in 1..=12i64 {
        day = m * 28;
        b.commit(day, vec![SchemaOp::InjectColumns { table: (m as u64) % 6, count: 2 }]);
    }
    // Spike.
    let t1 = create(&mut b, 12);
    let t2 = create(&mut b, 9);
    b.commit(day + 20, vec![t1, t2, SchemaOp::ChangeTypes { table: 0, count: 5 }]);
    // Idle half-year (only non-active commits).
    b.inactive(day + 80).inactive(day + 140).inactive(day + 170);
    // Phase 2: growth resumes with minor increases.
    let resume = day + 200;
    for k in 1..=8i64 {
        let t = create(&mut b, 3);
        b.commit(resume + k * 25, vec![t]);
    }
    // Final spike of maintenance.
    b.commit(
        resume + 260,
        vec![
            SchemaOp::DropTable { table: 2 },
            SchemaOp::ChangeTypes { table: 1, count: 4 },
            SchemaOp::EjectColumns { table: 3, count: 2 },
            SchemaOp::InjectColumns { table: 4, count: 6 },
        ],
    );
    b.finish(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_core::model::SchemaHistory;
    use schevo_core::profile::EvolutionProfile;
    use schevo_core::taxa::ProjectClass;
    use schevo_vcs::history::{file_history, WalkStrategy};

    fn profile(p: &GeneratedProject) -> EvolutionProfile {
        let versions = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        let h = SchemaHistory::from_file_versions(p.plan.name.clone(), &versions).unwrap();
        EvolutionProfile::of(&h)
    }

    #[test]
    fn exemplars_classify_as_designed() {
        for (tag, project) in all_exemplars() {
            let prof = profile(&project);
            assert_eq!(
                prof.class,
                ProjectClass::Taxon(project.plan.taxon),
                "{tag:?} ({}) expected {:?}, got {:?} (ac={}, act={}, reeds={})",
                project.plan.name,
                project.plan.taxon,
                prof.class,
                prof.active_commits,
                prof.total_activity,
                prof.reeds
            );
        }
    }

    #[test]
    fn fig5_narrative_matches_paper() {
        let p = build(FigureTag::Fig5);
        let prof = profile(&p);
        // "8 commits post the original version ... the only active commit
        // involves the data type update of 3 attributes."
        assert_eq!(prof.commits, 9);
        assert_eq!(prof.active_commits, 1);
        assert_eq!(prof.total_activity, 3);
        assert_eq!(prof.maintenance, 3);
        assert_eq!(prof.shape, schevo_core::shape::ShapeClass::Flat);
    }

    #[test]
    fn fig8b_reed_concentration() {
        let p = build(FigureTag::Fig8B);
        let prof = profile(&p);
        // The big reed concentrates ~90% of post-V0 activity.
        assert!(prof.peak_concentration > 0.85, "{}", prof.peak_concentration);
        assert_eq!(prof.reeds, 1);
        let versions = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        let h = SchemaHistory::from_file_versions("x", &versions).unwrap();
        let measures = schevo_core::measures::measure_history(&h);
        let peak = measures.iter().max_by_key(|m| m.activity()).unwrap();
        assert_eq!(peak.expansion(), 124);
        assert_eq!(peak.maintenance(), 68);
    }

    #[test]
    fn fig2_has_ladder_up_shape() {
        let p = build(FigureTag::Fig2);
        let prof = profile(&p);
        assert_eq!(prof.shape, schevo_core::shape::ShapeClass::MultiStepRise);
        assert!(prof.tables_end > prof.tables_start);
    }

    #[test]
    fn fig7_is_all_turf() {
        let p = build(FigureTag::Fig7);
        let prof = profile(&p);
        assert_eq!(prof.commits, 44, "43 commits post-V0");
        assert_eq!(prof.active_commits, 22);
        assert_eq!(prof.reeds, 0);
        assert_eq!(prof.turf, 22);
    }

    #[test]
    fn fig8a_two_reeds_short_sup() {
        let p = build(FigureTag::Fig8A);
        let prof = profile(&p);
        assert_eq!(prof.reeds, 2);
        assert!(prof.sup_months <= 2);
    }

    #[test]
    fn fig9_has_visible_idleness() {
        use schevo_core::measures::measure_history;
        use schevo_core::tempo::{tempo, IDLE_THRESHOLD_DAYS};
        let p = build(FigureTag::Fig9);
        let versions = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        let h = SchemaHistory::from_file_versions("fig9", &versions).unwrap();
        let t = tempo(&measure_history(&h), IDLE_THRESHOLD_DAYS);
        // "without excluding periods of idleness" (§IV-F / Fig. 9 caption).
        assert!(t.idle_periods >= 1, "{t:?}");
        assert!(t.burstiness > -0.5, "not perfectly regular: {t:?}");
    }

    #[test]
    fn builder_panics_on_bad_ops() {
        let result = std::panic::catch_unwind(|| {
            let mut b = ExemplarBuilder::new("x/y", Taxon::Frozen, &[2]);
            b.commit(1, vec![SchemaOp::DropTable { table: 0 }]);
        });
        assert!(result.is_err(), "dropping the last table must panic");
        let result = std::panic::catch_unwind(|| {
            let mut b = ExemplarBuilder::new("x/y", Taxon::Frozen, &[2]);
            b.commit(1, vec![SchemaOp::EjectColumns { table: 0, count: 2 }]);
        });
        assert!(result.is_err(), "emptying a table must panic");
    }
}
