//! Per-taxon project planning.
//!
//! The planner samples a target statistical profile for a project from
//! distributions calibrated to the paper's published numbers (Fig. 4
//! min/med/max/avg, Fig. 12 quartiles, the §IV narrative percentages), then
//! compiles it into an **op-level commit schedule** against a simulated
//! schema state. The schedule is exact: applying it yields precisely the
//! planned active commits, activity, and reed counts, so the generated
//! project is guaranteed to classify into its intended taxon when mined.

use crate::dist::{pick_bucket, sample_pair_comonotone, uniform_u64, QuartileDist};
use rand::Rng;
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_core::taxa::Taxon;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One schema operation, expressed against planner-assigned table ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemaOp {
    /// Create table `id` with `arity` columns (all *born*).
    CreateTable {
        /// Planner-assigned stable table id.
        id: u64,
        /// Number of columns the table is born with.
        arity: u64,
    },
    /// Add `count` columns to a pre-existing table (*injected*).
    InjectColumns {
        /// Target table id.
        table: u64,
        /// Number of columns to add.
        count: u64,
    },
    /// Drop a whole table (all its attributes are *deleted*).
    DropTable {
        /// Target table id.
        table: u64,
    },
    /// Remove `count` trailing columns from a surviving table (*ejected*).
    EjectColumns {
        /// Target table id.
        table: u64,
        /// Number of columns to remove.
        count: u64,
    },
    /// Change the data type of `count` leading columns (*type-changed*).
    ChangeTypes {
        /// Target table id.
        table: u64,
        /// Number of columns whose type rotates.
        count: u64,
    },
    /// Toggle primary-key participation of `count` leading columns
    /// (*pk-changed*).
    TogglePk {
        /// Target table id.
        table: u64,
        /// Number of columns whose key participation flips.
        count: u64,
    },
}

/// The planned content of one post-V0 commit of the DDL file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitPlan {
    /// Day offset since V0 (nondecreasing across the schedule).
    pub day: i64,
    /// Maintenance-then-expansion operations; empty for a non-active commit
    /// (which edits only comments/INSERTs/indexes).
    pub ops: Vec<SchemaOp>,
    /// Planned expansion of this commit, in attributes.
    pub expansion: u64,
    /// Planned maintenance of this commit, in attributes.
    pub maintenance: u64,
}

impl CommitPlan {
    /// Planned total activity.
    pub fn activity(&self) -> u64 {
        self.expansion + self.maintenance
    }
}

/// A fully planned project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectPlan {
    /// Index within the corpus (drives naming).
    pub index: usize,
    /// `owner/repo`.
    pub name: String,
    /// The taxon this project is engineered to land in.
    pub taxon: Taxon,
    /// Tables in the V0 schema.
    pub tables_start: u64,
    /// Arity of each V0 table (ids 0..tables_start).
    pub start_arities: Vec<u64>,
    /// Total DDL-file commits including V0.
    pub commits: u64,
    /// Planned active commits.
    pub active_commits: u64,
    /// Planned total activity.
    pub activity: u64,
    /// Planned reeds (under [`REED_THRESHOLD`]).
    pub reeds: u64,
    /// Post-V0 commit schedule (length `commits − 1`).
    pub schedule: Vec<CommitPlan>,
    /// Schema Update Period in days.
    pub sup_days: u64,
    /// Project Update Period in months (repository metadata).
    pub pup_months: u64,
    /// Total repository commits (repository metadata).
    pub total_commits: u64,
    /// Number of contributors (Libraries.io metadata).
    pub contributors: u32,
    /// Star count (Libraries.io metadata).
    pub stars: u32,
    /// V0 date as `(year, month, day)`.
    pub v0_date: (i32, u8, u8),
}

/// Calibration constants for one taxon, straight from the paper.
#[derive(Debug, Clone, Copy)]
pub struct TaxonCalibration {
    /// Fig. 12 quartiles of active commits (None for Frozen: always 0).
    pub active_commits: Option<[f64; 5]>,
    /// Fig. 4 average of active commits.
    pub active_commits_avg: f64,
    /// Fig. 12 quartiles of total activity.
    pub activity: Option<[f64; 5]>,
    /// Fig. 4 average of total activity.
    pub activity_avg: f64,
    /// Fig. 4 `(min, med, max, avg)` of SUP months.
    pub sup_months: (f64, f64, f64, f64),
    /// Fig. 4 `(min, med, max, avg)` of #Commits.
    pub commits: (f64, f64, f64, f64),
    /// Fig. 4 `(min, med, max, avg)` of #Tables@Start.
    pub tables_start: (f64, f64, f64, f64),
    /// Fig. 4 `(min, med, max)` of table insertions.
    pub table_insertions: (f64, f64, f64, f64),
    /// Fig. 4 `(min, med, max)` of table deletions.
    pub table_deletions: (f64, f64, f64, f64),
    /// PUP buckets as cumulative percentages `[>24mo, ≥12mo, all]`.
    pub pup_buckets: [f64; 3],
    /// Share of repository commits touching the DDL file, in percent.
    pub ddl_share_percent: f64,
}

/// The paper's calibration for a taxon.
pub fn calibration(taxon: Taxon) -> TaxonCalibration {
    match taxon {
        Taxon::Frozen => TaxonCalibration {
            active_commits: None,
            active_commits_avg: 0.0,
            activity: None,
            activity_avg: 0.0,
            sup_months: (1.0, 1.0, 69.0, 8.24),
            commits: (2.0, 2.0, 11.0, 3.18),
            tables_start: (1.0, 2.0, 227.0, 14.26),
            table_insertions: (0.0, 0.0, 0.0, 0.0),
            table_deletions: (0.0, 0.0, 0.0, 0.0),
            pup_buckets: [68.0, 79.0, 100.0],
            ddl_share_percent: 6.0,
        },
        Taxon::AlmostFrozen => TaxonCalibration {
            active_commits: Some([1.0, 1.0, 1.0, 2.0, 3.0]),
            active_commits_avg: 1.40,
            activity: Some([1.0, 1.0, 3.0, 5.0, 10.0]),
            activity_avg: 3.62,
            sup_months: (1.0, 6.0, 99.0, 11.98),
            commits: (2.0, 3.0, 13.0, 3.83),
            tables_start: (1.0, 3.0, 68.0, 5.94),
            table_insertions: (0.0, 0.0, 2.0, 0.26),
            table_deletions: (0.0, 0.0, 1.0, 0.09),
            pup_buckets: [58.0, 73.0, 100.0],
            ddl_share_percent: 5.0,
        },
        Taxon::FocusedShotFrozen => TaxonCalibration {
            active_commits: Some([1.0, 1.0, 2.0, 2.0, 3.0]),
            active_commits_avg: 1.76,
            activity: Some([11.0, 15.5, 23.0, 31.5, 383.0]),
            activity_avg: 45.64,
            sup_months: (1.0, 2.0, 46.0, 9.28),
            commits: (2.0, 4.0, 17.0, 4.56),
            tables_start: (1.0, 4.0, 47.0, 6.60),
            table_insertions: (0.0, 2.0, 18.0, 2.48),
            table_deletions: (0.0, 1.0, 45.0, 3.88),
            pup_buckets: [44.0, 68.0, 100.0],
            ddl_share_percent: 4.0,
        },
        Taxon::Moderate => TaxonCalibration {
            active_commits: Some([4.0, 5.0, 7.0, 10.0, 22.0]),
            active_commits_avg: 8.52,
            activity: Some([11.0, 15.0, 23.0, 37.5, 88.0]),
            activity_avg: 30.0,
            sup_months: (1.0, 20.0, 100.0, 23.62),
            commits: (5.0, 10.0, 43.0, 13.52),
            tables_start: (1.0, 5.0, 65.0, 8.31),
            table_insertions: (0.0, 2.0, 6.0, 2.14),
            table_deletions: (0.0, 0.0, 4.0, 0.66),
            pup_buckets: [72.0, 86.0, 100.0],
            ddl_share_percent: 5.0,
        },
        Taxon::FocusedShotLow => TaxonCalibration {
            active_commits: Some([4.0, 5.0, 6.5, 7.0, 10.0]),
            active_commits_avg: 6.30,
            activity: Some([27.0, 41.5, 71.0, 143.0, 315.0]),
            activity_avg: 105.15,
            sup_months: (1.0, 17.5, 57.0, 21.05),
            commits: (7.0, 10.5, 19.0, 11.55),
            tables_start: (2.0, 8.0, 26.0, 8.90),
            table_insertions: (0.0, 4.5, 16.0, 6.70),
            table_deletions: (0.0, 2.5, 15.0, 4.45),
            pup_buckets: [70.0, 75.0, 100.0],
            ddl_share_percent: 6.0,
        },
        Taxon::Active => TaxonCalibration {
            active_commits: Some([7.0, 15.0, 22.0, 50.5, 232.0]),
            active_commits_avg: 43.95,
            activity: Some([112.0, 177.0, 254.0, 558.5, 3485.0]),
            activity_avg: 546.14,
            sup_months: (1.0, 31.0, 100.0, 35.95),
            commits: (9.0, 36.5, 516.0, 77.36),
            tables_start: (2.0, 20.0, 61.0, 24.18),
            table_insertions: (0.0, 24.0, 301.0, 52.3),
            table_deletions: (0.0, 9.0, 214.0, 25.64),
            pup_buckets: [91.0, 95.0, 100.0],
            ddl_share_percent: 6.0,
        },
    }
}

/// Simulated schema state the planner compiles ops against.
#[derive(Debug, Clone, Default)]
struct SimSchema {
    /// table id → arity.
    arities: BTreeMap<u64, u64>,
    next_id: u64,
}

impl SimSchema {
    fn with_start(arities: &[u64]) -> SimSchema {
        let mut s = SimSchema::default();
        for &a in arities {
            let id = s.next_id;
            s.next_id += 1;
            s.arities.insert(id, a);
        }
        s
    }

    fn table_count(&self) -> usize {
        self.arities.len()
    }
}

/// Sample `(active_commits, activity, reeds)` for a taxon, retrying until
/// the triple satisfies the classifier constraints of DESIGN.md §4.
fn sample_heartbeat_targets<R: Rng>(rng: &mut R, taxon: Taxon) -> (u64, u64, u64) {
    let cal = calibration(taxon);
    let (Some(ac_k), Some(act_k)) = (cal.active_commits, cal.activity) else {
        return (0, 0, 0);
    };
    let ac_dist = QuartileDist::with_mean(
        ac_k[0], ac_k[1], ac_k[2], ac_k[3], ac_k[4], cal.active_commits_avg,
    );
    let act_dist = QuartileDist::with_mean(
        act_k[0], act_k[1], act_k[2], act_k[3], act_k[4], cal.activity_avg,
    );
    // How tightly activity tracks active commits differs per taxon: for the
    // frozen-ish taxa a project's one shot can be any size (independent),
    // while for the heartbeat-driven taxa more active commits mean more
    // activity (comonotone). This is what makes the §III-B reed-limit
    // derivation (85% split of single-active-commit activities ≈ 14) come
    // out of the corpus instead of being painted on.
    let jitter = match taxon {
        Taxon::AlmostFrozen => 1.0,
        Taxon::FocusedShotFrozen => 0.6,
        Taxon::FocusedShotLow => 0.5,
        Taxon::Moderate => 0.35,
        _ => 0.25,
    };
    for _ in 0..1000 {
        let (ac_f, act_f) = sample_pair_comonotone(rng, &ac_dist, &act_dist, jitter);
        let ac = ac_f.round().max(ac_k[0]) as u64;
        let mut act = act_f.round().max(act_k[0]) as u64;
        if act < ac {
            act = ac; // each active commit carries ≥1 attribute
        }
        let t = REED_THRESHOLD;
        let reeds = match taxon {
            Taxon::Frozen => 0,
            Taxon::AlmostFrozen => {
                if !(1..=3).contains(&ac) || act > 10 {
                    continue;
                }
                0 // activity ≤ 10 < threshold: no reed possible
            }
            Taxon::FocusedShotFrozen => {
                if !(1..=3).contains(&ac) || act <= 10 {
                    continue;
                }
                // Concentrate: most such projects have one reed; the reed
                // count is emergent from allocation, estimated here.
                let max_reeds = (act / (t + 1)).min(ac);
                max_reeds.min(1 + u64::from(act > 60 && ac >= 2))
            }
            Taxon::Moderate => {
                if !(4..=22).contains(&ac) || !(11..=89).contains(&act) {
                    continue;
                }
                if ac <= 10 {
                    // Must stay out of the FS&Low band: zero reeds, which
                    // requires every commit ≤ threshold.
                    if act > t * ac {
                        continue;
                    }
                    0
                } else if act > t * ac {
                    // Rare: needs a reed; 1–2 keeps Fig. 4's max of 2.
                    uniform_u64(rng, 1, 2)
                } else if rng.gen_bool(0.12) && act >= t + 1 + (ac - 1) {
                    1
                } else {
                    0
                }
            }
            Taxon::FocusedShotLow => {
                if !(4..=10).contains(&ac) || !(27..=315).contains(&act) {
                    continue;
                }
                let r = if act > 160 && ac >= 5 { 2 } else { uniform_u64(rng, 1, 2) };
                // Feasibility: reeds minimum + turf minimum must fit.
                if (t + 1) * r + (ac - r) > act {
                    continue;
                }
                // Turf capacity must absorb what the reeds do not need to.
                r
            }
            Taxon::Active => {
                if ac < 7 || act < 112 {
                    continue;
                }
                // Out of the FS&Low band: if ac ≤ 10 need ≥3 reeds.
                let min_reeds = if ac <= 10 { 3 } else { 1 };
                let max_reeds = (act / (t + 1)).min(ac);
                if max_reeds < min_reeds {
                    continue;
                }
                // Fig. 4: median 5.5 reeds, scaling with activity.
                let want = ((act as f64 / 80.0).round() as u64).clamp(min_reeds, max_reeds);
                want.min(31)
            }
        };
        // Global feasibility of the (ac, act, reeds) triple.
        let min_needed = (t + 1) * reeds + (ac - reeds);
        let max_capacity = if reeds == 0 { t * ac } else { u64::MAX };
        if act < min_needed || act > max_capacity {
            continue;
        }
        return (ac, act, reeds);
    }
    // Deterministic fallbacks per taxon (hit only on pathological RNG seeds).
    match taxon {
        Taxon::Frozen => (0, 0, 0),
        Taxon::AlmostFrozen => (1, 3, 0),
        Taxon::FocusedShotFrozen => (1, 23, 1),
        Taxon::Moderate => (7, 23, 0),
        Taxon::FocusedShotLow => (6, 71, 1),
        Taxon::Active => (22, 254, 5),
    }
}

/// Allocate per-commit activities: `reeds` commits strictly above the
/// threshold, the rest in `1..=threshold`, summing exactly to `activity`.
fn allocate_activities<R: Rng>(
    rng: &mut R,
    active_commits: u64,
    activity: u64,
    reeds: u64,
    threshold: u64,
) -> Vec<u64> {
    let ac = active_commits as usize;
    let r = reeds as usize;
    let mut alloc = vec![0u64; ac];
    for (i, slot) in alloc.iter_mut().enumerate() {
        *slot = if i < r { threshold + 1 } else { 1 };
    }
    let mut remainder = activity - alloc.iter().sum::<u64>();
    // Fill turf toward the threshold first with small random bumps, then pour
    // the rest into reeds.
    let mut guard = 0;
    while remainder > 0 && guard < 100_000 {
        guard += 1;
        let i = rng.gen_range(0..ac);
        if i < r {
            // Reeds absorb anything; take bigger gulps for big remainders.
            let gulp = (remainder / 3).max(1).min(remainder);
            alloc[i] += gulp;
            remainder -= gulp;
        } else if alloc[i] < threshold {
            let room = threshold - alloc[i];
            let gulp = uniform_u64(rng, 1, room.min(remainder).max(1)).min(remainder);
            alloc[i] += gulp;
            remainder -= gulp;
        } else if r > 0 {
            let gulp = (remainder / 2).max(1);
            alloc[rng.gen_range(0..r)] += gulp;
            remainder -= gulp;
        }
        // If r == 0 and all turf are full, the sampler guaranteed
        // activity ≤ threshold·ac, so the loop always terminates.
    }
    debug_assert_eq!(alloc.iter().sum::<u64>(), activity);
    // Shuffle positions so reeds land anywhere in the timeline.
    for i in (1..alloc.len()).rev() {
        let j = rng.gen_range(0..=i);
        alloc.swap(i, j);
    }
    alloc
}

/// Compile the ops for one active commit against the simulated schema.
///
/// Returns `(ops, expansion, maintenance)` with
/// `expansion + maintenance == target_activity` exactly; maintenance that
/// cannot be realized against the current schema converts to expansion.
fn compile_commit<R: Rng>(
    rng: &mut R,
    sim: &mut SimSchema,
    target_activity: u64,
    table_insert_budget: &mut u64,
    table_delete_budget: &mut u64,
) -> (Vec<SchemaOp>, u64, u64) {
    let mut ops = Vec::new();
    // Desired maintenance share ~U[0, 0.45]; expansion dominates, matching
    // the literature's expansion-over-deletion finding.
    let want_maintenance = ((target_activity as f64) * rng.gen_range(0.0..0.45)).floor() as u64;
    let mut maintenance = 0u64;

    // ---- maintenance ops against pre-commit state ----
    // Track per-table usable columns (pre-commit arity minus ejections).
    let pre: Vec<(u64, u64)> = sim.arities.iter().map(|(&id, &a)| (id, a)).collect();
    let mut ejected: BTreeMap<u64, u64> = BTreeMap::new();
    let mut dropped: Vec<u64> = Vec::new();

    // Whole-table drops (rare, budgeted).
    if *table_delete_budget > 0 && sim.table_count() > 1 {
        for &(id, arity) in &pre {
            if maintenance >= want_maintenance || *table_delete_budget == 0 {
                break;
            }
            let surviving = pre.len() - dropped.len();
            if surviving <= 1 {
                break;
            }
            if arity <= want_maintenance - maintenance && rng.gen_bool(0.5) {
                ops.push(SchemaOp::DropTable { table: id });
                dropped.push(id);
                maintenance += arity;
                *table_delete_budget -= 1;
            }
        }
    }
    // Column ejections (keep ≥1 column per surviving table).
    for &(id, arity) in &pre {
        if maintenance >= want_maintenance {
            break;
        }
        if dropped.contains(&id) || arity < 2 {
            continue;
        }
        let can = (arity - 1).min(want_maintenance - maintenance);
        if can > 0 && rng.gen_bool(0.6) {
            let take = uniform_u64(rng, 1, can);
            ops.push(SchemaOp::EjectColumns { table: id, count: take });
            *ejected.entry(id).or_insert(0) += take;
            maintenance += take;
        }
    }
    // Type changes (on columns surviving the ejections).
    for &(id, arity) in &pre {
        if maintenance >= want_maintenance {
            break;
        }
        if dropped.contains(&id) {
            continue;
        }
        let usable = arity - ejected.get(&id).copied().unwrap_or(0);
        let can = usable.min(want_maintenance - maintenance);
        if can > 0 {
            let take = uniform_u64(rng, 1, can);
            ops.push(SchemaOp::ChangeTypes { table: id, count: take });
            maintenance += take;
        }
    }
    // PK toggles to close any remaining gap.
    for &(id, arity) in &pre {
        if maintenance >= want_maintenance {
            break;
        }
        if dropped.contains(&id) {
            continue;
        }
        let usable = arity - ejected.get(&id).copied().unwrap_or(0);
        let can = usable.min(want_maintenance - maintenance);
        if can > 0 {
            ops.push(SchemaOp::TogglePk { table: id, count: can });
            maintenance += can;
        }
    }

    // Apply maintenance to the simulation.
    for &id in &dropped {
        sim.arities.remove(&id);
    }
    for (&id, &e) in &ejected {
        if let Some(a) = sim.arities.get_mut(&id) {
            *a -= e;
        }
    }

    // ---- expansion ops ----
    let mut expansion_left = target_activity - maintenance;
    let expansion = expansion_left;
    // New tables, budget permitting.
    while expansion_left >= 1 && *table_insert_budget > 0 {
        // Leave room for at least some injections on big commits.
        if expansion_left < 2 && rng.gen_bool(0.5) {
            break;
        }
        let cap = uniform_u64(rng, 2, 7);
        let arity = uniform_u64(rng, 1, expansion_left.min(cap));
        let id = sim.next_id;
        sim.next_id += 1;
        sim.arities.insert(id, arity);
        ops.push(SchemaOp::CreateTable { id, arity });
        expansion_left -= arity;
        *table_insert_budget -= 1;
        if rng.gen_bool(0.4) {
            break;
        }
    }
    // Inject the remainder into pre-existing tables.
    if expansion_left > 0 {
        let surviving: Vec<u64> = pre
            .iter()
            .filter(|(id, _)| !dropped.contains(id))
            .map(|&(id, _)| id)
            .collect();
        if surviving.is_empty() {
            // No pre-commit table survives: must create a table instead
            // (an unbudgeted insertion; the planner keeps ≥1 table alive so
            // this is nearly unreachable, but stay total).
            let id = sim.next_id;
            sim.next_id += 1;
            sim.arities.insert(id, expansion_left);
            ops.push(SchemaOp::CreateTable {
                id,
                arity: expansion_left,
            });
        } else {
            // Spread across 1..=3 tables.
            let mut left = expansion_left;
            while left > 0 {
                let id = surviving[rng.gen_range(0..surviving.len())];
                let take = uniform_u64(rng, 1, left.min(6));
                ops.push(SchemaOp::InjectColumns { table: id, count: take });
                *sim.arities.get_mut(&id).expect("surviving table") += take;
                left -= take;
            }
        }
    }
    (ops, expansion, maintenance)
}

/// Sample commit day offsets: `count` strictly nondecreasing offsets in
/// `[1, sup_days]`, with the last pinned to `sup_days`, front-loaded by
/// `front_bias` (1.0 = uniform; 2.0 = strongly early — the paper's
/// "focused periods of change in the early life").
fn sample_days<R: Rng>(rng: &mut R, count: usize, sup_days: u64, front_bias: f64) -> Vec<i64> {
    if count == 0 {
        return Vec::new();
    }
    let span = sup_days.max(1) as f64;
    let mut days: Vec<i64> = (0..count.saturating_sub(1))
        .map(|_| {
            let u: f64 = rng.gen::<f64>().powf(front_bias);
            (u * span).ceil().max(1.0) as i64
        })
        .collect();
    days.push(sup_days.max(1) as i64);
    days.sort_unstable();
    days
}

/// Plan one project of the given taxon.
pub fn plan_project<R: Rng>(rng: &mut R, index: usize, taxon: Taxon) -> ProjectPlan {
    let cal = calibration(taxon);
    let (active_commits, activity, reeds) = sample_heartbeat_targets(rng, taxon);

    // Commits: at least active commits + 1 (V0 exists and may be the only
    // inactive one).
    let commits_dist = QuartileDist::from_fig4(cal.commits.0, cal.commits.1, cal.commits.2, cal.commits.3);
    let commits = commits_dist.sample_u64(rng).max(active_commits + 1).max(2);

    // V0 schema.
    let tables_dist = QuartileDist::from_fig4(
        cal.tables_start.0,
        cal.tables_start.1,
        cal.tables_start.2,
        cal.tables_start.3,
    );
    let tables_start = tables_dist.sample_u64(rng).max(1);
    let start_arities: Vec<u64> = (0..tables_start)
        .map(|_| uniform_u64(rng, 2, 9))
        .collect();

    // Timing.
    let sup_dist = QuartileDist::from_fig4(
        cal.sup_months.0,
        cal.sup_months.1,
        cal.sup_months.2,
        cal.sup_months.3,
    );
    let sup_months_target = sup_dist.sample_u64(rng).max(1);
    let sup_days = if commits <= 1 {
        0
    } else {
        (sup_months_target - 1) * 30 + uniform_u64(rng, 1, 20)
    };

    // Activity allocation and op compilation.
    let activities = allocate_activities(rng, active_commits, activity, reeds, REED_THRESHOLD);
    let mut sim = SimSchema::with_start(&start_arities);
    let ins_dist = QuartileDist::from_fig4(
        cal.table_insertions.0,
        cal.table_insertions.1,
        cal.table_insertions.2,
        cal.table_insertions.3,
    );
    let del_dist = QuartileDist::from_fig4(
        cal.table_deletions.0,
        cal.table_deletions.1,
        cal.table_deletions.2,
        cal.table_deletions.3,
    );
    let mut insert_budget = ins_dist.sample_u64(rng);
    let mut delete_budget = del_dist.sample_u64(rng);

    // Interleave active and inactive commits across the SUP window.
    let post_v0 = (commits - 1) as usize;
    let front_bias = match taxon {
        Taxon::FocusedShotFrozen | Taxon::AlmostFrozen => 1.8,
        Taxon::FocusedShotLow => 1.5,
        _ => 1.1,
    };
    let days = sample_days(rng, post_v0, sup_days, front_bias);
    // Positions of active commits among the post-V0 commits.
    let mut positions: Vec<usize> = (0..post_v0).collect();
    for i in (1..positions.len()).rev() {
        let j = rng.gen_range(0..=i);
        positions.swap(i, j);
    }
    let mut active_positions: Vec<usize> = positions
        .into_iter()
        .take(active_commits as usize)
        .collect();
    active_positions.sort_unstable();

    let mut schedule = Vec::with_capacity(post_v0);
    let mut next_active = 0usize;
    for (pos, &day) in days.iter().enumerate() {
        if active_positions.get(next_active) == Some(&pos) {
            let target = activities[next_active];
            next_active += 1;
            let (ops, expansion, maintenance) =
                compile_commit(rng, &mut sim, target, &mut insert_budget, &mut delete_budget);
            schedule.push(CommitPlan {
                day,
                ops,
                expansion,
                maintenance,
            });
        } else {
            schedule.push(CommitPlan {
                day,
                ops: Vec::new(),
                expansion: 0,
                maintenance: 0,
            });
        }
    }

    // Repository metadata.
    let pup_bucket = pick_bucket(rng, &cal.pup_buckets);
    let sup_months_actual = sup_days / 30 + 1;
    let pup_months = match pup_bucket {
        0 => uniform_u64(rng, 25, 80),
        1 => uniform_u64(rng, 13, 24),
        _ => uniform_u64(rng, 2, 11),
    }
    .max(sup_months_actual + 1);
    let share = cal.ddl_share_percent + rng.gen_range(-1.0..1.0);
    let total_commits = ((commits as f64) * 100.0 / share.max(1.0)).round() as u64;

    ProjectPlan {
        index,
        name: crate::names::project_name(index),
        taxon,
        tables_start,
        start_arities,
        commits,
        active_commits,
        activity,
        reeds,
        schedule,
        sup_days,
        pup_months,
        total_commits: total_commits.max(commits),
        contributors: uniform_u64(rng, 2, 40) as u32,
        stars: (10.0f64.powf(rng.gen_range(0.0..2.7))).round() as u32,
        v0_date: (
            rng.gen_range(2012..=2017),
            rng.gen_range(1..=12) as u8,
            rng.gen_range(1..=5) as u8,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schevo_core::taxa::{classify, ProjectClass, TaxonFeatures};

    /// Replay a plan's ops, computing the heartbeat the diff engine will see.
    fn simulate_heartbeat(plan: &ProjectPlan) -> Vec<(u64, u64)> {
        plan.schedule
            .iter()
            .map(|c| (c.expansion, c.maintenance))
            .collect()
    }

    #[test]
    fn plans_classify_into_their_taxon() {
        let mut rng = StdRng::seed_from_u64(2019);
        for (i, taxon) in Taxon::ALL.iter().cycle().take(300).enumerate() {
            let plan = plan_project(&mut rng, i, *taxon);
            let hb = simulate_heartbeat(&plan);
            let active = hb.iter().filter(|&&(e, m)| e + m > 0).count() as u64;
            let activity: u64 = hb.iter().map(|&(e, m)| e + m).sum();
            let reeds = hb
                .iter()
                .filter(|&&(e, m)| e + m > REED_THRESHOLD)
                .count() as u64;
            assert_eq!(active, plan.active_commits, "{}", plan.name);
            assert_eq!(activity, plan.activity, "{}", plan.name);
            assert_eq!(reeds, plan.reeds, "{}", plan.name);
            let class = classify(TaxonFeatures {
                commits: plan.commits,
                active_commits: active,
                total_activity: activity,
                reeds,
            });
            assert_eq!(
                class,
                ProjectClass::Taxon(*taxon),
                "{} planned for {:?} classifies as {:?} (ac={active}, act={activity}, reeds={reeds})",
                plan.name,
                taxon,
                class
            );
        }
    }

    #[test]
    fn allocation_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let ac = rng.gen_range(1..=40u64);
            let reeds = rng.gen_range(0..=ac.min(8));
            let min = (REED_THRESHOLD + 1) * reeds + (ac - reeds);
            let max = if reeds == 0 { REED_THRESHOLD * ac } else { min + 500 };
            let activity = rng.gen_range(min..=max);
            let alloc = allocate_activities(&mut rng, ac, activity, reeds, REED_THRESHOLD);
            assert_eq!(alloc.iter().sum::<u64>(), activity);
            assert_eq!(
                alloc.iter().filter(|&&a| a > REED_THRESHOLD).count() as u64,
                reeds
            );
            assert!(alloc.iter().all(|&a| a >= 1));
        }
    }

    #[test]
    fn schedule_is_time_ordered_and_sized() {
        let mut rng = StdRng::seed_from_u64(9);
        let plan = plan_project(&mut rng, 0, Taxon::Active);
        assert_eq!(plan.schedule.len(), (plan.commits - 1) as usize);
        for w in plan.schedule.windows(2) {
            assert!(w[0].day <= w[1].day);
        }
        assert_eq!(
            plan.schedule.last().unwrap().day,
            plan.sup_days.max(1) as i64
        );
        assert!(plan.pup_months as f64 >= plan.sup_days as f64 / 30.0);
        assert!(plan.total_commits >= plan.commits);
    }

    #[test]
    fn frozen_plans_have_empty_ops() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20 {
            let plan = plan_project(&mut rng, i, Taxon::Frozen);
            assert!(plan.schedule.iter().all(|c| c.ops.is_empty()));
            assert_eq!(plan.activity, 0);
            assert!(plan.commits >= 2);
        }
    }

    #[test]
    fn taxon_medians_roughly_match_calibration() {
        let mut rng = StdRng::seed_from_u64(42);
        for taxon in [Taxon::Moderate, Taxon::FocusedShotLow, Taxon::Active] {
            let mut activities: Vec<f64> = Vec::new();
            for i in 0..120 {
                let p = plan_project(&mut rng, i, taxon);
                activities.push(p.activity as f64);
            }
            let med = schevo_stats::median(&activities);
            let expected = calibration(taxon).activity.unwrap()[2];
            assert!(
                (med - expected).abs() / expected < 0.35,
                "{taxon:?}: median {med} vs expected {expected}"
            );
        }
    }
}
