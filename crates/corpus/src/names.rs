//! Deterministic name vocabularies for synthetic projects, tables and
//! attributes.
//!
//! Names are generated from fixed word lists indexed by counters, so the
//! corpus is reproducible and human-readable (`task-queue-srv/schema.sql`
//! with tables like `user_account`, `audit_log`), which matters when
//! debugging a 365-project funnel.

/// Domains the paper lists as evidence of external validity (§III-C).
pub const DOMAINS: [&str; 10] = [
    "content-management",
    "iot-cloud",
    "task-management",
    "web-services",
    "messaging",
    "scientific-data",
    "web-store",
    "online-charging",
    "monitoring",
    "analytics",
];

const OWNERS: [&str; 24] = [
    "acmesoft", "bitforge", "cloudsmiths", "datafox", "evergreen", "fluxlab", "gridworks",
    "hexbyte", "ironclad", "jadecode", "kitehub", "lumen-io", "makerspace", "nightowl",
    "openrange", "pixelfarm", "quantum-leap", "redshift", "stackline", "tinkertoys",
    "umbrella-corp", "vortexsoft", "wavecrest", "zephyrware",
];

const PROJECT_STEMS: [&str; 30] = [
    "cms", "shop", "tracker", "queue", "forum", "wiki", "charging", "billing", "inventory",
    "ledger", "telemetry", "registry", "scheduler", "gateway", "harvest", "observatory",
    "judge", "pipeline", "mailer", "catalog", "booking", "survey", "helpdesk", "bridge",
    "archive", "metrics", "portal", "sensor", "market", "chat",
];

const TABLE_STEMS: [&str; 40] = [
    "user", "account", "session", "role", "permission", "product", "order", "order_item",
    "invoice", "payment", "category", "tag", "article", "comment", "attachment", "message",
    "channel", "device", "sensor", "reading", "alert", "task", "project", "milestone",
    "audit_log", "event", "subscription", "plan", "coupon", "shipment", "address", "review",
    "vote", "token", "setting", "report", "metric", "job", "queue_entry", "notification",
];

const COLUMN_STEMS: [&str; 36] = [
    "id", "name", "title", "description", "status", "kind", "email", "login", "password_hash",
    "created_at", "updated_at", "deleted_at", "amount", "price", "quantity", "total", "currency",
    "owner_id", "parent_id", "position", "priority", "body", "url", "ip_address", "user_agent",
    "score", "rating", "token", "expires_at", "started_at", "finished_at", "payload", "version",
    "flags", "notes", "checksum",
];

/// The `owner/repo` name of the i-th synthetic project.
pub fn project_name(index: usize) -> String {
    let owner = OWNERS[index % OWNERS.len()];
    let stem = PROJECT_STEMS[(index / OWNERS.len()) % PROJECT_STEMS.len()];
    let round = index / (OWNERS.len() * PROJECT_STEMS.len());
    if round == 0 {
        format!("{owner}/{stem}")
    } else {
        format!("{owner}/{stem}{round}")
    }
}

/// The domain label of the i-th project.
pub fn project_domain(index: usize) -> &'static str {
    DOMAINS[index % DOMAINS.len()]
}

/// The name of the k-th table created in a project.
pub fn table_name(counter: usize) -> String {
    let stem = TABLE_STEMS[counter % TABLE_STEMS.len()];
    let round = counter / TABLE_STEMS.len();
    if round == 0 {
        stem.to_string()
    } else {
        format!("{stem}_{round}")
    }
}

/// The name of the k-th column created in a table.
pub fn column_name(counter: usize) -> String {
    let stem = COLUMN_STEMS[counter % COLUMN_STEMS.len()];
    let round = counter / COLUMN_STEMS.len();
    if round == 0 {
        stem.to_string()
    } else {
        format!("{stem}_{round}")
    }
}

/// An author name for the k-th contributor of a project.
pub fn author_name(project_index: usize, k: usize) -> String {
    const FIRST: [&str; 12] = [
        "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy",
        "mallory", "oscar",
    ];
    format!("{}-{}", FIRST[(project_index + k) % FIRST.len()], k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn project_names_unique_over_corpus_scale() {
        let names: HashSet<String> = (0..2000).map(project_name).collect();
        assert_eq!(names.len(), 2000);
    }

    #[test]
    fn table_and_column_names_unique_per_counter() {
        let t: HashSet<String> = (0..500).map(table_name).collect();
        assert_eq!(t.len(), 500);
        let c: HashSet<String> = (0..500).map(column_name).collect();
        assert_eq!(c.len(), 500);
    }

    #[test]
    fn names_are_valid_sql_identifiers() {
        for i in 0..200 {
            let t = table_name(i);
            assert!(t
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'));
            let c = column_name(i);
            assert!(c
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(project_name(7), project_name(7));
        assert_eq!(table_name(3), table_name(3));
        assert_eq!(project_domain(4), project_domain(4));
        assert_eq!(author_name(2, 1), author_name(2, 1));
    }
}
