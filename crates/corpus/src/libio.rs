//! Libraries.io-style project metadata, the join partner of the
//! SQL-Collection in the paper's data-collection step (§III-A).

use serde::{Deserialize, Serialize};

/// Metadata for one repository, as the Libraries.io dump reports it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LibioRecord {
    /// `owner/repo` name, the join key with the SQL-Collection.
    pub repo_name: String,
    /// Project page URL (the paper joins on names *and* URLs).
    pub url: String,
    /// Whether the repository is a fork of another project.
    pub is_fork: bool,
    /// Star count.
    pub stars: u32,
    /// Number of contributors.
    pub contributors: u32,
}

impl LibioRecord {
    /// Build a record with the canonical URL for a repo name.
    pub fn new(repo_name: impl Into<String>, is_fork: bool, stars: u32, contributors: u32) -> Self {
        let repo_name = repo_name.into();
        let url = format!("https://github.example/{repo_name}");
        LibioRecord {
            repo_name,
            url,
            is_fork,
            stars,
            contributors,
        }
    }

    /// The paper's selection predicate: original repository, more than 0
    /// stars, more than 1 contributor.
    pub fn passes_selection(&self) -> bool {
        !self.is_fork && self.stars > 0 && self.contributors > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_predicate() {
        assert!(LibioRecord::new("a/b", false, 5, 3).passes_selection());
        assert!(!LibioRecord::new("a/b", true, 5, 3).passes_selection(), "fork");
        assert!(!LibioRecord::new("a/b", false, 0, 3).passes_selection(), "0 stars");
        assert!(!LibioRecord::new("a/b", false, 5, 1).passes_selection(), "1 contributor");
        // Boundary: exactly 1 star and 2 contributors pass.
        assert!(LibioRecord::new("a/b", false, 1, 2).passes_selection());
    }

    #[test]
    fn url_derived_from_name() {
        let r = LibioRecord::new("acme/shop", false, 1, 2);
        assert!(r.url.ends_with("acme/shop"));
    }
}
