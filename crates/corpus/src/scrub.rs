//! `schevo scrub` — self-healing compaction of a bit-rotted shard store.
//!
//! The streaming reader ([`crate::store::StoreStream`]) fails closed:
//! the first bad frame kills its shard's cursor, because a torn frame
//! leaves no trustworthy next-record boundary *online*. Scrub is the
//! offline counterpart that can afford to look harder. It walks every
//! shard byte-for-byte, verifies each frame's length, SHA-1, and
//! decodability, and when a frame fails it **resyncs**: scans forward
//! for the next offset where a plausible length prefix, a verifying
//! checksum, and a decodable payload line up again. Since a verifying
//! 20-byte SHA-1 over an attacker-free payload does not happen by
//! accident, resync recovers every intact record *after* a corrupt
//! region — records the online reader had to abandon.
//!
//! The scrub then:
//!
//! 1. moves every corrupt byte range into a quarantine sidecar
//!    (`shard-NNN.pack.quarantine`) for post-mortem inspection,
//! 2. rewrites each damaged shard with only its verified frames
//!    (temp file, fsync, rename, directory fsync — same discipline as
//!    artifact publication),
//! 3. recomputes record/materialized counts and the corpus digest from
//!    the surviving records, and
//! 4. atomically republishes `MANIFEST.json` with a cumulative `lost`
//!    count, which also stops the store from `matches()`-ing its
//!    generation config — a lossy store must never be silently reused
//!    where the full generated corpus is expected.
//!
//! A second scrub of the same store is a no-op (zero lost, zero bytes
//! quarantined, no rewrites), and the scrubbed store streams with zero
//! corruption events: its clean subset mines bit-identically under any
//! worker count.

use crate::store::{
    decode_record, manifest_path, shard_path, ShardStore, StoreError, StoreManifest, FRAME_LEN,
    MAX_RECORD_LEN, SHARD_MAGIC,
};
use crate::universe::CorpusDigester;
use schevo_core::failpoint;
use schevo_vcs::sha1::sha1;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// What scrubbing one shard found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardScrub {
    /// Shard index.
    pub shard: usize,
    /// Verified records kept.
    pub kept: u64,
    /// Records recovered by resyncing past a corrupt region — a strict
    /// subset of `kept` that the online reader would have lost.
    pub resynced: u64,
    /// Contiguous corrupt byte regions quarantined.
    pub bad_regions: u64,
    /// Total bytes moved to the quarantine sidecar.
    pub quarantined_bytes: u64,
    /// Whether the shard file was rewritten (it had corrupt bytes).
    pub rewritten: bool,
}

/// The outcome of scrubbing a whole store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Per-shard detail, in shard order.
    pub shards: Vec<ShardScrub>,
    /// Records the manifest claimed before the scrub.
    pub records_before: u64,
    /// Verified records surviving across all shards.
    pub kept: u64,
    /// Records lost this scrub (`records_before - kept`, floored at 0).
    pub lost: u64,
    /// Records recovered by resync that the online reader would lose.
    pub resynced: u64,
    /// Materialized records among the survivors.
    pub materialized: u64,
    /// Corpus digest recomputed over the survivors.
    pub corpus_digest: String,
    /// Whether `MANIFEST.json` was republished.
    pub rewrote_manifest: bool,
}

impl ScrubReport {
    /// True when the store needed no repair at all.
    pub fn clean(&self) -> bool {
        self.shards.iter().all(|s| !s.rewritten) && !self.rewrote_manifest
    }

    /// Total bytes quarantined across all shards.
    pub fn quarantined_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_bytes).sum()
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scrub: {} shard(s), {} record(s) kept, {} lost, {} resynced, {} byte(s) quarantined",
            self.shards.len(),
            self.kept,
            self.lost,
            self.resynced,
            self.quarantined_bytes()
        )?;
        for s in self.shards.iter().filter(|s| s.rewritten) {
            writeln!(
                f,
                "  shard {:03}: kept {} ({} resynced), {} bad region(s), {} byte(s) quarantined",
                s.shard, s.kept, s.resynced, s.bad_regions, s.quarantined_bytes
            )?;
        }
        write!(
            f,
            "  manifest: {} record(s), digest {}{}",
            self.kept,
            self.corpus_digest,
            if self.rewrote_manifest { " (rewritten)" } else { " (unchanged)" }
        )
    }
}

/// One verified frame found by the shard walk.
struct GoodFrame {
    /// Byte range of the whole frame (header + payload) in the shard.
    start: usize,
    end: usize,
    /// Whether the record is materialized (carries a repository).
    materialized: bool,
}

/// Walk one shard's bytes, returning the verified frames and the
/// corrupt regions between them. `digester` accumulates the surviving
/// materialized records' digest contributions.
fn walk_shard(
    bytes: &[u8],
    digester: &mut CorpusDigester,
) -> (Vec<GoodFrame>, Vec<(usize, usize)>, u64) {
    let mut good = Vec::new();
    let mut bad: Vec<(usize, usize)> = Vec::new();
    let mut resynced = 0u64;
    let mut bad_start: Option<usize> = None;
    let mut pos = SHARD_MAGIC.len();
    if bytes.len() < SHARD_MAGIC.len() || &bytes[..SHARD_MAGIC.len()] != SHARD_MAGIC {
        // Corrupt magic: quarantine the prefix and resync from zero.
        pos = 0;
        if !bytes.is_empty() {
            bad_start = Some(0);
        }
    }
    while pos < bytes.len() {
        match verify_frame_at(bytes, pos, digester) {
            Some(frame) => {
                if let Some(start) = bad_start.take() {
                    bad.push((start, pos));
                }
                // Any verified frame past the first bad region is one
                // the online fail-closed reader would have abandoned.
                if !bad.is_empty() {
                    resynced += 1;
                }
                pos = frame.end;
                good.push(frame);
            }
            None => {
                // First failure at a supposed boundary opens a bad
                // region; afterwards scan byte-by-byte for the next
                // verifiable frame.
                bad_start.get_or_insert(pos);
                pos += 1;
            }
        }
    }
    if let Some(start) = bad_start {
        bad.push((start, bytes.len()));
    }
    (good, bad, resynced)
}

/// Verify a candidate frame at `pos`: plausible length, in-bounds,
/// checksum match, decodable payload. Feeds the digester on success.
fn verify_frame_at(bytes: &[u8], pos: usize, digester: &mut CorpusDigester) -> Option<GoodFrame> {
    let rest = &bytes[pos..];
    if rest.len() < FRAME_LEN {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    if len == 0 || len > MAX_RECORD_LEN {
        return None;
    }
    let len = len as usize;
    if rest.len() < FRAME_LEN + len {
        return None;
    }
    let payload = &rest[FRAME_LEN..FRAME_LEN + len];
    if sha1(payload).0 != rest[4..FRAME_LEN] {
        return None;
    }
    let record = decode_record(payload).ok()?;
    let materialized = match &record.materialized {
        Some((repo, _, _)) => {
            digester.add(&record.name, &record.sql_paths, repo);
            true
        }
        None => false,
    };
    Some(GoodFrame { start: pos, end: pos + FRAME_LEN + len, materialized })
}

/// Publish `contents` at `path` via temp file + fsync + rename +
/// directory fsync, retrying transient I/O.
fn publish(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("scrub-tmp");
    let out = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => File::open(dir)?.sync_all(),
            _ => Ok(()),
        }
    });
    if out.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    out
}

/// Quarantine sidecar magic.
const QUARANTINE_MAGIC: &[u8; 8] = b"SCHEVOQ1";

/// Scrub the store at `dir`: verify every shard frame, quarantine
/// corrupt regions, rewrite damaged shards and the manifest, and
/// report what was kept, lost, and recovered.
pub fn scrub_store(dir: &Path) -> Result<ScrubReport, StoreError> {
    let _span = schevo_obs::span!("store.scrub", dir = dir.display());
    let store = ShardStore::open(dir)?;
    let manifest = store.manifest().clone();
    let mut digester = CorpusDigester::new();
    let mut shards = Vec::with_capacity(manifest.shards as usize);
    let mut kept = 0u64;
    let mut materialized = 0u64;
    let mut resynced_total = 0u64;
    for i in 0..manifest.shards as usize {
        let path = shard_path(dir, i);
        let bytes = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.read")?;
            fs::read(&path)
        })?;
        let (good, bad, resynced) = walk_shard(&bytes, &mut digester);
        let quarantined: u64 = bad.iter().map(|(s, e)| (e - s) as u64).sum();
        // A shard shorter than its magic has nothing to quarantine but
        // still needs its header restored for the online reader.
        let rewrite = quarantined > 0 || bytes.len() < SHARD_MAGIC.len();
        if quarantined > 0 {
            // Sidecar first: the damaged bytes must be safe before the
            // shard rewrite destroys the only other copy of them.
            let mut sidecar = QUARANTINE_MAGIC.to_vec();
            for &(s, e) in &bad {
                sidecar.extend_from_slice(&(s as u64).to_le_bytes());
                sidecar.extend_from_slice(&((e - s) as u64).to_le_bytes());
                sidecar.extend_from_slice(&bytes[s..e]);
            }
            let sidecar_path = dir.join(format!("shard-{i:03}.pack.quarantine"));
            publish(&sidecar_path, &sidecar)?;
        }
        if rewrite {
            let mut clean = Vec::with_capacity(SHARD_MAGIC.len() + bytes.len());
            clean.extend_from_slice(SHARD_MAGIC);
            for frame in &good {
                clean.extend_from_slice(&bytes[frame.start..frame.end]);
            }
            publish(&path, &clean)?;
        }
        kept += good.len() as u64;
        materialized += good.iter().filter(|f| f.materialized).count() as u64;
        resynced_total += resynced;
        shards.push(ShardScrub {
            shard: i,
            kept: good.len() as u64,
            resynced,
            bad_regions: bad.len() as u64,
            quarantined_bytes: quarantined,
            rewritten: rewrite,
        });
    }
    let lost = manifest.records.saturating_sub(kept);
    let corpus_digest = digester.finalize(&manifest.config());
    let repaired = StoreManifest {
        records: kept,
        materialized,
        corpus_digest: corpus_digest.clone(),
        lost: {
            let total = manifest.lost_records() + lost;
            (total > 0).then_some(total)
        },
        ..manifest.clone()
    };
    let rewrote_manifest = repaired != manifest;
    if rewrote_manifest {
        let json = match serde_json::to_string_pretty(&repaired) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(e) => return Err(StoreError::Manifest(format!("encode: {e}"))),
        };
        failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.manifest")
        })?;
        publish(&manifest_path(dir), json.as_bytes())?;
    }
    Ok(ScrubReport {
        shards,
        records_before: manifest.records,
        kept,
        lost,
        resynced: resynced_total,
        materialized,
        corpus_digest,
        rewrote_manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{generate_into_store, ShardStore, StoreEvent};
    use crate::universe::UniverseConfig;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schevo_scrub_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Stream the store, returning (records, corruption events).
    fn census(dir: &Path) -> (u64, u64) {
        let store = ShardStore::open(dir).expect("open");
        let mut stream = store.stream();
        let (mut recs, mut bad) = (0u64, 0u64);
        while let Some(event) = stream.next_event() {
            match event {
                StoreEvent::Record(_) => recs += 1,
                StoreEvent::Corrupt { .. } => bad += 1,
            }
        }
        (recs, bad)
    }

    #[test]
    fn clean_store_scrub_is_a_noop() {
        let dir = scratch("noop");
        let config = UniverseConfig::small(2019, 80);
        let (manifest, _) = generate_into_store(config, &dir, 2).expect("generate");
        let before = fs::read(manifest_path(&dir)).expect("manifest bytes");
        let report = scrub_store(&dir).expect("scrub");
        assert!(report.clean(), "{report}");
        assert_eq!(report.kept, manifest.records);
        assert_eq!(report.lost, 0);
        assert_eq!(report.corpus_digest, manifest.corpus_digest);
        assert_eq!(fs::read(manifest_path(&dir)).expect("manifest bytes"), before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_loses_one_record_and_resyncs_the_tail() {
        let dir = scratch("flip");
        let config = UniverseConfig::small(7, 80);
        let (manifest, _) = generate_into_store(config, &dir, 2).expect("generate");
        // Flip one byte in the middle of shard 0: the online reader
        // loses the whole tail of that shard.
        let path = shard_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let (online_recs, online_bad) = census(&dir);
        assert_eq!(online_bad, 1);
        assert!(online_recs < manifest.records - 1, "online read loses the tail");

        let report = scrub_store(&dir).expect("scrub");
        assert_eq!(report.lost, 1, "scrub loses only the flipped record: {report}");
        assert_eq!(report.kept, manifest.records - 1);
        assert!(report.resynced > 0, "tail records recovered by resync");
        assert!(report.rewrote_manifest);

        // The sidecar holds exactly the quarantined bytes, framed with
        // their original offset and length.
        let sidecar = fs::read(dir.join("shard-000.pack.quarantine")).expect("sidecar");
        assert_eq!(&sidecar[..8], QUARANTINE_MAGIC);
        let region_off = u64::from_le_bytes(sidecar[8..16].try_into().unwrap()) as usize;
        let region_len = u64::from_le_bytes(sidecar[16..24].try_into().unwrap()) as usize;
        assert_eq!(
            region_len as u64, report.shards[0].quarantined_bytes,
            "sidecar frames the quarantined region"
        );
        assert_eq!(sidecar.len(), 24 + region_len, "one region in the sidecar");
        assert_eq!(
            &sidecar[24..],
            &bytes[region_off..region_off + region_len],
            "sidecar preserves the damaged bytes verbatim"
        );

        // The scrubbed store streams with zero corruption events, the
        // manifest agrees with the stream, and it refuses pristine reuse.
        let (recs, bad) = census(&dir);
        assert_eq!(bad, 0, "scrubbed store is corruption-free");
        assert_eq!(recs, report.kept);
        let reopened = ShardStore::open(&dir).expect("reopen");
        assert_eq!(reopened.manifest().records, report.kept);
        assert_eq!(reopened.manifest().lost_records(), 1);
        assert!(!reopened.manifest().matches(&config, 2), "lossy store must not match");

        // Idempotent: a second scrub changes nothing.
        let again = scrub_store(&dir).expect("second scrub");
        assert!(again.clean(), "{again}");
        assert_eq!(again.lost, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_tail_is_quarantined() {
        let dir = scratch("trunc");
        let config = UniverseConfig::small(3, 80);
        let (manifest, _) = generate_into_store(config, &dir, 1).expect("generate");
        let path = shard_path(&dir, 0);
        let bytes = fs::read(&path).expect("read shard");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");

        let report = scrub_store(&dir).expect("scrub");
        assert_eq!(report.lost, 1, "{report}");
        assert_eq!(report.kept, manifest.records - 1);
        assert_eq!(report.shards[0].bad_regions, 1);
        let (recs, bad) = census(&dir);
        assert_eq!((recs, bad), (report.kept, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_magic_recovers_every_record_by_resync() {
        let dir = scratch("magic");
        let config = UniverseConfig::small(11, 80);
        let (manifest, _) = generate_into_store(config, &dir, 2).expect("generate");
        let path = shard_path(&dir, 1);
        let mut bytes = fs::read(&path).expect("read shard");
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).expect("rewrite");
        let (_, online_bad) = census(&dir);
        assert_eq!(online_bad, 1, "online reader rejects the whole shard");

        let report = scrub_store(&dir).expect("scrub");
        assert_eq!(report.lost, 0, "every record survives: {report}");
        assert_eq!(report.kept, manifest.records);
        assert_eq!(report.corpus_digest, manifest.corpus_digest);
        assert!(report.shards[1].rewritten);
        let (recs, bad) = census(&dir);
        assert_eq!((recs, bad), (manifest.records, 0));
        // No records were lost, so the store still matches pristine.
        assert!(ShardStore::open(&dir).expect("reopen").manifest().matches(&config, 2));
        let _ = fs::remove_dir_all(&dir);
    }
}
