//! Assembly of the full synthetic universe: the SQL-Collection, the
//! Libraries.io metadata, and the materialized repositories — everything
//! the collection funnel (in `schevo-pipeline`) consumes.
//!
//! The universe carries **ground truth**: which repository was generated
//! for which taxon or noise class. The funnel never reads the ground truth;
//! tests compare its output against it.

use crate::libio::LibioRecord;
use crate::noise::{
    add_postgres_sibling, empty_file_project, funnel_counts, no_create_table_project,
    rigid_project, zero_version_project, NoiseKind, NoiseProject, TAXON_COUNTS,
};
use crate::plan::plan_project;
use crate::realize::{realize, GeneratedProject};
use rand::rngs::StdRng;
use rand::SeedableRng;
use schevo_core::taxa::Taxon;
use schevo_vcs::repo::Repository;
use std::collections::{BTreeMap, HashMap};

/// One record of the SQL-Collection: a repository known to contain `.sql`
/// files, with the file paths GitHub Activity reports for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlCollectionEntry {
    /// `owner/repo`.
    pub repo_name: String,
    /// Paths of `.sql` files in the repository.
    pub sql_paths: Vec<String>,
}

/// Ground truth about a materialized repository.
#[derive(Debug)]
pub enum MaterializedBody {
    /// A schema-evolution project engineered for a taxon.
    Evo(Box<GeneratedProject>),
    /// A project destined for exclusion (or the rigid side-line).
    Noise(NoiseProject),
}

impl MaterializedBody {
    /// The underlying repository, whichever variant owns it.
    pub fn repo(&self) -> &Repository {
        match self {
            MaterializedBody::Evo(p) => &p.repo,
            MaterializedBody::Noise(n) => &n.repo,
        }
    }

    /// Forge-reported metadata the funnel attributes to this repository:
    /// `(PUP months, total commits)`. Noise projects report a fixed
    /// plausible placeholder — they are dropped or side-lined before the
    /// values matter, but the funnel still reads them off the forge.
    pub fn reported_meta(&self) -> (u64, u64) {
        match self {
            MaterializedBody::Evo(p) => (p.reported_pup_months, p.reported_total_commits),
            MaterializedBody::Noise(_) => (24, 100),
        }
    }
}

/// A materialized repository plus its advertised paths.
#[derive(Debug)]
pub struct MaterializedRepo {
    /// The repository and its ground truth.
    pub body: MaterializedBody,
    /// Paths advertised in the SQL-Collection for this repository.
    pub sql_paths: Vec<String>,
}

impl MaterializedRepo {
    /// The repository name.
    pub fn name(&self) -> &str {
        match &self.body {
            MaterializedBody::Evo(p) => &p.plan.name,
            MaterializedBody::Noise(n) => &n.repo.name,
        }
    }

    /// The intended taxon, if this is an evolution project.
    pub fn intended_taxon(&self) -> Option<Taxon> {
        match &self.body {
            MaterializedBody::Evo(p) => Some(p.plan.taxon),
            MaterializedBody::Noise(_) => None,
        }
    }

    /// The noise kind, if this is a noise project.
    pub fn noise_kind(&self) -> Option<NoiseKind> {
        match &self.body {
            MaterializedBody::Evo(_) => None,
            MaterializedBody::Noise(n) => Some(n.kind),
        }
    }

    /// The underlying repository, whichever body owns it.
    pub fn repo(&self) -> &Repository {
        self.body.repo()
    }

    /// Forge-reported `(PUP months, total commits)`; see
    /// [`MaterializedBody::reported_meta`].
    pub fn reported_meta(&self) -> (u64, u64) {
        self.body.reported_meta()
    }
}

/// Configuration of universe generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniverseConfig {
    /// RNG seed; the same seed reproduces the identical universe.
    pub seed: u64,
    /// Divisor applied to every cardinality (1 = the paper's full scale).
    pub scale_divisor: usize,
    /// Multiplier applied to every cardinality before the divisor
    /// (1 = the paper's full scale). Multipliers above 1 grow the corpus
    /// beyond the paper and are meant for the streaming store path —
    /// a 20× universe does not fit comfortably in RAM.
    pub scale_multiplier: usize,
}

impl UniverseConfig {
    /// The paper-scale universe (133,029 records, 365 materialized repos).
    pub fn paper(seed: u64) -> Self {
        UniverseConfig {
            seed,
            scale_divisor: 1,
            scale_multiplier: 1,
        }
    }

    /// A scaled-down universe for fast tests (counts divided by `divisor`).
    pub fn small(seed: u64, divisor: usize) -> Self {
        UniverseConfig {
            seed,
            scale_divisor: divisor.max(1),
            scale_multiplier: 1,
        }
    }

    /// A scaled-up universe (counts multiplied by `factor`), for
    /// beyond-paper-scale runs. Combine with the sharded store: the
    /// streaming generator never holds more than one record resident.
    pub fn scaled(seed: u64, factor: usize) -> Self {
        UniverseConfig {
            seed,
            scale_divisor: 1,
            scale_multiplier: factor.max(1),
        }
    }

    /// This config with a different multiplier.
    pub fn with_multiplier(mut self, factor: usize) -> Self {
        self.scale_multiplier = factor.max(1);
        self
    }
}

/// Expected cardinalities of a universe at a given scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedCounts {
    /// SQL-Collection size.
    pub sql_collection: usize,
    /// Lib-io data set size (materialized repositories).
    pub lib_io: usize,
    /// Zero-version projects among the materialized.
    pub zero_version: usize,
    /// Empty-file + no-CREATE-TABLE projects.
    pub empty_or_no_ct: usize,
    /// Cloned survivors.
    pub cloned: usize,
    /// Rigid (single-version) projects.
    pub rigid: usize,
    /// Final analyzed population.
    pub analyzed: usize,
    /// Per-taxon counts, in `Taxon::ALL` order.
    pub taxa: [usize; 6],
}

impl ExpectedCounts {
    /// Scale the paper's counts by the config's multiplier and divisor.
    pub fn for_config(config: &UniverseConfig) -> ExpectedCounts {
        let d = config.scale_divisor;
        let m = config.scale_multiplier;
        let scale = |n: usize| (n.saturating_mul(m) / d).max(1);
        let taxa = [
            scale(TAXON_COUNTS[0].1),
            scale(TAXON_COUNTS[1].1),
            scale(TAXON_COUNTS[2].1),
            scale(TAXON_COUNTS[3].1),
            scale(TAXON_COUNTS[4].1),
            scale(TAXON_COUNTS[5].1),
        ];
        let analyzed: usize = taxa.iter().sum();
        let rigid = scale(funnel_counts::RIGID);
        let zero_version = scale(funnel_counts::ZERO_VERSION);
        let empty_or_no_ct = scale(funnel_counts::EMPTY_OR_NO_CT);
        let cloned = analyzed + rigid;
        let lib_io = cloned + zero_version + empty_or_no_ct;
        ExpectedCounts {
            sql_collection: scale(funnel_counts::SQL_COLLECTION),
            lib_io,
            zero_version,
            empty_or_no_ct,
            cloned,
            rigid,
            analyzed,
            taxa,
        }
    }
}

/// The synthetic universe.
#[derive(Debug)]
pub struct Universe {
    /// How the universe was generated.
    pub config: UniverseConfig,
    /// Expected cardinalities at this scale.
    pub expected: ExpectedCounts,
    /// The SQL-Collection (lightweight records, one per repository).
    pub sql_collection: Vec<SqlCollectionEntry>,
    /// Libraries.io metadata, keyed by repository name. Repositories not in
    /// the map are "not monitored by Libraries.io".
    pub libio: HashMap<String, LibioRecord>,
    /// Materialized repositories, keyed by repository name.
    pub materialized: HashMap<String, MaterializedRepo>,
}

/// Proportions of the lightweight exclusion classes at full scale. The
/// residual (SQL_COLLECTION − LIB_IO − the named classes) is "not monitored
/// by Libraries.io".
const FORK_COUNT: usize = 30_000;
const ZERO_STAR_COUNT: usize = 25_000;
const ONE_CONTRIB_COUNT: usize = 20_000;
const EXCLUDED_PATH_COUNT: usize = 10_000;
const MULTI_FILE_COUNT: usize = 7_664;

/// One record of the streaming generator: everything the corpus knows
/// about a repository, emitted exactly once, in SQL-Collection order.
/// Lightweight (never-materialized) records carry no body; materialized
/// records own theirs — after the sink returns, the generator keeps
/// nothing alive, which is what makes beyond-RAM scales possible.
#[derive(Debug)]
pub struct CorpusRecord {
    /// `owner/repo`.
    pub name: String,
    /// Paths advertised in the SQL-Collection for this repository.
    pub sql_paths: Vec<String>,
    /// Libraries.io metadata, absent for unmonitored repositories.
    pub libio: Option<LibioRecord>,
    /// The materialized repository, absent for lightweight records.
    pub body: Option<MaterializedBody>,
}

/// Wrap one noise project into its corpus record. The libio draw happens
/// *after* the project is built — the RNG stream must match the original
/// monolithic generator call for call.
fn noise_record(noise: NoiseProject, rng: &mut StdRng) -> CorpusRecord {
    use rand::Rng;
    let name = noise.repo.name.clone();
    let paths = vec![noise.ddl_path.clone()];
    let libio =
        LibioRecord::new(name.clone(), false, rng.gen_range(1..200), rng.gen_range(2..20));
    CorpusRecord {
        name,
        sql_paths: paths,
        libio: Some(libio),
        body: Some(MaterializedBody::Noise(noise)),
    }
}

/// Wrap one lightweight excluded record.
fn light_record(i: usize, paths: Vec<String>, meta: Option<LibioRecord>) -> CorpusRecord {
    let name = crate::names::project_name(i);
    let libio = meta.map(|mut m| {
        m.repo_name = name.clone();
        m.url = format!("https://github.example/{name}");
        m
    });
    CorpusRecord {
        name,
        sql_paths: paths,
        libio,
        body: None,
    }
}

/// Drive the generator, handing each [`CorpusRecord`] to `emit` in
/// SQL-Collection order. This is the single source of truth for corpus
/// content: [`generate`] collects the records into an in-memory
/// [`Universe`], the sharded store writer streams them to disk, and both
/// see the identical record sequence because the RNG stream depends only
/// on the config.
pub fn generate_records(config: UniverseConfig, emit: &mut dyn FnMut(CorpusRecord)) {
    let expected = ExpectedCounts::for_config(&config);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut index = 0usize;
    let mut emitted = 0usize;
    macro_rules! next_index {
        () => {{
            let i = index;
            index += 1;
            i
        }};
    }
    macro_rules! send {
        ($record:expr) => {{
            emitted += 1;
            emit($record);
        }};
    }

    // --- materialized evolution projects, per taxon ---
    for (slot, (taxon, _)) in TAXON_COUNTS.iter().enumerate() {
        for _ in 0..expected.taxa[slot] {
            let i = next_index!();
            let plan = plan_project(&mut rng, i, *taxon);
            let mut project = realize(&mut rng, &plan);
            let mut paths = vec![project.ddl_path.clone()];
            // Projects realized with a vendor-specific layout (index ≡ 3 mod
            // 8) carry a postgres sibling file: the funnel must resolve the
            // vendor choice to MySQL.
            if project.ddl_path.contains("mysql") {
                let when = last_timestamp_plus(&project, 3_600);
                add_postgres_sibling(&mut project.repo, &project.ddl_path, when);
                paths.push(project.ddl_path.replace("mysql", "postgres"));
            }
            let name = plan.name.clone();
            let libio =
                LibioRecord::new(name.clone(), false, plan.stars.max(1), plan.contributors.max(2));
            send!(CorpusRecord {
                name,
                sql_paths: paths,
                libio: Some(libio),
                body: Some(MaterializedBody::Evo(Box::new(project))),
            });
        }
    }

    // --- materialized noise projects ---
    for _ in 0..expected.rigid {
        let n = rigid_project(&mut rng, next_index!());
        send!(noise_record(n, &mut rng));
    }
    for _ in 0..expected.zero_version {
        let n = zero_version_project(&mut rng, next_index!());
        send!(noise_record(n, &mut rng));
    }
    // Split the empty/no-CT bucket roughly 40/60.
    let empty_count = (expected.empty_or_no_ct * 2) / 5;
    for _ in 0..empty_count {
        let n = empty_file_project(&mut rng, next_index!());
        send!(noise_record(n, &mut rng));
    }
    for _ in empty_count..expected.empty_or_no_ct {
        let n = no_create_table_project(&mut rng, next_index!());
        send!(noise_record(n, &mut rng));
    }

    // --- lightweight excluded records ---
    use rand::Rng;
    let d = config.scale_divisor;
    let m = config.scale_multiplier;
    let scale = |n: usize| (n.saturating_mul(m) / d).max(1);
    for _ in 0..scale(FORK_COUNT) {
        let i = next_index!();
        let meta = LibioRecord::new("x", true, rng.gen_range(1..500), rng.gen_range(2..30));
        send!(light_record(i, vec!["db/schema.sql".into()], Some(meta)));
    }
    for _ in 0..scale(ZERO_STAR_COUNT) {
        let i = next_index!();
        let meta = LibioRecord::new("x", false, 0, rng.gen_range(2..30));
        send!(light_record(i, vec!["db/schema.sql".into()], Some(meta)));
    }
    for _ in 0..scale(ONE_CONTRIB_COUNT) {
        let i = next_index!();
        let meta = LibioRecord::new("x", false, rng.gen_range(1..500), 1);
        send!(light_record(i, vec!["db/schema.sql".into()], Some(meta)));
    }
    for k in 0..scale(EXCLUDED_PATH_COUNT) {
        let i = next_index!();
        let meta = LibioRecord::new("x", false, rng.gen_range(1..500), rng.gen_range(2..30));
        let path = match k % 3 {
            0 => "test/fixtures/schema.sql",
            1 => "demo/demo_data.sql",
            _ => "docs/example/schema.sql",
        };
        send!(light_record(i, vec![path.into()], Some(meta)));
    }
    for k in 0..scale(MULTI_FILE_COUNT) {
        let i = next_index!();
        let meta = LibioRecord::new("x", false, rng.gen_range(1..500), rng.gen_range(2..30));
        let paths: Vec<String> = match k % 3 {
            // File-per-table layouts.
            0 => (0..4).map(|t| format!("sql/tables/table_{t}.sql")).collect(),
            // Incremental migrations.
            1 => (0..5).map(|m| format!("migrations/{m:03}_step.sql")).collect(),
            // Vendor × language Cartesian products.
            _ => vec![
                "sql/en/mysql/schema.sql".into(),
                "sql/en/postgres/schema.sql".into(),
                "sql/fr/mysql/schema.sql".into(),
                "sql/fr/postgres/schema.sql".into(),
            ],
        };
        send!(light_record(i, paths, Some(meta)));
    }
    // Remainder: not monitored by Libraries.io at all.
    while emitted < expected.sql_collection {
        let i = next_index!();
        send!(light_record(i, vec!["db/schema.sql".into()], None));
    }
}

/// Generate the universe, fully resident in memory.
pub fn generate(config: UniverseConfig) -> Universe {
    let _span = schevo_obs::span!(
        "corpus.generate",
        seed = config.seed,
        scale_divisor = config.scale_divisor
    );
    let expected = ExpectedCounts::for_config(&config);
    let mut sql_collection = Vec::with_capacity(expected.sql_collection);
    let mut libio = HashMap::new();
    let mut materialized: HashMap<String, MaterializedRepo> = HashMap::new();
    generate_records(config, &mut |record| {
        if let Some(meta) = record.libio {
            libio.insert(record.name.clone(), meta);
        }
        if let Some(body) = record.body {
            materialized.insert(
                record.name.clone(),
                MaterializedRepo {
                    body,
                    sql_paths: record.sql_paths.clone(),
                },
            );
        }
        sql_collection.push(SqlCollectionEntry {
            repo_name: record.name,
            sql_paths: record.sql_paths,
        });
    });
    Universe {
        config,
        expected,
        sql_collection,
        libio,
        materialized,
    }
}

/// One deterministic batch of appendix projects, meant for
/// [`crate::store::append_into_store`]: fresh evolution histories that
/// arrive *after* a store was generated, plus the ground-truth names of
/// the ones whose every DDL version was corrupted.
#[derive(Debug)]
pub struct AppendixBatch {
    /// Records in emission order — all materialized evolution projects.
    pub records: Vec<CorpusRecord>,
    /// Names of the projects corrupted into guaranteed quarantine.
    pub corrupted: Vec<String>,
}

/// Generate `count` appendix projects for batch number `batch`, the
/// first `corrupt` of them with every DDL version byte-flip-corrupted
/// (always-detectable, so graceful mining must quarantine them).
///
/// Determinism and freshness: the RNG is seeded from `(config.seed,
/// batch)` only, and project indices come from a high per-batch range —
/// [`crate::names::project_name`] is injective over its index, so
/// appendix names never collide with the base corpus or other batches.
/// Indices step by 8 to stay clear of the vendor-specific layout
/// (index ≡ 3 mod 8), keeping every appendix record single-path.
pub fn generate_appendix(
    config: UniverseConfig,
    batch: u64,
    count: usize,
    corrupt: usize,
) -> AppendixBatch {
    use crate::faultgen::poison_history;
    // Taxa with ≥4 active commits: appendix histories must never be
    // rigid (single-version), or they would be excluded by the funnel
    // instead of mined/quarantined.
    const APPENDIX_TAXA: [Taxon; 3] = [Taxon::Moderate, Taxon::FocusedShotLow, Taxon::Active];
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(batch)
            .wrapping_add(1),
    );
    let base = (1usize << 20).saturating_mul(batch as usize + 1);
    let mut records = Vec::with_capacity(count);
    let mut corrupted = Vec::with_capacity(corrupt.min(count));
    for k in 0..count {
        let taxon = APPENDIX_TAXA[k % APPENDIX_TAXA.len()];
        let plan = plan_project(&mut rng, base + k * 8, taxon);
        let mut project = realize(&mut rng, &plan);
        if k < corrupt {
            poison_history(&mut project);
            corrupted.push(plan.name.clone());
        }
        let paths = vec![project.ddl_path.clone()];
        let name = plan.name.clone();
        let libio =
            LibioRecord::new(name.clone(), false, plan.stars.max(1), plan.contributors.max(2));
        records.push(CorpusRecord {
            name,
            sql_paths: paths,
            libio: Some(libio),
            body: Some(MaterializedBody::Evo(Box::new(project))),
        });
    }
    AppendixBatch { records, corrupted }
}

/// Incremental builder of the corpus content digest, shared by the
/// in-memory [`corpus_digest`] and the sharded store writer so both
/// backends report the identical digest for the same config.
///
/// Per-repository contributions are keyed by name in a sorted map and
/// folded in name order at finalization, so insertion order does not
/// matter. Only materialized repositories contribute (branch tips commit
/// to the entire reachable object graph); the config's seed and scale
/// are hashed first. The multiplier is hashed only when it is not 1, so
/// digests of paper-scale and divided corpora are unchanged from
/// earlier releases.
#[derive(Debug, Default)]
pub struct CorpusDigester {
    parts: BTreeMap<String, Vec<u8>>,
}

impl CorpusDigester {
    /// An empty digester.
    pub fn new() -> CorpusDigester {
        CorpusDigester::default()
    }

    /// Record one materialized repository's contribution.
    pub fn add(&mut self, name: &str, sql_paths: &[String], repo: &Repository) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(name.as_bytes());
        for path in sql_paths {
            bytes.extend_from_slice(path.as_bytes());
        }
        let mut branches: Vec<&str> = repo.branch_names().collect();
        branches.sort_unstable();
        for branch in branches {
            bytes.extend_from_slice(branch.as_bytes());
            if let Some(tip) = repo.branch_tip(branch) {
                bytes.extend_from_slice(&tip.0);
            }
        }
        self.parts.insert(name.to_string(), bytes);
    }

    /// Fold the recorded contributions into the 40-hex digest.
    pub fn finalize(&self, config: &UniverseConfig) -> String {
        use schevo_vcs::sha1::Sha1;
        let mut hasher = Sha1::new();
        hasher.update(&config.seed.to_le_bytes());
        hasher.update(&(config.scale_divisor as u64).to_le_bytes());
        if config.scale_multiplier != 1 {
            hasher.update(&(config.scale_multiplier as u64).to_le_bytes());
        }
        for bytes in self.parts.values() {
            hasher.update(bytes);
        }
        hasher.finalize().to_hex()
    }
}

/// Content digest of a generated (and possibly fault-injected) corpus:
/// a 40-hex SHA-1 over the generation config plus, for every materialized
/// repository in name order, its advertised SQL paths and the tip of every
/// branch. Branch tips commit to the entire reachable object graph, so any
/// change to repository content — including rebuilds by the fault injector —
/// changes the digest, while re-generating with the same seed and scale
/// reproduces it exactly. Recorded in the run manifest to tie results to
/// the corpus they were mined from.
pub fn corpus_digest(universe: &Universe) -> String {
    let mut digester = CorpusDigester::new();
    for (name, repo) in &universe.materialized {
        digester.add(name, &repo.sql_paths, repo.repo());
    }
    digester.finalize(&universe.config)
}

/// A timestamp safely after every commit the realizer produced.
fn last_timestamp_plus(project: &GeneratedProject, secs: i64) -> schevo_vcs::timestamp::Timestamp {
    let (y, m, d) = project.plan.v0_date;
    let base = schevo_vcs::timestamp::Timestamp::from_datetime(y, m, d, 10, 0, 0);
    base + (project.plan.pup_months as i64 + 2) * 30 * 86_400 + secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_universe_counts_are_consistent() {
        let config = UniverseConfig::small(2019, 10);
        let u = generate(config);
        assert_eq!(u.sql_collection.len(), u.expected.sql_collection);
        assert_eq!(u.materialized.len(), u.expected.lib_io);
        // All materialized repos appear in the collection and in Libraries.io
        // with passing metadata.
        for name in u.materialized.keys() {
            assert!(u.sql_collection.iter().any(|e| &e.repo_name == name));
            assert!(u.libio[name].passes_selection());
        }
    }

    #[test]
    fn universe_is_deterministic() {
        let a = generate(UniverseConfig::small(7, 20));
        let b = generate(UniverseConfig::small(7, 20));
        assert_eq!(a.sql_collection.len(), b.sql_collection.len());
        let mut names_a: Vec<&String> = a.materialized.keys().collect();
        let mut names_b: Vec<&String> = b.materialized.keys().collect();
        names_a.sort();
        names_b.sort();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn ground_truth_taxa_counts() {
        let u = generate(UniverseConfig::small(3, 10));
        for (slot, (taxon, _)) in TAXON_COUNTS.iter().enumerate() {
            let n = u
                .materialized
                .values()
                .filter(|m| m.intended_taxon() == Some(*taxon))
                .count();
            assert_eq!(n, u.expected.taxa[slot], "{taxon:?}");
        }
        let rigid = u
            .materialized
            .values()
            .filter(|m| m.noise_kind() == Some(NoiseKind::Rigid))
            .count();
        assert_eq!(rigid, u.expected.rigid);
    }

    #[test]
    fn corpus_digest_is_reproducible_and_seed_sensitive() {
        let a = corpus_digest(&generate(UniverseConfig::small(7, 20)));
        let b = corpus_digest(&generate(UniverseConfig::small(7, 20)));
        let c = corpus_digest(&generate(UniverseConfig::small(8, 20)));
        assert_eq!(a, b, "same config must reproduce the digest");
        assert_ne!(a, c, "different seed must change the digest");
        assert_eq!(a.len(), 40);
        assert!(a.bytes().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn multi_vendor_projects_have_two_paths() {
        let u = generate(UniverseConfig::small(5, 5));
        let multi: Vec<&MaterializedRepo> = u
            .materialized
            .values()
            .filter(|m| m.sql_paths.len() == 2)
            .collect();
        assert!(!multi.is_empty(), "expected some multi-vendor projects");
        for m in multi {
            assert!(m.sql_paths.iter().any(|p| p.contains("mysql")));
            assert!(m.sql_paths.iter().any(|p| p.contains("postgres")));
        }
    }
}
