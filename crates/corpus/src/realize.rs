//! Materialize a [`ProjectPlan`] into an actual repository.
//!
//! The realizer maintains a live [`Schema`], applies each planned op,
//! renders the schema to real DDL text, and commits that text into a
//! [`Repository`] on the `schevo-vcs` substrate — interleaved with non-DDL
//! commits and wrapped in the project's README/source files. Everything the
//! mining pipeline later observes is recovered from these files by parsing,
//! never copied from the plan.

use crate::names::{author_name, column_name, project_domain, table_name};
use crate::plan::{ProjectPlan, SchemaOp};
use rand::Rng;
use schevo_ddl::render::{render_schema_with, RenderOptions};
use schevo_ddl::schema::{Attribute, Schema, Table};
use schevo_ddl::types::DataType;
use schevo_vcs::repo::{FileChange, Repository};
use schevo_vcs::timestamp::Timestamp;
use std::collections::BTreeMap;

/// A materialized project: the repository plus the metadata that GitHub /
/// Libraries.io would report about it.
#[derive(Debug)]
pub struct GeneratedProject {
    /// The plan this project realizes.
    pub plan: ProjectPlan,
    /// The repository with the full commit history.
    pub repo: Repository,
    /// Path of the DDL file within the repository.
    pub ddl_path: String,
    /// The project's domain label.
    pub domain: &'static str,
    /// Total repository commits, as the forge would report (includes
    /// commits not materialized individually; see DESIGN.md substitutions).
    pub reported_total_commits: u64,
    /// Project Update Period in months, as derivable from forge metadata.
    pub reported_pup_months: u64,
}

/// The type ring used for planned type changes; every adjacent pair is
/// logically different under [`DataType::logical_eq`].
fn type_ring() -> Vec<DataType> {
    vec![
        DataType::int(),
        DataType::from_name("BIGINT"),
        DataType::varchar(64),
        DataType::varchar(255),
        DataType::datetime(),
        DataType::decimal(10, 2),
    ]
}

fn next_type(current: &DataType, ring: &[DataType]) -> DataType {
    let idx = ring.iter().position(|t| t.logical_eq(current));
    match idx {
        Some(i) => ring[(i + 1) % ring.len()].clone(),
        None => ring[0].clone(),
    }
}

/// Live schema state during realization.
struct LiveSchema {
    schema: Schema,
    /// plan table id → table name.
    names: BTreeMap<u64, String>,
    /// table name → next column counter.
    col_counters: BTreeMap<String, usize>,
    table_counter: usize,
    ring: Vec<DataType>,
}

impl LiveSchema {
    fn new() -> Self {
        LiveSchema {
            schema: Schema::new(),
            names: BTreeMap::new(),
            col_counters: BTreeMap::new(),
            table_counter: 0,
            ring: type_ring(),
        }
    }

    fn create_table(&mut self, id: u64, arity: u64) {
        let name = table_name(self.table_counter);
        self.table_counter += 1;
        let mut table = Table::new(name.clone());
        for k in 0..arity {
            let ty = self.ring[(k as usize) % self.ring.len()].clone();
            let mut attr = Attribute::new(column_name(k as usize), ty);
            attr.not_null = k == 0;
            table.push_attribute(attr);
        }
        table.set_primary_key(vec![column_name(0)]);
        // Every third table (deterministically by id) declares a foreign key
        // from its second column to the first live table's key — FK changes
        // are not activity (§III-B), so this enriches the FK-extension study
        // without perturbing the planned profile. Dropping referenced tables
        // later leaves the FK dangling, reproducing the integrity-lapse
        // phenomenon the FK literature reports.
        if id % 3 == 1 && arity >= 2 {
            if let Some((_, target)) = self.names.iter().next() {
                table.push_foreign_key(schevo_ddl::schema::ForeignKey {
                    columns: vec![column_name(1)],
                    foreign_table: target.clone(),
                    foreign_columns: vec![column_name(0)],
                });
            }
        }
        self.schema.upsert_table(table);
        self.names.insert(id, name.clone());
        self.col_counters.insert(name, arity as usize);
    }

    fn apply(&mut self, op: &SchemaOp) {
        match *op {
            SchemaOp::CreateTable { id, arity } => self.create_table(id, arity),
            SchemaOp::InjectColumns { table, count } => {
                let name = self.names[&table].clone();
                let counter = self.col_counters.get_mut(&name).expect("known table");
                let t = self.schema.table_mut(&name).expect("live table");
                for _ in 0..count {
                    let ty_idx = *counter % 6;
                    let ty = type_ring()[ty_idx].clone();
                    t.push_attribute(Attribute::new(column_name(*counter), ty));
                    *counter += 1;
                }
            }
            SchemaOp::DropTable { table } => {
                let name = self.names.remove(&table).expect("known table");
                self.schema.remove_table(&name);
                self.col_counters.remove(&name);
            }
            SchemaOp::EjectColumns { table, count } => {
                let name = self.names[&table].clone();
                let t = self.schema.table_mut(&name).expect("live table");
                for _ in 0..count {
                    let last = t
                        .attributes()
                        .last()
                        .expect("planner keeps ≥1 column")
                        .name
                        .clone();
                    t.remove_attribute(&last);
                }
            }
            SchemaOp::ChangeTypes { table, count } => {
                let name = self.names[&table].clone();
                let t = self.schema.table_mut(&name).expect("live table");
                let targets: Vec<String> = t
                    .attributes()
                    .iter()
                    .take(count as usize)
                    .map(|a| a.name.clone())
                    .collect();
                let ring = self.ring.clone();
                for col in targets {
                    let attr = t.attribute_mut(&col).expect("existing column");
                    attr.data_type = next_type(&attr.data_type, &ring);
                }
            }
            SchemaOp::TogglePk { table, count } => {
                let name = self.names[&table].clone();
                let t = self.schema.table_mut(&name).expect("live table");
                let targets: Vec<String> = t
                    .attributes()
                    .iter()
                    .take(count as usize)
                    .map(|a| a.name.clone())
                    .collect();
                let mut pk: Vec<String> = t.primary_key().to_vec();
                for col in targets {
                    if let Some(pos) = pk.iter().position(|c| c == &col) {
                        pk.remove(pos);
                    } else {
                        pk.push(col);
                    }
                }
                t.set_primary_key(pk);
            }
        }
    }
}

/// The DDL file layout for the `index`-th project. Index ≡ 3 (mod 8)
/// projects keep their schema in a vendor-specific `schema-mysql.sql` — the
/// layout that triggers the funnel's multi-vendor resolution rule.
pub fn ddl_path_for(index: usize, repo_name: &str) -> String {
    let stem = repo_name.split('/').next_back().unwrap_or("schema");
    match index % 8 {
        0 | 6 => "db/schema.sql".to_string(),
        1 | 4 => "sql/schema.sql".to_string(),
        2 | 5 => format!("database/{stem}.sql"),
        3 => "db/schema-mysql.sql".to_string(),
        _ => "schema.sql".to_string(),
    }
}

/// Materialize a plan into a repository.
///
/// The `rng` drives only cosmetic choices (noise text, author rotation);
/// every measured quantity is fixed by the plan.
pub fn realize<R: Rng>(rng: &mut R, plan: &ProjectPlan) -> GeneratedProject {
    let mut repo = Repository::new(plan.name.clone());
    let ddl_path = ddl_path_for(plan.index, &plan.name);
    let (y, m, d) = plan.v0_date;
    let v0 = Timestamp::from_datetime(y, m, d, 10, 0, 0);
    let mut seq: i64 = 0;
    let at = |day: i64, seq: &mut i64| {
        *seq += 1;
        v0 + day * 86_400 + *seq * 120
    };

    // Project bootstrap commits before the schema file appears, so PUP can
    // exceed SUP. A share of the PUP slack precedes V0.
    let sup_months = plan.sup_days / 30 + 1;
    let slack_months = plan.pup_months.saturating_sub(sup_months);
    let pre_months = (slack_months as f64 * rng.gen_range(0.2..0.6)).round() as i64;
    let post_months = slack_months as i64 - pre_months;
    let project_start_day = -pre_months * 30;
    repo.commit(
        &[
            FileChange::write("README.md", format!("# {}\n\nA {} project.\n", plan.name, project_domain(plan.index))),
            FileChange::write("src/main.c", "int main(void) { return 0; }\n"),
        ],
        &author_name(plan.index, 0),
        at(project_start_day, &mut seq),
        "initial import",
    )
    .expect("bootstrap commit");

    // V0 of the schema file.
    let mut live = LiveSchema::new();
    for (i, &arity) in plan.start_arities.iter().enumerate() {
        live.create_table(i as u64, arity);
    }
    // Plan table ids for V0 tables are 0..tables_start in SimSchema order;
    // ids created later by compile_commit continue from tables_start — the
    // same numbering LiveSchema uses, because both consume ids in order.
    let mut render_opts = RenderOptions {
        header_comment: Some(format!("{} database schema\nrevision 0", plan.name)),
        ..Default::default()
    };
    repo.commit(
        &[FileChange::write(&ddl_path, render_schema_with(&live.schema, &render_opts))],
        &author_name(plan.index, 0),
        at(0, &mut seq),
        "add database schema",
    )
    .expect("V0 commit");

    // Post-V0 schedule.
    let mut revision = 0usize;
    let mut noise_inserts: Vec<String> = Vec::new();
    for (i, commit) in plan.schedule.iter().enumerate() {
        let author = author_name(plan.index, i % plan.contributors.max(1) as usize);
        // Occasionally interleave an unrelated commit just before.
        if rng.gen_bool(0.35) {
            repo.commit(
                &[FileChange::write(
                    format!("src/feature_{i}.c"),
                    format!("// feature {i}\n"),
                )],
                &author,
                at(commit.day, &mut seq),
                &format!("work on feature {i}"),
            )
            .expect("noise commit");
        }
        let message;
        if commit.ops.is_empty() {
            // Non-active commit: change comments, INSERT seeds or indexes —
            // content must change so a new file version registers, while the
            // logical schema stays identical.
            revision += 1;
            match rng.gen_range(0..3) {
                0 => {
                    render_opts.header_comment =
                        Some(format!("{} database schema\nrevision {revision}", plan.name));
                    message = format!("docs: update schema header (rev {revision})");
                }
                1 => {
                    noise_inserts.push(format!(
                        "INSERT INTO settings VALUES ({revision}, 'seed-{revision}');"
                    ));
                    message = "chore: refresh seed data".to_string();
                }
                _ => {
                    noise_inserts.push(format!(
                        "CREATE INDEX idx_auto_{revision} ON settings (id);"
                    ));
                    message = "perf: add index".to_string();
                }
            }
        } else {
            for op in &commit.ops {
                live.apply(op);
            }
            message = format!(
                "schema: {} expansion, {} maintenance",
                commit.expansion, commit.maintenance
            );
        }
        render_opts.trailer_statements = noise_inserts.clone();
        repo.commit(
            &[FileChange::write(&ddl_path, render_schema_with(&live.schema, &render_opts))],
            &author,
            at(commit.day, &mut seq),
            &message,
        )
        .expect("schedule commit");
    }

    // Post-SUP project commits, so the project outlives its schema window.
    let last_day = plan.schedule.last().map(|c| c.day).unwrap_or(0);
    if post_months > 0 {
        repo.commit(
            &[FileChange::write("CHANGELOG.md", "## later releases\n")],
            &author_name(plan.index, 1),
            at(last_day + post_months * 30, &mut seq),
            "post-schema maintenance",
        )
        .expect("tail commit");
    }

    GeneratedProject {
        plan: plan.clone(),
        repo,
        ddl_path,
        domain: project_domain(plan.index),
        reported_total_commits: plan.total_commits,
        reported_pup_months: plan.pup_months,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_project;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schevo_core::model::SchemaHistory;
    use schevo_core::profile::EvolutionProfile;
    use schevo_core::taxa::{ProjectClass, Taxon};
    use schevo_vcs::history::{file_history, WalkStrategy};

    fn mine(p: &GeneratedProject) -> EvolutionProfile {
        let versions = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        let history = SchemaHistory::from_file_versions(p.plan.name.clone(), &versions).unwrap();
        EvolutionProfile::of(&history)
    }

    #[test]
    fn realized_project_recovers_planned_profile() {
        let mut rng = StdRng::seed_from_u64(77);
        for (i, taxon) in Taxon::ALL.iter().cycle().take(36).enumerate() {
            let plan = plan_project(&mut rng, i, *taxon);
            let project = realize(&mut rng, &plan);
            let profile = mine(&project);
            assert_eq!(profile.commits, plan.commits, "{}: commits", plan.name);
            assert_eq!(
                profile.active_commits, plan.active_commits,
                "{}: active commits",
                plan.name
            );
            assert_eq!(
                profile.total_activity, plan.activity,
                "{}: activity",
                plan.name
            );
            assert_eq!(profile.reeds, plan.reeds, "{}: reeds", plan.name);
            assert_eq!(
                profile.tables_start, plan.tables_start,
                "{}: tables at start",
                plan.name
            );
            assert_eq!(
                profile.class,
                ProjectClass::Taxon(*taxon),
                "{}: taxon",
                plan.name
            );
        }
    }

    #[test]
    fn v0_schema_renders_with_planned_arities() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = plan_project(&mut rng, 5, Taxon::Moderate);
        let project = realize(&mut rng, &plan);
        let versions =
            file_history(&project.repo, &project.ddl_path, WalkStrategy::FirstParent).unwrap();
        let v0 = schevo_ddl::parse_schema(&versions[0].content).unwrap();
        assert_eq!(v0.table_count() as u64, plan.tables_start);
        let total: u64 = plan.start_arities.iter().sum();
        assert_eq!(v0.attribute_count() as u64, total);
        for t in v0.tables() {
            assert!(!t.primary_key().is_empty(), "V0 tables carry PKs");
        }
    }

    #[test]
    fn sup_days_are_respected() {
        let mut rng = StdRng::seed_from_u64(8);
        let plan = plan_project(&mut rng, 2, Taxon::FocusedShotLow);
        let project = realize(&mut rng, &plan);
        let versions =
            file_history(&project.repo, &project.ddl_path, WalkStrategy::FirstParent).unwrap();
        let first = versions.first().unwrap().timestamp;
        let last = versions.last().unwrap().timestamp;
        let days = last.days_since(first);
        assert!(
            (days - plan.sup_days as i64).abs() <= 1,
            "sup {} vs planned {}",
            days,
            plan.sup_days
        );
    }

    #[test]
    fn realization_is_deterministic_given_seed() {
        let plan = {
            let mut rng = StdRng::seed_from_u64(123);
            plan_project(&mut rng, 1, Taxon::Active)
        };
        let a = {
            let mut rng = StdRng::seed_from_u64(9);
            realize(&mut rng, &plan)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(9);
            realize(&mut rng, &plan)
        };
        let ha = file_history(&a.repo, &a.ddl_path, WalkStrategy::FirstParent).unwrap();
        let hb = file_history(&b.repo, &b.ddl_path, WalkStrategy::FirstParent).unwrap();
        assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(x.commit, y.commit);
        }
    }
}
