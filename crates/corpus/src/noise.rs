//! Generators for the project classes the collection funnel must *exclude*
//! (§III-A): rigid single-version projects, repositories whose metadata
//! doesn't match their clone, files without `CREATE TABLE`, empty files —
//! plus helpers producing the excluded-path and multi-file patterns.

use crate::names::{author_name, column_name, project_name, table_name};
use rand::Rng;
use schevo_core::taxa::Taxon;
use schevo_ddl::render::{render_schema_with, RenderOptions};
use schevo_ddl::schema::{Attribute, Schema, Table};
use schevo_ddl::types::DataType;
use schevo_vcs::repo::{FileChange, Repository};
use schevo_vcs::timestamp::Timestamp;

/// Why a materialized repository is expected to fall out of the funnel
/// (or, for `Rigid`, to be set aside as history-less).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NoiseKind {
    /// Exactly one version of the schema file (the 132 rigid projects —
    /// they survive cloning but are excluded from taxon analysis).
    Rigid,
    /// The metadata lists a `.sql` path that the cloned repository does not
    /// contain (the paper's 14 zero-version projects).
    ZeroVersion,
    /// The `.sql` file never contains a `CREATE TABLE` statement.
    NoCreateTable,
    /// The `.sql` file is empty in every version.
    EmptyFile,
}

/// A materialized repository destined for exclusion, with ground truth.
#[derive(Debug)]
pub struct NoiseProject {
    /// Why the funnel should drop or side-line it.
    pub kind: NoiseKind,
    /// The repository.
    pub repo: Repository,
    /// The `.sql` path the metadata advertises.
    pub ddl_path: String,
    /// Corpus index (drives naming/metadata).
    pub index: usize,
}

fn small_schema(rng: &mut impl Rng, tables: u64) -> Schema {
    let mut s = Schema::new();
    for t in 0..tables {
        let mut table = Table::new(table_name(t as usize));
        let arity = rng.gen_range(2..=7u64);
        for c in 0..arity {
            table.push_attribute(Attribute::new(
                column_name(c as usize),
                if c == 0 { DataType::int() } else { DataType::varchar(255) },
            ));
        }
        table.set_primary_key(vec![column_name(0)]);
        s.upsert_table(table);
    }
    s
}

fn base_ts(rng: &mut impl Rng) -> Timestamp {
    Timestamp::from_datetime(
        rng.gen_range(2012..=2017),
        rng.gen_range(1..=12) as u8,
        rng.gen_range(1..=28) as u8,
        9,
        0,
        0,
    )
}

/// A *rigid* project: the schema file is committed once and never again,
/// although the project itself keeps living (the paper stresses these are
/// not abandoned projects).
pub fn rigid_project(rng: &mut impl Rng, index: usize) -> NoiseProject {
    let name = project_name(index);
    let mut repo = Repository::new(name.clone());
    let t0 = base_ts(rng);
    let author = author_name(index, 0);
    repo.commit(
        &[FileChange::write("README.md", format!("# {name}\n"))],
        &author,
        t0,
        "initial import",
    )
    .expect("bootstrap");
    let table_count = rng.gen_range(1..=8);
    let schema = small_schema(rng, table_count);
    let ddl_path = "db/schema.sql".to_string();
    repo.commit(
        &[FileChange::write(&ddl_path, render_schema_with(&schema, &RenderOptions::default()))],
        &author,
        t0 + 86_400,
        "add schema",
    )
    .expect("schema commit");
    // The project stays active on other files for years.
    for k in 0..rng.gen_range(3..12) {
        repo.commit(
            &[FileChange::write(format!("src/mod_{k}.c"), format!("// {k}\n"))],
            &author_name(index, 1),
            t0 + 86_400 * (30 + 60 * k as i64),
            "feature work",
        )
        .expect("feature commit");
    }
    NoiseProject {
        kind: NoiseKind::Rigid,
        repo,
        ddl_path,
        index,
    }
}

/// A repository whose advertised `.sql` path does not exist in the clone —
/// zero extracted versions.
pub fn zero_version_project(rng: &mut impl Rng, index: usize) -> NoiseProject {
    let name = project_name(index);
    let mut repo = Repository::new(name.clone());
    repo.commit(
        &[FileChange::write("README.md", format!("# {name}\n"))],
        &author_name(index, 0),
        base_ts(rng),
        "initial import",
    )
    .expect("bootstrap");
    NoiseProject {
        kind: NoiseKind::ZeroVersion,
        repo,
        ddl_path: "db/schema.sql".to_string(),
        index,
    }
}

/// A `.sql` file with INSERT/SET noise but no `CREATE TABLE` — a seed or
/// migration fragment, not a schema.
pub fn no_create_table_project(rng: &mut impl Rng, index: usize) -> NoiseProject {
    let name = project_name(index);
    let mut repo = Repository::new(name.clone());
    let t0 = base_ts(rng);
    let ddl_path = "sql/seed.sql".to_string();
    for v in 0..rng.gen_range(1..=4) {
        let body = format!(
            "-- seed data rev {v}\nSET NAMES utf8;\nINSERT INTO users VALUES ({v}, 'u{v}');\n"
        );
        repo.commit(
            &[FileChange::write(&ddl_path, body)],
            &author_name(index, v % 2),
            t0 + 86_400 * (v as i64 * 15 + 1),
            "update seeds",
        )
        .expect("seed commit");
    }
    NoiseProject {
        kind: NoiseKind::NoCreateTable,
        repo,
        ddl_path,
        index,
    }
}

/// A `.sql` file that is empty in every committed version.
pub fn empty_file_project(rng: &mut impl Rng, index: usize) -> NoiseProject {
    let name = project_name(index);
    let mut repo = Repository::new(name.clone());
    let t0 = base_ts(rng);
    let ddl_path = "db/schema.sql".to_string();
    repo.commit(
        &[FileChange::write(&ddl_path, "")],
        &author_name(index, 0),
        t0,
        "placeholder schema",
    )
    .expect("placeholder commit");
    // One later commit re-adds whitespace, keeping the file logically empty.
    repo.commit(
        &[FileChange::write(&ddl_path, "\n\n")],
        &author_name(index, 1),
        t0 + 86_400 * 10,
        "whitespace",
    )
    .expect("whitespace commit");
    NoiseProject {
        kind: NoiseKind::EmptyFile,
        repo,
        ddl_path,
        index,
    }
}

/// Attach a second-vendor sibling file to a realized project's repository:
/// `schema-postgres.sql` next to the MySQL DDL, committed at `when` (which
/// must postdate every existing commit to keep timestamps monotone). The
/// funnel must resolve the vendor choice to MySQL (§III-A).
pub fn add_postgres_sibling(repo: &mut Repository, mysql_path: &str, when: Timestamp) {
    let content = repo
        .read_file(mysql_path)
        .expect("repo readable")
        .expect("mysql DDL exists");
    // A postgres-flavoured copy: drop the engine clause, keep tables.
    let pg = content.replace(" ENGINE=InnoDB DEFAULT CHARSET=utf8", "");
    let sibling = mysql_path.replace("mysql", "postgres");
    repo.commit(
        &[FileChange::write(sibling, pg)],
        "vendor-bot",
        when,
        "add postgres variant",
    )
    .expect("sibling commit");
}

/// Taxon counts of the paper's Schema_Evo_2019 data set.
pub const TAXON_COUNTS: [(Taxon, usize); 6] = [
    (Taxon::Frozen, 34),
    (Taxon::AlmostFrozen, 65),
    (Taxon::FocusedShotFrozen, 25),
    (Taxon::Moderate, 29),
    (Taxon::FocusedShotLow, 20),
    (Taxon::Active, 22),
];

/// The paper's funnel cardinalities.
pub mod funnel_counts {
    /// `.sql`-bearing repositories in the SQL-Collection.
    pub const SQL_COLLECTION: usize = 133_029;
    /// The Lib-io data set after joining and post-processing.
    pub const LIB_IO: usize = 365;
    /// Projects whose extraction yielded zero versions.
    pub const ZERO_VERSION: usize = 14;
    /// Projects with empty files or files without `CREATE TABLE`.
    pub const EMPTY_OR_NO_CT: usize = 24;
    /// Cloned repositories that survive to analysis.
    pub const CLONED: usize = 327;
    /// Rigid projects (single schema version).
    pub const RIGID: usize = 132;
    /// The final analyzed population.
    pub const SCHEMA_EVO_2019: usize = 195;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schevo_vcs::history::{file_history, WalkStrategy};

    #[test]
    fn rigid_has_exactly_one_version() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = rigid_project(&mut rng, 1000);
        let h = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        assert_eq!(h.len(), 1);
        assert!(h[0].content.contains("CREATE TABLE"));
    }

    #[test]
    fn zero_version_has_no_file() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = zero_version_project(&mut rng, 1001);
        let h = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn no_create_table_parses_to_empty_schema() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = no_create_table_project(&mut rng, 1002);
        let h = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        assert!(!h.is_empty());
        for v in &h {
            let s = schevo_ddl::parse_schema(&v.content).unwrap();
            assert!(s.is_empty());
        }
    }

    #[test]
    fn empty_file_versions_are_blank() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = empty_file_project(&mut rng, 1003);
        let h = file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|v| v.content.trim().is_empty()));
    }

    #[test]
    fn taxon_counts_sum_to_195() {
        let total: usize = TAXON_COUNTS.iter().map(|(_, n)| n).sum();
        assert_eq!(total, funnel_counts::SCHEMA_EVO_2019);
        assert_eq!(
            funnel_counts::LIB_IO
                - funnel_counts::ZERO_VERSION
                - funnel_counts::EMPTY_OR_NO_CT,
            funnel_counts::CLONED
        );
        assert_eq!(
            funnel_counts::CLONED - funnel_counts::RIGID,
            funnel_counts::SCHEMA_EVO_2019
        );
    }

    #[test]
    fn postgres_sibling_added() {
        use crate::plan::plan_project;
        use crate::realize::realize;
        let mut rng = StdRng::seed_from_u64(6);
        // index ≡ 3 mod 8 gives the vendor-specific MySQL layout.
        let plan = plan_project(&mut rng, 3, Taxon::AlmostFrozen);
        let mut project = realize(&mut rng, &plan);
        assert!(project.ddl_path.contains("mysql"));
        add_postgres_sibling(
            &mut project.repo,
            &project.ddl_path,
            Timestamp::from_date(2030, 1, 1),
        );
        let pg = project
            .repo
            .read_file("db/schema-postgres.sql")
            .unwrap()
            .expect("sibling exists");
        assert!(pg.contains("CREATE TABLE"));
        assert!(!pg.contains("ENGINE=InnoDB"));
    }
}
