//! Deterministic fault injection for realized universes.
//!
//! The paper's funnel exists because real FOSS corpora are full of
//! garbage: truncated dumps, vendor syntax, merge-conflict droppings,
//! histories whose timestamps go backwards. This module reproduces that
//! garbage on demand — seeded, with no wall-clock entropy — so the
//! chaos tests can prove the miner degrades gracefully instead of
//! dying. Each [`FaultClass`] mutates the extracted DDL history of a
//! chosen project and rebuilds its repository linearly, preserving all
//! commit metadata except the corruption itself.

use crate::realize::GeneratedProject;
use crate::universe::{MaterializedBody, Universe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schevo_vcs::history::{file_history, FileVersion, WalkStrategy};
use schevo_vcs::repo::{FileChange, Repository};
use serde::{Deserialize, Serialize};

/// One class of corruption the generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Cut a version's content mid-file (as if a clone or dump died).
    TruncatedBlob,
    /// Remove a closing parenthesis from a `CREATE TABLE` body.
    UnbalancedParens,
    /// Append vendor-specific clauses (T-SQL `GO`, MySQL executable
    /// partition comments, Postgres `REPLICA IDENTITY`).
    UnknownVendorClause,
    /// Interleave non-DDL noise: migration bookkeeping `INSERT`s and
    /// merge-conflict markers.
    NonDdlNoise,
    /// Overwrite one byte of a version with a hostile character
    /// (quote/backquote), typically unterminating a token.
    ByteFlip,
    /// Swap two adjacent commit timestamps so the history goes
    /// backwards in time.
    NonMonotonicTimestamps,
    /// Insert a byte-identical copy of a version next to itself.
    DuplicateVersion,
    /// Blank out a version's content entirely.
    EmptyVersion,
    /// Append a vendor-dump-style blowup of generated `CREATE TABLE`
    /// statements: perfectly valid DDL, but orders of magnitude more
    /// parse/diff work than any organic version — the pathological
    /// history the executor's watchdog deadline exists to flag.
    SlowPath,
}

impl FaultClass {
    /// Every fault class, in catalog order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::TruncatedBlob,
        FaultClass::UnbalancedParens,
        FaultClass::UnknownVendorClause,
        FaultClass::NonDdlNoise,
        FaultClass::ByteFlip,
        FaultClass::NonMonotonicTimestamps,
        FaultClass::DuplicateVersion,
        FaultClass::EmptyVersion,
        FaultClass::SlowPath,
    ];

    /// Short stable label used in reports and ground-truth listings.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::TruncatedBlob => "truncated-blob",
            FaultClass::UnbalancedParens => "unbalanced-parens",
            FaultClass::UnknownVendorClause => "unknown-vendor-clause",
            FaultClass::NonDdlNoise => "non-ddl-noise",
            FaultClass::ByteFlip => "byte-flip",
            FaultClass::NonMonotonicTimestamps => "non-monotonic-timestamps",
            FaultClass::DuplicateVersion => "duplicate-version",
            FaultClass::EmptyVersion => "empty-version",
            FaultClass::SlowPath => "slow-path",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What to inject: a seed (the only source of randomness), the fraction
/// of evolving projects to corrupt, and the classes to cycle through.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the injection RNG. Independent from the universe seed.
    pub seed: u64,
    /// Percentage (0–100) of evolving projects to corrupt.
    pub rate_percent: u32,
    /// Classes assigned round-robin to the selected projects.
    pub classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// A plan cycling through the whole catalog.
    pub fn all(seed: u64, rate_percent: u32) -> Self {
        FaultPlan {
            seed,
            rate_percent,
            classes: FaultClass::ALL.to_vec(),
        }
    }

    /// A plan injecting a single class.
    pub fn single(seed: u64, rate_percent: u32, class: FaultClass) -> Self {
        FaultPlan {
            seed,
            rate_percent,
            classes: vec![class],
        }
    }
}

/// Ground truth for one injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// `owner/repo` of the corrupted project.
    pub project: String,
    /// The class that was injected.
    pub class: FaultClass,
    /// Index (into the extracted version list) of the affected version.
    pub version_index: usize,
}

/// Corrupt a universe in place per `plan`, returning the ground truth of
/// what was injected, sorted by project name.
///
/// Only evolving (`Evo`) projects are eligible: noise projects never
/// reach the mining stage, so corrupting them would test nothing. A
/// selected project whose history cannot express the assigned class
/// (e.g. no parenthesis to unbalance) is skipped and reported in the
/// returned list only if actually corrupted.
pub fn inject(universe: &mut Universe, plan: &FaultPlan) -> Vec<InjectedFault> {
    let mut names: Vec<String> = universe
        .materialized
        .iter()
        .filter(|(_, r)| matches!(r.body, MaterializedBody::Evo(_)))
        .map(|(n, _)| n.clone())
        .collect();
    names.sort();
    if names.is_empty() || plan.rate_percent == 0 || plan.classes.is_empty() {
        return Vec::new();
    }
    let count = ((names.len() * plan.rate_percent as usize) / 100).max(1);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    // Fisher–Yates over the sorted name list, then keep the first `count`
    // names re-sorted so class assignment is order-stable.
    let mut idx: Vec<usize> = (0..names.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let mut chosen: Vec<String> = idx[..count.min(idx.len())]
        .iter()
        .map(|&i| names[i].clone())
        .collect();
    chosen.sort();

    let mut faults = Vec::new();
    for (k, name) in chosen.iter().enumerate() {
        let class = plan.classes[k % plan.classes.len()];
        let Some(repo) = universe.materialized.get_mut(name) else {
            continue;
        };
        let MaterializedBody::Evo(project) = &mut repo.body else {
            continue;
        };
        if let Some(version_index) = corrupt_project(project, class, &mut rng) {
            faults.push(InjectedFault {
                project: name.clone(),
                class,
                version_index,
            });
        }
    }
    faults
}

/// Extract a project's DDL history, corrupt it, and rebuild the
/// repository as a linear chain with the same commit metadata. Returns
/// the affected version index, or `None` if the class was inapplicable.
fn corrupt_project(project: &mut GeneratedProject, class: FaultClass, rng: &mut StdRng) -> Option<usize> {
    let mut versions =
        file_history(&project.repo, &project.ddl_path, WalkStrategy::FirstParent).ok()?;
    let idx = corrupt_versions(&mut versions, class, rng)?;
    let mut repo = Repository::new(project.repo.name.clone());
    for v in &versions {
        let _ = repo.commit(
            &[FileChange::write(&project.ddl_path, v.content.clone())],
            &v.author,
            v.timestamp,
            &v.message,
        );
    }
    project.repo = repo;
    Some(idx)
}

/// Corrupt every version of `project`'s DDL history **except the
/// first** and rebuild the repository as a linear chain with the same
/// commit metadata. The intact first version keeps the history inside
/// the collection funnel (it still has a parseable `CREATE TABLE`); the
/// rest each get an unterminated quote at byte 0, so the whole version
/// is one hostile token — the strict parse fails, statement-level
/// salvage recovers nothing, and graceful mining must quarantine the
/// history. The append-aware chaos tests rely on that. Returns the
/// number of versions corrupted.
pub fn poison_history(project: &mut GeneratedProject) -> usize {
    let Ok(versions) = file_history(&project.repo, &project.ddl_path, WalkStrategy::FirstParent)
    else {
        return 0;
    };
    let mut corrupted = 0usize;
    let mut rebuilt = Vec::with_capacity(versions.len());
    for (i, mut v) in versions.into_iter().enumerate() {
        if i > 0 {
            v.content.insert(0, '\'');
            corrupted += 1;
        }
        rebuilt.push(v);
    }
    let mut repo = Repository::new(project.repo.name.clone());
    for v in &rebuilt {
        let _ = repo.commit(
            &[FileChange::write(&project.ddl_path, v.content.clone())],
            &v.author,
            v.timestamp,
            &v.message,
        );
    }
    project.repo = repo;
    corrupted
}

/// Apply one corruption class to an extracted version list in place.
/// Returns the index of the affected version, or `None` when the list
/// cannot express the class (too short, nothing to unbalance, ...).
///
/// This is also usable directly on candidate-level version lists (the
/// funnel's extracted histories), which matters for `DuplicateVersion`:
/// at the repository level the history walk deduplicates identical
/// consecutive blobs, so that class only bites when injected after
/// extraction.
pub fn corrupt_versions(
    versions: &mut Vec<FileVersion>,
    class: FaultClass,
    rng: &mut StdRng,
) -> Option<usize> {
    if versions.is_empty() {
        return None;
    }
    match class {
        FaultClass::TruncatedBlob => {
            let i = pick(rng, versions, |v| v.content.len() >= 40)?;
            let content = &mut versions[i].content;
            let mut cut = content.len() * 3 / 5;
            while cut > 0 && !content.is_char_boundary(cut) {
                cut -= 1;
            }
            content.truncate(cut);
            Some(i)
        }
        FaultClass::UnbalancedParens => {
            let i = pick(rng, versions, |v| v.content.contains(')'))?;
            let content = &mut versions[i].content;
            let at = content.rfind(')')?;
            content.remove(at);
            Some(i)
        }
        FaultClass::UnknownVendorClause => {
            let i = pick(rng, versions, |_| true)?;
            versions[i].content.push_str(
                "\nALTER TABLE ONLY audit_log REPLICA IDENTITY FULL;\n\
                 GO\n\
                 EXEC sp_addextendedproperty @name = N'MS_Description', @value = N'legacy';\n\
                 /*!50100 PARTITION BY RANGE (id) (PARTITION p0 VALUES LESS THAN (6)) */;\n",
            );
            Some(i)
        }
        FaultClass::NonDdlNoise => {
            let i = pick(rng, versions, |_| true)?;
            let content = &mut versions[i].content;
            let noise = "INSERT INTO schema_migrations (version) VALUES ('20190301120000');\n\
                         <<<<<<< HEAD\n-- local tweak\n=======\n-- upstream tweak\n\
                         >>>>>>> upstream/master\n";
            // Interleave after the first statement when possible.
            let at = content.find(';').map(|p| p + 1).unwrap_or(0);
            content.insert_str(at, &format!("\n{noise}"));
            Some(i)
        }
        FaultClass::ByteFlip => {
            let i = pick(rng, versions, |v| !v.content.is_empty())?;
            let mut bytes = versions[i].content.clone().into_bytes();
            // Hostile replacement: a quote character opens a string (or
            // backquoted identifier) that nothing terminates. Flipping
            // after the last existing quote guarantees the token runs to
            // EOF, so the fault is always *detectable* (lex error), which
            // the chaos tests rely on.
            let lo = bytes
                .iter()
                .rposition(|&b| b == b'\'' || b == b'`' || b == b'"')
                .map(|p| p + 1)
                .unwrap_or(0);
            let pos = if lo >= bytes.len() {
                bytes.len() - 1
            } else {
                rng.gen_range(lo..bytes.len())
            };
            let hostile = [b'\'', b'`'];
            bytes[pos] = hostile[rng.gen_range(0..hostile.len())];
            versions[i].content = String::from_utf8_lossy(&bytes).into_owned();
            Some(i)
        }
        FaultClass::NonMonotonicTimestamps => {
            if versions.len() < 2 {
                return None;
            }
            let eligible: Vec<usize> = (0..versions.len() - 1)
                .filter(|&i| versions[i].timestamp != versions[i + 1].timestamp)
                .collect();
            if eligible.is_empty() {
                return None;
            }
            let i = eligible[rng.gen_range(0..eligible.len())];
            let t = versions[i].timestamp;
            versions[i].timestamp = versions[i + 1].timestamp;
            versions[i + 1].timestamp = t;
            Some(i)
        }
        FaultClass::DuplicateVersion => {
            let i = rng.gen_range(0..versions.len());
            let dup = versions[i].clone();
            versions.insert(i + 1, dup);
            Some(i)
        }
        FaultClass::EmptyVersion => {
            let i = rng.gen_range(0..versions.len());
            versions[i].content = "\n\n".to_string();
            Some(i)
        }
        FaultClass::SlowPath => {
            use std::fmt::Write as _;
            let i = pick(rng, versions, |_| true)?;
            let tables = 300 + rng.gen_range(0..100);
            let mut blob = String::with_capacity(tables * 320);
            for t in 0..tables {
                let _ = write!(blob, "CREATE TABLE bulk_dump_{t:04} (");
                for c in 0..24 {
                    let _ = write!(blob, "c{c} INT, ");
                }
                blob.push_str("PRIMARY KEY (c0));\n");
            }
            let content = &mut versions[i].content;
            content.push('\n');
            content.push_str(&blob);
            Some(i)
        }
    }
}

/// Pick a uniformly random version index satisfying `eligible`.
fn pick<F: Fn(&FileVersion) -> bool>(
    rng: &mut StdRng,
    versions: &[FileVersion],
    eligible: F,
) -> Option<usize> {
    let candidates: Vec<usize> = (0..versions.len())
        .filter(|&i| eligible(&versions[i]))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.gen_range(0..candidates.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{generate, UniverseConfig};

    fn extracted(u: &Universe, name: &str) -> Vec<FileVersion> {
        let repo = &u.materialized[name];
        let MaterializedBody::Evo(p) = &repo.body else {
            panic!("not an evo project")
        };
        file_history(&p.repo, &p.ddl_path, WalkStrategy::FirstParent).unwrap()
    }

    #[test]
    fn injection_is_deterministic() {
        let mut a = generate(UniverseConfig::small(2019, 20));
        let mut b = generate(UniverseConfig::small(2019, 20));
        let fa = inject(&mut a, &FaultPlan::all(7, 20));
        let fb = inject(&mut b, &FaultPlan::all(7, 20));
        assert_eq!(fa, fb);
        assert!(!fa.is_empty());
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(extracted(&a, &x.project), extracted(&b, &y.project));
        }
    }

    #[test]
    fn injection_changes_selected_histories() {
        let clean = generate(UniverseConfig::small(2019, 20));
        let mut dirty = generate(UniverseConfig::small(2019, 20));
        let faults = inject(&mut dirty, &FaultPlan::all(7, 20));
        assert!(!faults.is_empty());
        let mut visible = 0usize;
        for f in &faults {
            if extracted(&clean, &f.project) != extracted(&dirty, &f.project) {
                visible += 1;
            } else {
                // Only DuplicateVersion may be invisible at repo level:
                // the history walk deduplicates identical consecutive
                // blobs.
                assert_eq!(f.class, FaultClass::DuplicateVersion, "{}", f.project);
            }
        }
        assert!(visible > 0);
    }

    #[test]
    fn untouched_projects_are_bit_identical() {
        let clean = generate(UniverseConfig::small(2019, 20));
        let mut dirty = generate(UniverseConfig::small(2019, 20));
        let faults = inject(&mut dirty, &FaultPlan::all(7, 20));
        let hit: std::collections::HashSet<&str> =
            faults.iter().map(|f| f.project.as_str()).collect();
        for (name, repo) in &clean.materialized {
            if hit.contains(name.as_str()) {
                continue;
            }
            if let MaterializedBody::Evo(_) = repo.body {
                assert_eq!(extracted(&clean, name), extracted(&dirty, name), "{name}");
            }
        }
    }

    #[test]
    fn every_class_applies_to_a_plain_history() {
        let mut rng = StdRng::seed_from_u64(11);
        for class in FaultClass::ALL {
            let mut versions: Vec<FileVersion> = (0..4)
                .map(|i| FileVersion {
                    commit: schevo_vcs::sha1::Digest([i as u8; 20]),
                    timestamp: schevo_vcs::timestamp::Timestamp::from_date(2018, 1 + i as u8, 1),
                    author: "dev".into(),
                    message: format!("v{i}"),
                    content: format!(
                        "CREATE TABLE t{i} (id INT NOT NULL, name VARCHAR(255), PRIMARY KEY (id));"
                    ),
                })
                .collect();
            let before = versions.clone();
            let idx = corrupt_versions(&mut versions, class, &mut rng);
            assert!(idx.is_some(), "{class} did not apply");
            assert_ne!(before, versions, "{class} was a no-op");
        }
    }

    #[test]
    fn timestamps_go_backwards_after_injection() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut versions: Vec<FileVersion> = (0..5)
            .map(|i| FileVersion {
                commit: schevo_vcs::sha1::Digest([i as u8; 20]),
                timestamp: schevo_vcs::timestamp::Timestamp::from_date(2018, 1 + i as u8, 1),
                author: "dev".into(),
                message: format!("v{i}"),
                content: format!("CREATE TABLE t (c{i} INT);"),
            })
            .collect();
        corrupt_versions(&mut versions, FaultClass::NonMonotonicTimestamps, &mut rng).unwrap();
        assert!(
            versions.windows(2).any(|w| w[1].timestamp < w[0].timestamp),
            "no inversion produced"
        );
    }
}
