//! Seeded samplers calibrated to the paper's published statistics.
//!
//! The key tool is [`QuartileDist`]: a piecewise-linear inverse CDF through
//! a five-number summary `(min, q1, q2, q3, max)`. Sampling it reproduces
//! the published quartiles of Fig. 12 by construction; when only
//! `(min, median, max, avg)` are published (Fig. 4), [`QuartileDist::from_fig4`]
//! solves for interior quartiles that match the mean.

use rand::Rng;

/// A piecewise-linear inverse CDF through a five-number summary, with a
/// power-concentrated top quartile for heavy tails.
///
/// The first three inter-quartile segments interpolate linearly; the top
/// segment maps `t ↦ q3 + (max − q3)·t^γ`, so probability mass concentrates
/// near q3 when `γ > 1` — exactly the behaviour of the paper's power-law-like
/// activity data, where the published *average* sits far below the
/// quartile-implied uniform mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartileDist {
    /// The knots at cumulative probabilities 0, .25, .5, .75, 1.
    pub knots: [f64; 5],
    /// Tail concentration exponent (1.0 = uniform top quartile).
    pub tail_gamma: f64,
}

impl QuartileDist {
    /// Build from an explicit five-number summary with a mildly
    /// concentrated tail (γ = 2).
    ///
    /// # Panics
    ///
    /// Panics if the knots are not nondecreasing.
    pub fn new(min: f64, q1: f64, q2: f64, q3: f64, max: f64) -> Self {
        let knots = [min, q1, q2, q3, max];
        assert!(
            knots.windows(2).all(|w| w[0] <= w[1]),
            "quartile knots must be nondecreasing: {knots:?}"
        );
        QuartileDist {
            knots,
            tail_gamma: 2.0,
        }
    }

    /// Build from a five-number summary *and* the published mean, solving
    /// the tail exponent so the distribution reproduces that mean.
    pub fn with_mean(min: f64, q1: f64, q2: f64, q3: f64, max: f64, avg: f64) -> Self {
        let mut d = QuartileDist::new(min, q1, q2, q3, max);
        d.tail_gamma = solve_gamma(&d.knots, avg);
        d
    }

    /// Build from the Fig. 4 style `(min, median, max, avg)` summary:
    /// interior quartiles are placed heuristically (q1 midway toward the
    /// median, q3 a short step toward the max — empirical FOSS measures are
    /// right-skewed) and the tail exponent absorbs the published mean.
    pub fn from_fig4(min: f64, median: f64, max: f64, avg: f64) -> Self {
        let q1 = min + 0.45 * (median - min);
        let q3 = median + 0.15 * (max - median);
        QuartileDist::with_mean(min, q1, median, q3, max, avg)
    }

    /// Evaluate the inverse CDF at `u ∈ [0, 1]`.
    pub fn inverse_cdf(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let seg = ((u * 4.0).floor() as usize).min(3);
        let t = u * 4.0 - seg as f64;
        if seg == 3 {
            self.knots[3] + (self.knots[4] - self.knots[3]) * t.powf(self.tail_gamma)
        } else {
            self.knots[seg] + t * (self.knots[seg + 1] - self.knots[seg])
        }
    }

    /// Sample a value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.inverse_cdf(rng.gen::<f64>())
    }

    /// Sample a rounded nonnegative integer.
    pub fn sample_u64<R: Rng>(&self, rng: &mut R) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }

    /// The distribution's exact mean.
    pub fn mean(&self) -> f64 {
        lower_mass(&self.knots)
            + 0.25 * (self.knots[3] + (self.knots[4] - self.knots[3]) / (self.tail_gamma + 1.0))
    }
}

/// Mean contribution of the three uniform lower segments.
fn lower_mass(knots: &[f64; 5]) -> f64 {
    (knots[0] + 2.0 * knots[1] + 2.0 * knots[2] + knots[3]) / 8.0
}

/// Solve the tail exponent so the distribution's mean equals `avg`:
/// `0.25·(max − q3)/(γ + 1) = avg − lower_mass − 0.25·q3`.
/// Clamped to `[0.2, 200]`; degenerate targets fall back to γ = 2.
fn solve_gamma(knots: &[f64; 5], avg: f64) -> f64 {
    let tail_budget = avg - lower_mass(knots) - 0.25 * knots[3];
    let span = knots[4] - knots[3];
    if span <= 0.0 || tail_budget <= 0.0 {
        return 2.0;
    }
    (0.25 * span / tail_budget - 1.0).clamp(0.2, 200.0)
}

/// Sample a pair comonotonically: one uniform draw drives both marginals, so
/// the pair is strongly rank-correlated — e.g. projects with many active
/// commits also have high activity, as in the paper's Fig. 10 cloud.
/// `jitter` (0..1) blends in an independent second draw to soften the
/// correlation.
pub fn sample_pair_comonotone<R: Rng>(
    rng: &mut R,
    a: &QuartileDist,
    b: &QuartileDist,
    jitter: f64,
) -> (f64, f64) {
    let u = rng.gen::<f64>();
    let v = rng.gen::<f64>();
    let ub = (u * (1.0 - jitter) + v * jitter).clamp(0.0, 1.0);
    (a.inverse_cdf(u), b.inverse_cdf(ub))
}

/// Pick a bucket index from cumulative percentage weights (0–100 scale).
/// E.g. `[68.0, 79.0, 100.0]` picks 0 with p=.68, 1 with p=.11, 2 with p=.21.
pub fn pick_bucket<R: Rng>(rng: &mut R, cumulative_percent: &[f64]) -> usize {
    let x = rng.gen::<f64>() * 100.0;
    for (i, &c) in cumulative_percent.iter().enumerate() {
        if x < c {
            return i;
        }
    }
    cumulative_percent.len().saturating_sub(1)
}

/// Uniform integer in `[lo, hi]` (inclusive); tolerates `lo == hi`.
pub fn uniform_u64<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inverse_cdf_hits_knots() {
        let d = QuartileDist::new(1.0, 2.0, 5.0, 9.0, 100.0);
        assert_eq!(d.inverse_cdf(0.0), 1.0);
        assert_eq!(d.inverse_cdf(0.25), 2.0);
        assert_eq!(d.inverse_cdf(0.5), 5.0);
        assert_eq!(d.inverse_cdf(0.75), 9.0);
        assert_eq!(d.inverse_cdf(1.0), 100.0);
        // Interpolation between knots.
        assert_eq!(d.inverse_cdf(0.125), 1.5);
    }

    #[test]
    fn sampled_quartiles_match_knots() {
        let d = QuartileDist::new(1.0, 15.0, 23.0, 31.5, 383.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
        assert!((q(0.25) - 15.0).abs() < 1.0);
        assert!((q(0.5) - 23.0).abs() < 1.0);
        // The top segment is steep (31.5 → 383); allow sampling noise.
        assert!((q(0.75) - 31.5).abs() < 8.0, "q3 = {}", q(0.75));
    }

    #[test]
    fn with_mean_reproduces_published_average() {
        // FS&Frozen activity: quartiles from Fig. 12, average from Fig. 4.
        let d = QuartileDist::with_mean(11.0, 15.5, 23.0, 31.5, 383.0, 45.64);
        assert!((d.mean() - 45.64).abs() < 1e-9, "mean = {}", d.mean());
        let mut rng = StdRng::seed_from_u64(1);
        let emp: f64 =
            (0..100_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 100_000.0;
        assert!((emp - 45.64).abs() < 2.0, "empirical mean = {emp}");
    }

    #[test]
    fn from_fig4_reproduces_mean() {
        // Active taxon SUP: min 1, med 31, max 100, avg 35.95.
        let d = QuartileDist::from_fig4(1.0, 31.0, 100.0, 35.95);
        assert!((d.mean() - 35.95).abs() < 1.0, "mean = {}", d.mean());
        // Heavily skewed: FS&Frozen activity min 11, med 23, max 383, avg 45.64.
        let d = QuartileDist::from_fig4(11.0, 23.0, 383.0, 45.64);
        assert!((d.mean() - 45.64).abs() < 3.0, "mean = {}", d.mean());
    }

    #[test]
    fn from_fig4_extreme_avg_clamps() {
        // avg close to min: gamma clamps rather than producing invalid knots.
        let d = QuartileDist::from_fig4(0.0, 1.0, 1000.0, 2.0);
        assert!(d.knots.windows(2).all(|w| w[0] <= w[1]));
        assert!(d.tail_gamma <= 200.0);
        // Quartile knots are still honored exactly.
        assert_eq!(d.inverse_cdf(0.5), 1.0);
    }

    #[test]
    fn comonotone_pairs_are_rank_correlated() {
        let a = QuartileDist::new(1.0, 2.0, 3.0, 5.0, 10.0);
        let b = QuartileDist::new(10.0, 20.0, 30.0, 50.0, 100.0);
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(f64, f64)> = (0..2000)
            .map(|_| sample_pair_comonotone(&mut rng, &a, &b, 0.2))
            .collect();
        // Count concordant pairs on a sample of index pairs.
        let mut concordant = 0;
        let mut total = 0;
        for i in (0..pairs.len()).step_by(7) {
            for j in (i + 1..pairs.len()).step_by(13) {
                let (x1, y1) = pairs[i];
                let (x2, y2) = pairs[j];
                if (x1 - x2).abs() < 1e-12 || (y1 - y2).abs() < 1e-12 {
                    continue;
                }
                total += 1;
                if ((x1 < x2) && (y1 < y2)) || ((x1 > x2) && (y1 > y2)) {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total as f64;
        assert!(tau > 0.75, "expected strong concordance, got {tau}");
    }

    #[test]
    fn pick_bucket_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[pick_bucket(&mut rng, &[68.0, 79.0, 100.0])] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.68).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.11).abs() < 0.02);
        assert!((counts[2] as f64 / 10_000.0 - 0.21).abs() < 0.02);
    }

    #[test]
    fn uniform_handles_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(uniform_u64(&mut rng, 5, 5), 5);
        assert_eq!(uniform_u64(&mut rng, 7, 3), 7);
        let x = uniform_u64(&mut rng, 1, 10);
        assert!((1..=10).contains(&x));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_knots_panic() {
        QuartileDist::new(5.0, 4.0, 6.0, 7.0, 8.0);
    }
}
