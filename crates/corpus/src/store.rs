//! The sharded on-disk corpus store: pack-file shards plus a manifest.
//!
//! The in-memory [`crate::universe::Universe`] caps corpus size by RAM;
//! this store lifts that cap. The streaming generator
//! ([`crate::universe::generate_records`]) writes each record straight
//! to disk and drops it, and the reader streams records back one at a
//! time, so neither direction ever holds the corpus resident.
//!
//! ## Layout
//!
//! ```text
//! <dir>/MANIFEST.json          store version, config, counts, corpus digest
//! <dir>/shard-000.pack         records whose project-name hash ≡ 0 (mod N)
//! <dir>/shard-001.pack         ...
//! ```
//!
//! Each shard starts with the 8-byte magic `SCHEVOST` followed by frames:
//!
//! ```text
//! u32 payload_len (LE) | 20-byte SHA-1(payload) | payload
//! ```
//!
//! — the same length-prefix + checksum discipline as the WAL mining
//! journal. The payload itself is read back with the bounds-checked
//! [`schevo_vcs::pack::Reader`] primitives:
//!
//! ```text
//! u64 seq                      global generation sequence number
//! u8  kind                     0 = lightweight, 1 = materialized
//! u16-str name                 `owner/repo`
//! u16 path_count, u16-str ×    advertised SQL paths
//! u8  has_libio                0 | 1
//!   u8 is_fork, u32 stars, u32 contributors
//! materialized only:
//!   u64 pup_months, u64 total_commits
//!   u32 pack_len, SVPK1 pack   the full repository
//! ```
//!
//! Records are assigned to shards by SHA-1 of the project name, and the
//! reader merges shards back into global `seq` order, so a streamed read
//! reproduces the exact in-memory SQL-Collection order — which is what
//! makes the sharded backend byte-identical to the in-memory one.
//!
//! ## Corruption
//!
//! Reads fail closed, per shard: a frame whose length or checksum does
//! not verify kills that shard's cursor (a torn frame leaves no reliable
//! record boundary), while a frame that verifies but does not decode
//! (impossible without a store bug, but handled anyway) skips just that
//! record. Either way the reader yields a [`StoreEvent::Corrupt`] event
//! — callers quarantine it and continue — and never panics.

use crate::libio::LibioRecord;
use crate::universe::{generate_records, CorpusDigester, CorpusRecord, UniverseConfig};
use schevo_core::failpoint;
use schevo_vcs::pack::{read_pack, write_pack, PackError, Reader};
use schevo_vcs::repo::Repository;
use schevo_vcs::sha1::sha1;
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Current store format version; readers reject anything else.
pub const STORE_VERSION: u64 = 1;

/// Shard-file magic.
pub(crate) const SHARD_MAGIC: &[u8; 8] = b"SCHEVOST";

/// Upper bound on one record's payload (the largest paper-scale record
/// is ~3 orders of magnitude smaller; anything bigger is corruption).
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 26;

/// Frame header size: u32 length + 20-byte SHA-1.
pub(crate) const FRAME_LEN: usize = 24;

/// Errors from store creation, writing, or opening.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The manifest is missing, unreadable, or incompatible.
    Manifest(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Manifest(m) => write!(f, "store manifest: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Store I/O counters, reported by both the writer and the reader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIo {
    /// Records written to shards.
    pub records_written: u64,
    /// Payload + frame bytes written.
    pub bytes_written: u64,
    /// Records read back (decoded, corrupt ones excluded).
    pub records_read: u64,
    /// Payload + frame bytes read.
    pub bytes_read: u64,
}

impl StoreIo {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &StoreIo) {
        self.records_written += other.records_written;
        self.bytes_written += other.bytes_written;
        self.records_read += other.records_read;
        self.bytes_read += other.bytes_read;
    }
}

/// The store's self-description, serialized as `MANIFEST.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Format version ([`STORE_VERSION`]).
    pub store_version: u64,
    /// Generator seed.
    pub seed: u64,
    /// Scale divisor of the generation config.
    pub scale_divisor: u64,
    /// Scale multiplier of the generation config.
    pub scale_multiplier: u64,
    /// Number of shard files.
    pub shards: u64,
    /// Total records across all shards.
    pub records: u64,
    /// Materialized (repository-carrying) records among them.
    pub materialized: u64,
    /// The corpus content digest — identical to what
    /// [`crate::universe::corpus_digest`] reports for the same config.
    pub corpus_digest: String,
    /// Records appended after the initial generation pass (absent or
    /// zero for a pristine generated store). Older manifests omit the
    /// field entirely; they deserialize as `None`.
    pub appended: Option<u64>,
    /// Cumulative records lost to corruption and compacted away by
    /// `schevo scrub` (absent or zero for an undamaged store). Like
    /// `appended`, older manifests deserialize as `None`.
    pub lost: Option<u64>,
}

impl StoreManifest {
    /// The generation config this store was written from.
    pub fn config(&self) -> UniverseConfig {
        UniverseConfig {
            seed: self.seed,
            scale_divisor: self.scale_divisor as usize,
            scale_multiplier: self.scale_multiplier as usize,
        }
    }

    /// Records appended after initial generation (zero for pristine).
    pub fn appended_records(&self) -> u64 {
        self.appended.unwrap_or(0)
    }

    /// Records lost to corruption and scrubbed away (zero for pristine).
    pub fn lost_records(&self) -> u64 {
        self.lost.unwrap_or(0)
    }

    /// Whether this store can serve a request for `config` × `shards`.
    /// An appended store never matches: its contents are a superset of
    /// what `config` generates, so callers that want exactly the
    /// generated corpus must regenerate (or opt into the store as-is).
    /// A scrubbed store that lost records never matches either — its
    /// clean subset mines deterministically but is not the corpus
    /// `config` generates, so silent reuse would change results.
    pub fn matches(&self, config: &UniverseConfig, shards: usize) -> bool {
        self.store_version == STORE_VERSION
            && self.config() == *config
            && self.shards == shards as u64
            && self.appended_records() == 0
            && self.lost_records() == 0
    }
}

pub(crate) fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.pack"))
}

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.json")
}

/// Shard assignment: SHA-1 of the project name, folded little-endian.
fn shard_of(name: &str, shards: usize) -> usize {
    let d = sha1(name.as_bytes());
    let mut h = [0u8; 8];
    h.copy_from_slice(&d.0[..8]);
    (u64::from_le_bytes(h) % shards.max(1) as u64) as usize
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Encode one record's payload (everything after the frame header).
fn encode_record(seq: u64, record: &CorpusRecord) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&seq.to_le_bytes());
    p.push(if record.body.is_some() { 1 } else { 0 });
    put_str(&mut p, &record.name);
    put_u16(&mut p, record.sql_paths.len() as u16);
    for path in &record.sql_paths {
        put_str(&mut p, path);
    }
    match &record.libio {
        Some(meta) => {
            p.push(1);
            p.push(if meta.is_fork { 1 } else { 0 });
            put_u32(&mut p, meta.stars);
            put_u32(&mut p, meta.contributors);
        }
        None => p.push(0),
    }
    if let Some(body) = &record.body {
        let (pup, commits) = body.reported_meta();
        p.extend_from_slice(&pup.to_le_bytes());
        p.extend_from_slice(&commits.to_le_bytes());
        let pack = write_pack(body.repo());
        put_u32(&mut p, pack.len() as u32);
        p.extend_from_slice(&pack);
    }
    p
}

/// One record streamed back from the store, decoded and verified.
#[derive(Debug)]
pub struct DecodedRecord {
    /// Global generation sequence number (SQL-Collection order).
    pub seq: u64,
    /// `owner/repo`.
    pub name: String,
    /// Advertised SQL paths.
    pub sql_paths: Vec<String>,
    /// Libraries.io metadata, absent for unmonitored repositories.
    pub libio: Option<LibioRecord>,
    /// `(repository, pup_months, total_commits)` for materialized records.
    pub materialized: Option<(Repository, u64, u64)>,
}

/// Decode one verified payload.
pub(crate) fn decode_record(payload: &[u8]) -> Result<DecodedRecord, PackError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let kind = r.u8()?;
    let name = r.string()?;
    let path_count = r.u16()? as usize;
    let mut sql_paths = Vec::with_capacity(path_count.min(64));
    for _ in 0..path_count {
        sql_paths.push(r.string()?);
    }
    let libio = match r.u8()? {
        0 => None,
        _ => {
            let is_fork = r.u8()? != 0;
            let stars = r.u32()?;
            let contributors = r.u32()?;
            Some(LibioRecord::new(name.clone(), is_fork, stars, contributors))
        }
    };
    let materialized = match kind {
        0 => None,
        _ => {
            let pup = r.u64()?;
            let commits = r.u64()?;
            let pack_len = r.u32()? as usize;
            let repo = read_pack(r.take(pack_len)?)?;
            Some((repo, pup, commits))
        }
    };
    Ok(DecodedRecord {
        seq,
        name,
        sql_paths,
        libio,
        materialized,
    })
}

/// Streaming writer: frames each record into its shard as it arrives,
/// accumulating only the per-repository digest parts (a few dozen bytes
/// per materialized repo) — never the records themselves.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    config: UniverseConfig,
    shards: Vec<BufWriter<File>>,
    seq: u64,
    materialized: u64,
    io: StoreIo,
    digester: CorpusDigester,
    /// `(records, appended)` of the manifest this writer extends, or
    /// `None` for a freshly created store.
    append_base: Option<(u64, u64)>,
    /// Cumulative lost-record count carried over from the manifest this
    /// writer extends (zero for a freshly created store).
    lost_base: u64,
}

impl StoreWriter {
    /// Create (or overwrite) a store at `dir` with `shards` shard files.
    pub fn create(
        dir: &Path,
        config: UniverseConfig,
        shards: usize,
    ) -> Result<StoreWriter, StoreError> {
        let shards = shards.clamp(1, 256);
        fs::create_dir_all(dir)?;
        // A stale manifest must not describe the half-written new store.
        let _ = fs::remove_file(manifest_path(dir));
        let mut files = Vec::with_capacity(shards);
        for i in 0..shards {
            // Re-create from scratch on each retry: a fresh shard file
            // holds at most the magic, so replays cannot tear it.
            let mut w = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
                failpoint::check("store.create")?;
                let mut w = BufWriter::new(File::create(shard_path(dir, i))?);
                w.write_all(SHARD_MAGIC)?;
                Ok(w)
            })?;
            w.flush()?;
            files.push(w);
        }
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            config,
            shards: files,
            seq: 0,
            materialized: 0,
            io: StoreIo {
                bytes_written: (SHARD_MAGIC.len() * shards) as u64,
                ..StoreIo::default()
            },
            digester: CorpusDigester::new(),
            append_base: None,
            lost_base: 0,
        })
    }

    /// Reopen the store at `dir` for appending. The existing records are
    /// streamed once to re-prime the corpus digester (the digest is
    /// order-independent, so appended records fold in cleanly); any
    /// corruption or short read fails closed — appending to a store we
    /// cannot fully account for would silently launder the damage into a
    /// fresh manifest.
    pub fn append_to(dir: &Path) -> Result<StoreWriter, StoreError> {
        let store = ShardStore::open(dir)?;
        let manifest = store.manifest().clone();
        let mut digester = CorpusDigester::new();
        let mut seen = 0u64;
        let mut stream = store.stream();
        while let Some(event) = stream.next_event() {
            match event {
                StoreEvent::Record(r) => {
                    if let Some((repo, _, _)) = &r.materialized {
                        digester.add(&r.name, &r.sql_paths, repo);
                    }
                    seen += 1;
                }
                StoreEvent::Corrupt { shard, offset, detail } => {
                    return Err(StoreError::Manifest(format!(
                        "cannot append to corrupt store (shard {shard} @ {offset}: {detail})"
                    )));
                }
            }
        }
        if seen != manifest.records {
            return Err(StoreError::Manifest(format!(
                "cannot append: store holds {seen} records, manifest claims {}",
                manifest.records
            )));
        }
        let shard_count = manifest.shards as usize;
        let mut files = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let f = fs::OpenOptions::new()
                .append(true)
                .open(shard_path(dir, i))?;
            files.push(BufWriter::new(f));
        }
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            config: manifest.config(),
            shards: files,
            seq: manifest.records,
            materialized: manifest.materialized,
            io: StoreIo::default(),
            digester,
            append_base: Some((manifest.records, manifest.appended_records())),
            lost_base: manifest.lost_records(),
        })
    }

    /// Append one record to its shard.
    pub fn write(&mut self, record: &CorpusRecord) -> Result<(), StoreError> {
        let payload = encode_record(self.seq, record);
        let shard = shard_of(&record.name, self.shards.len());
        let digest = sha1(&payload);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&digest.0);
        frame.extend_from_slice(&payload);
        // The failpoint fires *before* any bytes reach the buffered
        // writer, so an absorbed transient fault cannot duplicate the
        // frame. A real mid-write error is not retried: `write_all`
        // through a `BufWriter` does not report how much it consumed.
        failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.write")
        })?;
        self.shards[shard].write_all(&frame)?;
        self.seq += 1;
        self.io.records_written += 1;
        self.io.bytes_written += frame.len() as u64;
        if let Some(body) = &record.body {
            self.materialized += 1;
            self.digester.add(&record.name, &record.sql_paths, body.repo());
        }
        Ok(())
    }

    /// Flush and sync every shard, then publish `MANIFEST.json`
    /// (temp-file + rename, so a crash never leaves a torn manifest).
    pub fn finalize(mut self) -> Result<(StoreManifest, StoreIo), StoreError> {
        for w in &mut self.shards {
            // `BufWriter::flush` drops only the bytes it actually
            // wrote, so retrying it after a transient error resumes
            // from the exact unwritten remainder — no duplication.
            failpoint::retry_io(failpoint::RetryPolicy::default(), || {
                w.flush()?;
                failpoint::check("store.fsync")?;
                w.get_ref().sync_data()
            })?;
        }
        let manifest = StoreManifest {
            store_version: STORE_VERSION,
            seed: self.config.seed,
            scale_divisor: self.config.scale_divisor as u64,
            scale_multiplier: self.config.scale_multiplier as u64,
            shards: self.shards.len() as u64,
            records: self.seq,
            materialized: self.materialized,
            corpus_digest: self.digester.finalize(&self.config),
            appended: self
                .append_base
                .map(|(base_records, base_appended)| base_appended + (self.seq - base_records)),
            lost: (self.lost_base > 0).then_some(self.lost_base),
        };
        let json = match serde_json::to_string_pretty(&manifest) {
            Ok(mut s) => {
                s.push('\n');
                s
            }
            Err(e) => return Err(StoreError::Manifest(format!("encode: {e}"))),
        };
        let tmp = self.dir.join("MANIFEST.json.tmp");
        // Re-created whole on every retry, renamed into place, then the
        // directory is fsynced so the rename itself is durable.
        let published = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.manifest")?;
            let mut f = File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_data()?;
            fs::rename(&tmp, manifest_path(&self.dir))?;
            File::open(&self.dir)?.sync_all()
        });
        if let Err(e) = published {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        Ok((manifest, self.io))
    }
}

/// Generate a corpus for `config` straight into a store at `dir`,
/// never holding more than one record resident.
pub fn generate_into_store(
    config: UniverseConfig,
    dir: &Path,
    shards: usize,
) -> Result<(StoreManifest, StoreIo), StoreError> {
    let _span = schevo_obs::span!(
        "store.generate",
        seed = config.seed,
        scale_divisor = config.scale_divisor,
        scale_multiplier = config.scale_multiplier
    );
    let mut writer = StoreWriter::create(dir, config, shards)?;
    let mut failed: Option<StoreError> = None;
    generate_records(config, &mut |record| {
        if failed.is_some() {
            return;
        }
        if let Err(e) = writer.write(&record) {
            failed = Some(e);
        }
    });
    match failed {
        Some(e) => Err(e),
        None => writer.finalize(),
    }
}

/// Append `records` to an existing store at `dir`, republishing the
/// manifest with an updated `appended` count and corpus digest. The
/// appended store deliberately stops `matches()`-ing its generation
/// config: it now holds more than that config generates.
pub fn append_into_store(
    dir: &Path,
    records: &[CorpusRecord],
) -> Result<(StoreManifest, StoreIo), StoreError> {
    let _span = schevo_obs::span!("store.append", records = records.len());
    let mut writer = StoreWriter::append_to(dir)?;
    for record in records {
        writer.write(record)?;
    }
    writer.finalize()
}

/// A store opened for reading.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
    manifest: StoreManifest,
}

impl ShardStore {
    /// Open the store at `dir`, validating its manifest.
    pub fn open(dir: &Path) -> Result<ShardStore, StoreError> {
        let path = manifest_path(dir);
        let json = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.manifest")?;
            fs::read_to_string(&path)
        })
        .map_err(|e| StoreError::Manifest(format!("{}: {e}", path.display())))?;
        let manifest: StoreManifest = serde_json::from_str(&json)
            .map_err(|e| StoreError::Manifest(format!("{}: {e}", path.display())))?;
        if manifest.store_version != STORE_VERSION {
            return Err(StoreError::Manifest(format!(
                "unsupported store version {} (this build reads {STORE_VERSION})",
                manifest.store_version
            )));
        }
        Ok(ShardStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// Begin a streaming read merging all shards back into `seq` order.
    pub fn stream(&self) -> StoreStream {
        let shards = self.manifest.shards as usize;
        let mut cursors = Vec::with_capacity(shards);
        for i in 0..shards {
            cursors.push(ShardCursor::open(&shard_path(&self.dir, i)));
        }
        let mut stream = StoreStream {
            cursors,
            pending: Vec::new(),
            io: StoreIo::default(),
        };
        stream.pending = (0..stream.cursors.len()).map(|_| Pending::Empty).collect();
        for i in 0..stream.cursors.len() {
            stream.refill(i);
        }
        stream
    }
}

/// One event from a streaming store read.
#[derive(Debug)]
pub enum StoreEvent {
    /// A verified, decoded record (in global `seq` order).
    Record(DecodedRecord),
    /// A corruption event: the offending shard and offset, plus detail.
    /// The stream continues over the surviving data.
    Corrupt {
        /// Shard index.
        shard: usize,
        /// Byte offset of the bad frame within the shard file.
        offset: u64,
        /// Human-readable description of what failed to verify.
        detail: String,
    },
}

#[derive(Debug)]
enum Pending {
    /// Nothing buffered; the cursor is exhausted or dead.
    Empty,
    /// The next record of this shard (boxed: a materialized record is
    /// orders of magnitude larger than the other variants).
    Record(Box<DecodedRecord>),
    /// A corruption event waiting to be yielded.
    Corrupt { offset: u64, detail: String },
}

#[derive(Debug)]
struct ShardCursor {
    file: Option<BufReader<File>>,
    offset: u64,
    /// A frame-level failure kills the cursor: without a trustworthy
    /// length there is no next-record boundary.
    dead: bool,
    open_error: Option<String>,
    /// Reused payload scratch: each `refill` overwrites it in place and
    /// decodes straight out of it, so a streamed read performs one payload
    /// allocation per shard (growing to the largest frame seen) instead of
    /// one per frame.
    payload_buf: Vec<u8>,
}

impl ShardCursor {
    fn open(path: &Path) -> ShardCursor {
        match File::open(path) {
            Ok(f) => ShardCursor {
                file: Some(BufReader::new(f)),
                offset: 0,
                dead: false,
                open_error: None,
                payload_buf: Vec::new(),
            },
            Err(e) => ShardCursor {
                file: None,
                offset: 0,
                dead: true,
                open_error: Some(format!("{}: {e}", path.display())),
                payload_buf: Vec::new(),
            },
        }
    }
}

/// A streaming, shard-merging store reader. Holds at most one decoded
/// record per shard at a time.
#[derive(Debug)]
pub struct StoreStream {
    cursors: Vec<ShardCursor>,
    pending: Vec<Pending>,
    io: StoreIo,
}

impl StoreStream {
    /// I/O counters so far.
    pub fn io(&self) -> StoreIo {
        self.io
    }

    /// Read bytes fully, distinguishing clean EOF (`Ok(false)`) from a
    /// partial fill (`Err`: truncation mid-frame).
    fn read_frame_bytes(
        file: &mut BufReader<File>,
        buf: &mut [u8],
        at_boundary: bool,
    ) -> Result<bool, String> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match file.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 && at_boundary {
                        return Ok(false);
                    }
                    return Err(format!(
                        "truncated frame: {filled} of {} bytes",
                        buf.len()
                    ));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read: {e}")),
            }
        }
        Ok(true)
    }

    /// Pull the next frame of shard `i` into `pending[i]`.
    fn refill(&mut self, i: usize) {
        let cursor = &mut self.cursors[i];
        if cursor.dead {
            // Surface the open failure exactly once.
            self.pending[i] = match cursor.open_error.take() {
                Some(detail) => Pending::Corrupt { offset: 0, detail },
                None => Pending::Empty,
            };
            return;
        }
        let Some(file) = cursor.file.as_mut() else {
            self.pending[i] = Pending::Empty;
            return;
        };
        // One failpoint hit per frame read. The check precedes any
        // consumption from the reader, so an absorbed transient fault
        // retries cleanly; an exhausted or permanent fault becomes a
        // corruption event and fails the shard closed like real bit
        // rot — callers quarantine and continue over surviving data.
        if let Err(e) = failpoint::retry_io(failpoint::RetryPolicy::default(), || {
            failpoint::check("store.read")
        }) {
            cursor.dead = true;
            self.pending[i] = Pending::Corrupt {
                offset: cursor.offset,
                detail: format!("read: {e}"),
            };
            return;
        }
        // Shard magic, once, at offset zero.
        if cursor.offset == 0 {
            let mut magic = [0u8; 8];
            match Self::read_frame_bytes(file, &mut magic, false) {
                Ok(_) if &magic == SHARD_MAGIC => {
                    cursor.offset = 8;
                    self.io.bytes_read += 8;
                }
                Ok(_) => {
                    cursor.dead = true;
                    self.pending[i] = Pending::Corrupt {
                        offset: 0,
                        detail: "bad shard magic".to_string(),
                    };
                    return;
                }
                Err(detail) => {
                    cursor.dead = true;
                    self.pending[i] = Pending::Corrupt { offset: 0, detail };
                    return;
                }
            }
        }
        let frame_offset = cursor.offset;
        let mut header = [0u8; FRAME_LEN];
        match Self::read_frame_bytes(file, &mut header, true) {
            Ok(false) => {
                self.pending[i] = Pending::Empty;
                return;
            }
            Ok(true) => {}
            Err(detail) => {
                cursor.dead = true;
                self.pending[i] = Pending::Corrupt {
                    offset: frame_offset,
                    detail,
                };
                return;
            }
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if len == 0 || len > MAX_RECORD_LEN {
            cursor.dead = true;
            self.pending[i] = Pending::Corrupt {
                offset: frame_offset,
                detail: format!("implausible record length {len}"),
            };
            return;
        }
        cursor.payload_buf.resize(len as usize, 0);
        if let Err(detail) = Self::read_frame_bytes(file, &mut cursor.payload_buf, false) {
            cursor.dead = true;
            self.pending[i] = Pending::Corrupt {
                offset: frame_offset,
                detail,
            };
            return;
        }
        let stored: [u8; 20] = header[4..24].try_into().unwrap_or([0u8; 20]);
        let actual = sha1(&cursor.payload_buf);
        if actual.0 != stored {
            cursor.dead = true;
            self.pending[i] = Pending::Corrupt {
                offset: frame_offset,
                detail: "record checksum mismatch".to_string(),
            };
            return;
        }
        cursor.offset += (FRAME_LEN + len as usize) as u64;
        self.io.bytes_read += (FRAME_LEN + len as usize) as u64;
        // The frame verified, so the boundary is trustworthy: a decode
        // failure (a store bug, not bit rot) skips only this record.
        // Decoding borrows the scratch buffer in place — the record owns
        // its strings and pack, so nothing aliases the buffer afterwards.
        match decode_record(&self.cursors[i].payload_buf) {
            Ok(record) => {
                self.io.records_read += 1;
                self.pending[i] = Pending::Record(Box::new(record));
            }
            Err(e) => {
                self.pending[i] = Pending::Corrupt {
                    offset: frame_offset,
                    detail: format!("record decode: {e}"),
                };
            }
        }
    }

    /// The next event, merging shards by `seq`. Corruption events are
    /// yielded as soon as their shard is consulted (lowest shard index
    /// first), so a given store's event order is deterministic.
    pub fn next_event(&mut self) -> Option<StoreEvent> {
        // Corruption first: the slot must drain before the shard can move.
        for i in 0..self.pending.len() {
            if matches!(self.pending[i], Pending::Corrupt { .. }) {
                let slot = std::mem::replace(&mut self.pending[i], Pending::Empty);
                let Pending::Corrupt { offset, detail } = slot else {
                    unreachable!("matched Corrupt above");
                };
                if !self.cursors[i].dead {
                    self.refill(i);
                }
                return Some(StoreEvent::Corrupt {
                    shard: i,
                    offset,
                    detail,
                });
            }
        }
        // Then the lowest-seq record across shards.
        let mut best: Option<(usize, u64)> = None;
        for (i, slot) in self.pending.iter().enumerate() {
            if let Pending::Record(r) = slot {
                if best.map(|(_, s)| r.seq < s).unwrap_or(true) {
                    best = Some((i, r.seq));
                }
            }
        }
        let (i, _) = best?;
        let slot = std::mem::replace(&mut self.pending[i], Pending::Empty);
        let Pending::Record(record) = slot else {
            unreachable!("selected slot holds a record");
        };
        self.refill(i);
        Some(StoreEvent::Record(*record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{corpus_digest, generate};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "schevo_store_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_reproduces_generation_order_and_digest() {
        let config = UniverseConfig::small(2019, 40);
        let dir = scratch("roundtrip");
        let (manifest, io) = generate_into_store(config, &dir, 4).expect("write store");
        assert_eq!(manifest.shards, 4);
        assert!(io.records_written > 0);
        assert_eq!(io.records_written, manifest.records);

        let universe = generate(config);
        assert_eq!(manifest.records as usize, universe.sql_collection.len());
        assert_eq!(manifest.materialized as usize, universe.materialized.len());
        assert_eq!(
            manifest.corpus_digest,
            corpus_digest(&universe),
            "store digest must equal the in-memory digest"
        );

        let store = ShardStore::open(&dir).expect("open store");
        assert!(store.manifest().matches(&config, 4));
        assert!(!store.manifest().matches(&config, 5));
        let mut stream = store.stream();
        let mut n = 0usize;
        let mut last_seq = None;
        while let Some(event) = stream.next_event() {
            match event {
                StoreEvent::Record(r) => {
                    assert_eq!(r.seq, last_seq.map(|s: u64| s + 1).unwrap_or(0), "seq order");
                    let expect = &universe.sql_collection[n];
                    assert_eq!(r.name, expect.repo_name);
                    assert_eq!(r.sql_paths, expect.sql_paths);
                    assert_eq!(
                        r.libio.as_ref().map(|m| (m.is_fork, m.stars, m.contributors)),
                        universe
                            .libio
                            .get(&r.name)
                            .map(|m| (m.is_fork, m.stars, m.contributors))
                    );
                    assert_eq!(
                        r.materialized.is_some(),
                        universe.materialized.contains_key(&r.name)
                    );
                    last_seq = Some(r.seq);
                    n += 1;
                }
                StoreEvent::Corrupt { detail, .. } => panic!("clean store corrupt: {detail}"),
            }
        }
        assert_eq!(n, universe.sql_collection.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_and_kills_only_its_shard() {
        let config = UniverseConfig::small(7, 40);
        let dir = scratch("bitflip");
        let (manifest, _) = generate_into_store(config, &dir, 2).expect("write store");
        // Flip one byte in the middle of shard 0's record region.
        let path = dir.join("shard-000.pack");
        let mut bytes = fs::read(&path).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite shard");

        let store = ShardStore::open(&dir).expect("open store");
        let mut records = 0u64;
        let mut corrupt = 0u64;
        let mut stream = store.stream();
        while let Some(event) = stream.next_event() {
            match event {
                StoreEvent::Record(_) => records += 1,
                StoreEvent::Corrupt { shard, .. } => {
                    assert_eq!(shard, 0);
                    corrupt += 1;
                }
            }
        }
        assert_eq!(corrupt, 1, "exactly one corruption event");
        assert!(records < manifest.records, "tail of shard 0 is lost");
        assert!(records > 0, "shard 1 survives in full");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_detected() {
        let config = UniverseConfig::small(3, 40);
        let dir = scratch("trunc");
        generate_into_store(config, &dir, 1).expect("write store");
        let path = dir.join("shard-000.pack");
        let bytes = fs::read(&path).expect("read shard");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate shard");

        let store = ShardStore::open(&dir).expect("open store");
        let mut corrupt = 0;
        let mut stream = store.stream();
        while let Some(event) = stream.next_event() {
            if let StoreEvent::Corrupt { detail, .. } = event {
                assert!(detail.contains("truncated"), "{detail}");
                corrupt += 1;
            }
        }
        assert_eq!(corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = scratch("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            ShardStore::open(&dir),
            Err(StoreError::Manifest(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_extends_records_reprimes_digest_and_defeats_reuse() {
        use crate::universe::generate_appendix;
        let config = UniverseConfig::small(11, 40);
        let dir = scratch("append");
        let (base, _) = generate_into_store(config, &dir, 3).expect("write store");
        assert_eq!(base.appended_records(), 0);
        assert!(base.matches(&config, 3));

        let batch = generate_appendix(config, 0, 4, 1);
        assert_eq!(batch.records.len(), 4);
        assert_eq!(batch.corrupted.len(), 1);
        let (appended, io) = append_into_store(&dir, &batch.records).expect("append");
        assert_eq!(appended.records, base.records + 4);
        assert_eq!(appended.appended_records(), 4);
        assert_eq!(io.records_written, 4);
        assert_ne!(
            appended.corpus_digest, base.corpus_digest,
            "the digest must fold appended records in"
        );
        assert!(
            !appended.matches(&config, 3),
            "an appended store must never be silently reused as pristine"
        );

        // Every record — old and new — streams back in seq order.
        let store = ShardStore::open(&dir).expect("reopen");
        let mut seq = 0u64;
        let mut names = Vec::new();
        let mut stream = store.stream();
        while let Some(event) = stream.next_event() {
            match event {
                StoreEvent::Record(r) => {
                    assert_eq!(r.seq, seq, "seq order across the append boundary");
                    seq += 1;
                    names.push(r.name);
                }
                StoreEvent::Corrupt { detail, .. } => panic!("appended store corrupt: {detail}"),
            }
        }
        assert_eq!(seq, appended.records);
        for r in &batch.records {
            assert!(names.contains(&r.name), "appended record {} streams back", r.name);
        }

        // A second append stacks on the first.
        let more = generate_appendix(config, 1, 2, 0);
        let (twice, _) = append_into_store(&dir, &more.records).expect("second append");
        assert_eq!(twice.records, base.records + 6);
        assert_eq!(twice.appended_records(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_to_a_corrupt_store_fails_closed() {
        let config = UniverseConfig::small(13, 40);
        let dir = scratch("appendcorrupt");
        generate_into_store(config, &dir, 1).expect("write store");
        let path = dir.join("shard-000.pack");
        let mut bytes = fs::read(&path).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).expect("rewrite shard");

        let batch = crate::universe::generate_appendix(config, 0, 1, 0);
        match append_into_store(&dir, &batch.records) {
            Err(StoreError::Manifest(detail)) => {
                assert!(detail.contains("corrupt"), "{detail}");
            }
            other => panic!("appending to a corrupt store must fail, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
