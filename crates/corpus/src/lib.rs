//! # schevo-corpus
//!
//! The synthetic stand-in for GitHub Activity + Libraries.io: per-taxon
//! generative models calibrated to the paper's published statistics, a
//! planner that compiles target profiles into exact op-level commit
//! schedules, and a realizer that materializes them as real repositories
//! with real DDL files on the `schevo-vcs` substrate.

#![warn(missing_docs)]

pub mod dist;
pub mod names;
pub mod plan;
pub mod realize;

pub use plan::{plan_project, CommitPlan, ProjectPlan, SchemaOp};
pub use realize::{realize, GeneratedProject};

pub mod libio;
pub mod faultgen;
pub mod noise;
pub mod scrub;
pub mod store;
pub mod universe;

pub use scrub::{scrub_store, ScrubReport, ShardScrub};

pub use libio::LibioRecord;
pub use noise::{NoiseKind, NoiseProject, TAXON_COUNTS};
pub use universe::{generate, ExpectedCounts, MaterializedBody, MaterializedRepo, SqlCollectionEntry, Universe, UniverseConfig};

pub mod exemplar;

pub use exemplar::{all_exemplars, build as build_exemplar, ExemplarBuilder, FigureTag};
