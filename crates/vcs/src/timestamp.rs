//! Civil-time arithmetic for commit timestamps.
//!
//! The study measures *human time*: days since the originating version V0,
//! the running month and year of each commit, and update periods in months.
//! This module provides exactly that — Unix-epoch seconds plus
//! civil-calendar conversion (Howard Hinnant's `days_from_civil` algorithm)
//! — with no external time dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds since the Unix epoch (UTC). May be negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A civil calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Gregorian year.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

/// Number of days from 1970-01-01 to `{y, m, d}` (proleptic Gregorian).
pub fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let m = month as i64;
    let d = day as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(days: i64) -> CivilDate {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    CivilDate {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m,
        day: d,
    }
}

impl Timestamp {
    /// Construct from a civil date at midnight UTC.
    pub fn from_date(year: i32, month: u8, day: u8) -> Timestamp {
        Timestamp(days_from_civil(year, month, day) * 86_400)
    }

    /// Construct from a civil date and time of day.
    pub fn from_datetime(year: i32, month: u8, day: u8, hour: u8, min: u8, sec: u8) -> Timestamp {
        Timestamp(
            days_from_civil(year, month, day) * 86_400
                + hour as i64 * 3600
                + min as i64 * 60
                + sec as i64,
        )
    }

    /// The civil date of this instant (UTC).
    pub fn date(&self) -> CivilDate {
        civil_from_days(self.0.div_euclid(86_400))
    }

    /// Whole days elapsed from `origin` to `self` (floor; negative if
    /// `self` precedes `origin`).
    pub fn days_since(&self, origin: Timestamp) -> i64 {
        (self.0 - origin.0).div_euclid(86_400)
    }

    /// The *running month* relative to `origin`: 1 for the first 30-day
    /// window after V0, 2 for the next, and so on — the granularity used by
    /// the paper's per-month activity charts.
    pub fn running_month(&self, origin: Timestamp) -> i64 {
        self.days_since(origin).div_euclid(30) + 1
    }

    /// The *running year* relative to `origin`, 1-based.
    pub fn running_year(&self, origin: Timestamp) -> i64 {
        self.days_since(origin).div_euclid(365) + 1
    }

    /// Calendar-month difference (`other` − `self`) used for the Schema
    /// Update Period: months are counted as calendar-month boundaries
    /// crossed, plus one so that a same-month history has SUP = 1 month —
    /// matching the paper's convention (min SUP of 1 across all taxa).
    pub fn span_months(&self, later: Timestamp) -> i64 {
        let a = self.date();
        let b = later.date();
        let raw = (b.year as i64 - a.year as i64) * 12 + (b.month as i64 - a.month as i64);
        raw.max(0) + 1
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let secs = self.0.rem_euclid(86_400);
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            d.year,
            d.month,
            d.day,
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(
            civil_from_days(0),
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn known_dates() {
        // 2019-04-24: the SQL-Collection query date in the paper.
        assert_eq!(days_from_civil(2019, 4, 24), 18010);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn civil_days_roundtrip() {
        for days in (-800_000..800_000).step_by(373) {
            let c = civil_from_days(days);
            assert_eq!(days_from_civil(c.year, c.month, c.day), days);
        }
    }

    #[test]
    fn leap_year_feb_29() {
        let d = civil_from_days(days_from_civil(2016, 2, 29));
        assert_eq!((d.year, d.month, d.day), (2016, 2, 29));
    }

    #[test]
    fn days_since_floor_semantics() {
        let a = Timestamp::from_datetime(2019, 1, 1, 23, 0, 0);
        let b = Timestamp::from_datetime(2019, 1, 2, 1, 0, 0);
        assert_eq!(b.days_since(a), 0);
        let c = Timestamp::from_datetime(2019, 1, 3, 0, 0, 0);
        assert_eq!(c.days_since(a), 1);
        assert_eq!(a.days_since(c), -2);
    }

    #[test]
    fn running_month_is_one_based() {
        let v0 = Timestamp::from_date(2018, 1, 1);
        assert_eq!(v0.running_month(v0), 1);
        assert_eq!((v0 + 29 * 86_400).running_month(v0), 1);
        assert_eq!((v0 + 30 * 86_400).running_month(v0), 2);
        assert_eq!((v0 + 365 * 86_400).running_year(v0), 2);
    }

    #[test]
    fn span_months_convention() {
        let a = Timestamp::from_date(2018, 1, 15);
        assert_eq!(a.span_months(Timestamp::from_date(2018, 1, 28)), 1);
        assert_eq!(a.span_months(Timestamp::from_date(2018, 2, 1)), 2);
        assert_eq!(a.span_months(Timestamp::from_date(2019, 1, 1)), 13);
        // Degenerate reversed range clamps to 1.
        assert_eq!(a.span_months(Timestamp::from_date(2017, 12, 1)), 1);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_datetime(2019, 5, 7, 9, 30, 5);
        assert_eq!(t.to_string(), "2019-05-07 09:30:05");
    }

    #[test]
    fn arithmetic_ops() {
        let t = Timestamp::from_date(2019, 1, 1);
        let u = t + 3600;
        assert_eq!(u - t, 3600);
    }
}
