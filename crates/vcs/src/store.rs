//! Thread-safe content-addressed object store.
//!
//! A single store may back many repositories (as a forge's shared object
//! database would); the mining pipeline reads it from multiple extraction
//! threads, so reads take a shared lock.

use crate::object::{Blob, Commit, Object, Tree};
use crate::sha1::Digest;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Summary statistics of a store's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of blobs.
    pub blobs: usize,
    /// Number of trees.
    pub trees: usize,
    /// Number of commits.
    pub commits: usize,
    /// Total payload bytes across blobs (deduplicated).
    pub blob_bytes: usize,
}

/// A content-addressed object database.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: RwLock<HashMap<Digest, Object>>,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Create an empty store behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(ObjectStore::new())
    }

    /// Insert any object, returning its address. Idempotent: storing equal
    /// content twice is a no-op (deduplication).
    pub fn put(&self, obj: Object) -> Digest {
        let id = obj.id();
        self.objects.write().entry(id).or_insert(obj);
        id
    }

    /// Store a blob.
    pub fn put_blob(&self, blob: Blob) -> Digest {
        self.put(Object::Blob(blob))
    }

    /// Store a tree.
    pub fn put_tree(&self, tree: Tree) -> Digest {
        self.put(Object::Tree(tree))
    }

    /// Store a commit.
    pub fn put_commit(&self, commit: Commit) -> Digest {
        self.put(Object::Commit(commit))
    }

    /// Fetch any object by address.
    pub fn get(&self, id: Digest) -> Option<Object> {
        self.objects.read().get(&id).cloned()
    }

    /// Fetch a blob; `None` when absent or not a blob.
    pub fn blob(&self, id: Digest) -> Option<Blob> {
        match self.get(id)? {
            Object::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Fetch a tree; `None` when absent or not a tree.
    pub fn tree(&self, id: Digest) -> Option<Tree> {
        match self.get(id)? {
            Object::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// Fetch a commit; `None` when absent or not a commit.
    pub fn commit(&self, id: Digest) -> Option<Commit> {
        match self.get(id)? {
            Object::Commit(c) => Some(c),
            _ => None,
        }
    }

    /// Whether an object with this address exists.
    pub fn contains(&self, id: Digest) -> bool {
        self.objects.read().contains_key(&id)
    }

    /// Count objects by kind.
    pub fn stats(&self) -> StoreStats {
        let guard = self.objects.read();
        let mut s = StoreStats::default();
        for obj in guard.values() {
            match obj {
                Object::Blob(b) => {
                    s.blobs += 1;
                    s.blob_bytes += b.data.len();
                }
                Object::Tree(_) => s.trees += 1,
                Object::Commit(_) => s.commits += 1,
            }
        }
        s
    }

    /// Total number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;

    #[test]
    fn put_get_roundtrip() {
        let store = ObjectStore::new();
        let id = store.put_blob(Blob::new(&b"abc"[..]));
        assert_eq!(store.blob(id).unwrap().as_text(), "abc");
        assert!(store.contains(id));
        assert!(store.tree(id).is_none(), "kind-checked accessors");
    }

    #[test]
    fn deduplication() {
        let store = ObjectStore::new();
        let a = store.put_blob(Blob::new(&b"same"[..]));
        let b = store.put_blob(Blob::new(&b"same"[..]));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.blob_bytes, 4);
    }

    #[test]
    fn stats_count_kinds() {
        let store = ObjectStore::new();
        let blob = store.put_blob(Blob::new(&b"x"[..]));
        let mut tree = Tree::new();
        tree.insert("f", blob);
        let tree_id = store.put_tree(tree);
        store.put_commit(Commit {
            tree: tree_id,
            parents: vec![],
            author: "a".into(),
            timestamp: Timestamp(0),
            message: "m".into(),
        });
        let s = store.stats();
        assert_eq!((s.blobs, s.trees, s.commits), (1, 1, 1));
        assert!(!store.is_empty());
    }

    #[test]
    fn concurrent_writes_dedupe() {
        let store = ObjectStore::shared();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    // Half the content is shared across threads.
                    let content = if i % 2 == 0 {
                        format!("shared-{i}")
                    } else {
                        format!("thread-{t}-{i}")
                    };
                    store.put_blob(Blob::new(content.into_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 50 shared + 8 * 50 private.
        assert_eq!(store.len(), 50 + 400);
    }
}
