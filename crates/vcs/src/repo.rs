//! Repositories: branches over a shared object store, with a git-like
//! commit/merge API.

use crate::object::{Blob, Commit, Object, Tree};
use crate::sha1::Digest;
use crate::store::ObjectStore;
use crate::timestamp::Timestamp;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoError {
    /// A named branch does not exist.
    UnknownBranch(String),
    /// An object referenced by a commit is missing from the store.
    MissingObject(Digest),
    /// An operation needed a parent commit but the branch has none.
    EmptyBranch(String),
}

impl std::fmt::Display for RepoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepoError::UnknownBranch(b) => write!(f, "unknown branch `{b}`"),
            RepoError::MissingObject(id) => write!(f, "missing object {}", id.short()),
            RepoError::EmptyBranch(b) => write!(f, "branch `{b}` has no commits"),
        }
    }
}

impl std::error::Error for RepoError {}

/// A change to apply in a commit.
#[derive(Debug, Clone)]
pub enum FileChange {
    /// Write `content` at `path` (create or overwrite).
    Write {
        /// Repository-relative path.
        path: String,
        /// New full content of the file.
        content: String,
    },
    /// Delete the file at `path` (no-op if absent).
    Delete {
        /// Repository-relative path.
        path: String,
    },
}

impl FileChange {
    /// Convenience constructor for a write.
    pub fn write(path: impl Into<String>, content: impl Into<String>) -> Self {
        FileChange::Write {
            path: path.into(),
            content: content.into(),
        }
    }

    /// Convenience constructor for a delete.
    pub fn delete(path: impl Into<String>) -> Self {
        FileChange::Delete { path: path.into() }
    }
}

/// A repository: named branches pointing into a (possibly shared) object
/// store.
#[derive(Debug)]
pub struct Repository {
    /// Human name, e.g. `owner/project`.
    pub name: String,
    store: Arc<ObjectStore>,
    branches: HashMap<String, Digest>,
    head: String,
}

impl Repository {
    /// Default branch name.
    pub const DEFAULT_BRANCH: &'static str = "master";

    /// Create an empty repository over its own private store.
    pub fn new(name: impl Into<String>) -> Self {
        Repository::with_store(name, ObjectStore::shared())
    }

    /// Create an empty repository over a shared store.
    pub fn with_store(name: impl Into<String>, store: Arc<ObjectStore>) -> Self {
        Repository {
            name: name.into(),
            store,
            branches: HashMap::new(),
            head: Self::DEFAULT_BRANCH.to_string(),
        }
    }

    /// The underlying object store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The current branch name.
    pub fn head_branch(&self) -> &str {
        &self.head
    }

    /// The tip commit of the current branch, if any.
    pub fn head(&self) -> Option<Digest> {
        self.branches.get(&self.head).copied()
    }

    /// The tip commit of a named branch.
    pub fn branch_tip(&self, branch: &str) -> Option<Digest> {
        self.branches.get(branch).copied()
    }

    /// All branch names (unordered).
    pub fn branch_names(&self) -> impl Iterator<Item = &str> {
        self.branches.keys().map(|s| s.as_str())
    }

    /// Create a branch at the current HEAD and switch to it.
    ///
    /// # Errors
    ///
    /// [`RepoError::EmptyBranch`] if the current branch has no commits yet.
    pub fn branch_and_checkout(&mut self, name: impl Into<String>) -> Result<(), RepoError> {
        let tip = self
            .head()
            .ok_or_else(|| RepoError::EmptyBranch(self.head.clone()))?;
        let name = name.into();
        self.branches.insert(name.clone(), tip);
        self.head = name;
        Ok(())
    }

    /// Point `name` at `tip`, creating the branch if needed. Intended for
    /// pack loading and test setup; normal work flows through
    /// [`Repository::commit`] / [`Repository::merge`].
    pub fn set_branch(&mut self, name: impl Into<String>, tip: Digest) {
        self.branches.insert(name.into(), tip);
    }

    /// Switch HEAD to an existing branch.
    ///
    /// # Errors
    ///
    /// [`RepoError::UnknownBranch`] if the branch does not exist.
    pub fn checkout(&mut self, name: &str) -> Result<(), RepoError> {
        if !self.branches.contains_key(name) {
            return Err(RepoError::UnknownBranch(name.to_string()));
        }
        self.head = name.to_string();
        Ok(())
    }

    /// The snapshot tree at the tip of the current branch (empty tree when
    /// the branch has no commits).
    pub fn head_tree(&self) -> Result<Tree, RepoError> {
        match self.head() {
            None => Ok(Tree::new()),
            Some(tip) => {
                let commit = self
                    .store
                    .commit(tip)
                    .ok_or(RepoError::MissingObject(tip))?;
                self.store
                    .tree(commit.tree)
                    .ok_or(RepoError::MissingObject(commit.tree))
            }
        }
    }

    /// Read a file at the tip of the current branch.
    pub fn read_file(&self, path: &str) -> Result<Option<String>, RepoError> {
        let tree = self.head_tree()?;
        match tree.get(path) {
            None => Ok(None),
            Some(id) => {
                let blob = self.store.blob(id).ok_or(RepoError::MissingObject(id))?;
                Ok(Some(blob.as_text()))
            }
        }
    }

    /// Apply `changes` as a new commit on the current branch and return its
    /// id. An empty change list still creates a commit (git allows empty
    /// commits; mining must tolerate them).
    pub fn commit(
        &mut self,
        changes: &[FileChange],
        author: &str,
        timestamp: Timestamp,
        message: &str,
    ) -> Result<Digest, RepoError> {
        let mut tree = self.head_tree()?;
        for change in changes {
            match change {
                FileChange::Write { path, content } => {
                    let blob_id = self
                        .store
                        .put_blob(Blob::new(content.clone().into_bytes()));
                    tree.insert(path.clone(), blob_id);
                }
                FileChange::Delete { path } => {
                    tree.remove(path);
                }
            }
        }
        let tree_id = self.store.put_tree(tree);
        let parents = self.head().into_iter().collect();
        let commit = Commit {
            tree: tree_id,
            parents,
            author: author.to_string(),
            timestamp,
            message: message.to_string(),
        };
        let id = self.store.put_commit(commit);
        self.branches.insert(self.head.clone(), id);
        Ok(id)
    }

    /// Merge `other` branch into the current branch, producing a two-parent
    /// commit. Files are merged three-way at file granularity against the
    /// merge base: a path changed only on one side takes that side; a path
    /// changed on both sides takes theirs (a deterministic conflict policy —
    /// adequate for history-shape mining, which only observes content
    /// identity).
    ///
    /// # Errors
    ///
    /// [`RepoError::UnknownBranch`] / [`RepoError::EmptyBranch`] when either
    /// side has no commits.
    pub fn merge(
        &mut self,
        other: &str,
        author: &str,
        timestamp: Timestamp,
        message: &str,
    ) -> Result<Digest, RepoError> {
        let ours = self
            .head()
            .ok_or_else(|| RepoError::EmptyBranch(self.head.clone()))?;
        let theirs = self
            .branch_tip(other)
            .ok_or_else(|| RepoError::UnknownBranch(other.to_string()))?;
        let base_tree = match self.merge_base(ours, theirs)? {
            Some(base) => {
                let c = self.commit_object(base)?;
                self.store
                    .tree(c.tree)
                    .ok_or(RepoError::MissingObject(c.tree))?
            }
            None => Tree::new(),
        };
        let their_commit = self
            .store
            .commit(theirs)
            .ok_or(RepoError::MissingObject(theirs))?;
        let their_tree = self
            .store
            .tree(their_commit.tree)
            .ok_or(RepoError::MissingObject(their_commit.tree))?;
        let mut tree = self.head_tree()?;
        // Paths present on their side: adopt when they differ from base.
        for (path, id) in &their_tree.entries {
            if base_tree.get(path) != Some(*id) {
                tree.insert(path.clone(), *id);
            }
        }
        // Paths they deleted (present in base, absent in theirs): delete,
        // unless our side changed the file relative to base.
        for (path, base_id) in &base_tree.entries {
            if their_tree.get(path).is_none() && tree.get(path) == Some(*base_id) {
                tree.remove(path);
            }
        }
        let tree_id = self.store.put_tree(tree);
        let commit = Commit {
            tree: tree_id,
            parents: vec![ours, theirs],
            author: author.to_string(),
            timestamp,
            message: message.to_string(),
        };
        let id = self.store.put_commit(commit);
        self.branches.insert(self.head.clone(), id);
        Ok(id)
    }

    /// Load a commit object.
    pub fn commit_object(&self, id: Digest) -> Result<Commit, RepoError> {
        self.store.commit(id).ok_or(RepoError::MissingObject(id))
    }

    /// Find a merge base of two commits: the latest common ancestor by
    /// timestamp (ties broken by id). `None` for unrelated histories.
    pub fn merge_base(&self, a: Digest, b: Digest) -> Result<Option<Digest>, RepoError> {
        let ancestors_a = self.ancestors(a)?;
        let ancestors_b = self.ancestors(b)?;
        let mut best: Option<(Timestamp, Digest)> = None;
        for id in ancestors_a.intersection(&ancestors_b) {
            let c = self.commit_object(*id)?;
            let key = (c.timestamp, *id);
            if best.map(|b| key > b).unwrap_or(true) {
                best = Some(key);
            }
        }
        Ok(best.map(|(_, id)| id))
    }

    /// All commits reachable from `tip`, including `tip` itself.
    fn ancestors(&self, tip: Digest) -> Result<std::collections::HashSet<Digest>, RepoError> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![tip];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let c = self.commit_object(id)?;
            stack.extend(c.parents.iter().copied());
        }
        Ok(seen)
    }

    /// Read a file at a specific commit.
    pub fn read_file_at(&self, commit: Digest, path: &str) -> Result<Option<String>, RepoError> {
        let c = self.commit_object(commit)?;
        let tree = self
            .store
            .tree(c.tree)
            .ok_or(RepoError::MissingObject(c.tree))?;
        match tree.get(path) {
            None => Ok(None),
            Some(id) => match self.store.get(id) {
                Some(Object::Blob(b)) => Ok(Some(b.as_text())),
                _ => Err(RepoError::MissingObject(id)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: i64) -> Timestamp {
        Timestamp(n * 86_400)
    }

    #[test]
    fn commit_and_read_back() {
        let mut r = Repository::new("acme/app");
        r.commit(
            &[FileChange::write("schema.sql", "CREATE TABLE t (a INT);")],
            "alice",
            ts(0),
            "init",
        )
        .unwrap();
        assert_eq!(
            r.read_file("schema.sql").unwrap().unwrap(),
            "CREATE TABLE t (a INT);"
        );
        assert_eq!(r.read_file("other.txt").unwrap(), None);
    }

    #[test]
    fn successive_commits_chain_parents() {
        let mut r = Repository::new("acme/app");
        let c1 = r
            .commit(&[FileChange::write("f", "1")], "a", ts(0), "one")
            .unwrap();
        let c2 = r
            .commit(&[FileChange::write("f", "2")], "a", ts(1), "two")
            .unwrap();
        let commit2 = r.commit_object(c2).unwrap();
        assert_eq!(commit2.parents, vec![c1]);
        assert_eq!(r.read_file("f").unwrap().unwrap(), "2");
        assert_eq!(r.read_file_at(c1, "f").unwrap().unwrap(), "1");
    }

    #[test]
    fn delete_removes_file() {
        let mut r = Repository::new("acme/app");
        r.commit(&[FileChange::write("f", "1")], "a", ts(0), "add")
            .unwrap();
        r.commit(&[FileChange::delete("f")], "a", ts(1), "rm")
            .unwrap();
        assert_eq!(r.read_file("f").unwrap(), None);
    }

    #[test]
    fn empty_commit_allowed() {
        let mut r = Repository::new("acme/app");
        let c1 = r.commit(&[], "a", ts(0), "empty root").unwrap();
        let c2 = r.commit(&[], "a", ts(1), "still empty").unwrap();
        assert_ne!(c1, c2, "metadata differs so ids differ");
    }

    #[test]
    fn branching_and_merging() {
        let mut r = Repository::new("acme/app");
        r.commit(&[FileChange::write("f", "base")], "a", ts(0), "base")
            .unwrap();
        r.branch_and_checkout("feature").unwrap();
        r.commit(&[FileChange::write("g", "side")], "b", ts(1), "side work")
            .unwrap();
        r.checkout(Repository::DEFAULT_BRANCH).unwrap();
        r.commit(&[FileChange::write("f", "main2")], "a", ts(2), "main work")
            .unwrap();
        let m = r.merge("feature", "a", ts(3), "merge feature").unwrap();
        let merge = r.commit_object(m).unwrap();
        assert_eq!(merge.parents.len(), 2);
        assert_eq!(r.read_file("g").unwrap().unwrap(), "side");
        assert_eq!(r.read_file("f").unwrap().unwrap(), "main2");
    }

    #[test]
    fn checkout_unknown_branch_errors() {
        let mut r = Repository::new("acme/app");
        assert_eq!(
            r.checkout("nope"),
            Err(RepoError::UnknownBranch("nope".into()))
        );
    }

    #[test]
    fn branch_from_empty_errors() {
        let mut r = Repository::new("acme/app");
        assert!(matches!(
            r.branch_and_checkout("x"),
            Err(RepoError::EmptyBranch(_))
        ));
    }

    #[test]
    fn shared_store_across_repos_dedupes() {
        let store = ObjectStore::shared();
        let mut r1 = Repository::with_store("a/one", Arc::clone(&store));
        let mut r2 = Repository::with_store("a/two", Arc::clone(&store));
        r1.commit(&[FileChange::write("s.sql", "CREATE TABLE t (a INT);")], "x", ts(0), "m")
            .unwrap();
        r2.commit(&[FileChange::write("s.sql", "CREATE TABLE t (a INT);")], "y", ts(5), "m")
            .unwrap();
        assert_eq!(store.stats().blobs, 1, "identical schema file stored once");
    }
}
