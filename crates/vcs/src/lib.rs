//! # schevo-vcs
//!
//! A from-scratch, content-addressed version-control substrate with git-like
//! semantics: SHA-1 object addressing, blob/tree/commit objects, branches,
//! merges, and per-file history extraction.
//!
//! The ICDE 2021 study mines the commit history of DDL files out of real git
//! repositories cloned from GitHub. This crate is the stand-in for git in
//! the reproduction: the synthetic corpus *commits actual file contents*
//! into repositories built on this substrate, and the mining pipeline
//! extracts per-file histories back out of them — so every measurement
//! downstream is derived from a real parse of a real versioned file, not
//! from in-memory shortcuts.
//!
//! ## Example
//!
//! ```
//! use schevo_vcs::repo::{FileChange, Repository};
//! use schevo_vcs::history::{file_history, WalkStrategy};
//! use schevo_vcs::timestamp::Timestamp;
//!
//! let mut repo = Repository::new("acme/shop");
//! repo.commit(
//!     &[FileChange::write("db/schema.sql", "CREATE TABLE p (id INT);")],
//!     "alice", Timestamp::from_date(2018, 3, 1), "initial schema",
//! ).unwrap();
//! repo.commit(
//!     &[FileChange::write("db/schema.sql", "CREATE TABLE p (id INT, name TEXT);")],
//!     "bob", Timestamp::from_date(2018, 5, 9), "add product name",
//! ).unwrap();
//!
//! let history = file_history(&repo, "db/schema.sql", WalkStrategy::FirstParent).unwrap();
//! assert_eq!(history.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod history;
pub mod object;
pub mod pack;
pub mod repo;
pub mod sha1;
pub mod store;
pub mod timestamp;

pub use history::{commit_count, file_history, FileVersion, WalkStrategy};
pub use pack::{read_pack, write_pack, PackError};
pub use repo::{FileChange, RepoError, Repository};
pub use sha1::Digest;
pub use store::ObjectStore;
pub use timestamp::Timestamp;
