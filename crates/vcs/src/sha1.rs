//! From-scratch SHA-1 (RFC 3174) used for content addressing.
//!
//! Git addresses objects by SHA-1 of a typed header plus payload; this
//! substrate does the same. SHA-1's cryptographic weakness is irrelevant
//! here — we need a stable, collision-resistant-in-practice content address,
//! exactly as git itself still uses.

use std::fmt;

/// A 160-bit SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Render as 40 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse from 40 hex characters.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Short 8-character prefix, as shown in logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bytes: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// A fresh hasher with the RFC 3174 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bytes: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Feed bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bytes += data.len() as u64;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len_bytes * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        // `update` adjusted len_bytes; remember padding must not count, so we
        // compute target from current buffer fill instead.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block_tail = [0u8; 8];
        block_tail.copy_from_slice(&bit_len.to_be_bytes());
        self.update(&block_tail);
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot convenience.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from RFC 3174 and FIPS 180-1.
    #[test]
    fn rfc3174_test_vectors() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let one = sha1(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut h = Sha1::new();
        let mut rest = &data[..];
        let sizes = [1usize, 63, 64, 65, 127, 128, 1000];
        let mut i = 0;
        while !rest.is_empty() {
            let n = sizes[i % sizes.len()].min(rest.len());
            h.update(&rest[..n]);
            rest = &rest[n..];
            i += 1;
        }
        assert_eq!(h.finalize(), one);
    }

    #[test]
    fn git_style_blob_address() {
        // `echo -n 'hello' | git hash-object --stdin` = b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0
        let mut h = Sha1::new();
        h.update(b"blob 5\0");
        h.update(b"hello");
        assert_eq!(
            h.finalize().to_hex(),
            "b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0"
        );
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha1(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(40)), None);
    }

    #[test]
    fn short_prefix() {
        let d = sha1(b"abc");
        assert_eq!(d.short(), "a9993e36");
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"a"), sha1(b"b"));
        assert_ne!(sha1(b""), sha1(b"\0"));
    }
}
