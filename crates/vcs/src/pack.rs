//! A simple pack format: serialize an object store (and repository refs) to
//! bytes and back, with content-address verification on load.
//!
//! The mining study snapshots its corpus to disk so that a study can be
//! re-run without regenerating repositories; this is the git-`pack`
//! equivalent of the substrate. The format is deliberately simple:
//!
//! ```text
//! "SVPK1"                                magic
//! u32 object_count
//!   per object:  u8 kind ('B'|'T'|'C'), payload (kind-specific)
//! u16 name_len, name                     repository manifest
//! u16 head_len, head
//! u32 branch_count
//!   per branch: u16 len, name, 20-byte tip digest
//! ```
//!
//! All integers are little-endian. Loading recomputes every object's digest
//! and rejects mismatches, so a corrupted pack can never produce a silently
//! wrong history.

use crate::object::{Blob, Commit, Object, Tree};
use crate::repo::Repository;
use crate::sha1::Digest;
use crate::store::ObjectStore;
use crate::timestamp::Timestamp;
use bytes::Bytes;
use std::sync::Arc;

const MAGIC: &[u8; 5] = b"SVPK1";

/// Errors from pack reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The magic header is missing or wrong.
    BadMagic,
    /// The byte stream ended prematurely or a length field is inconsistent.
    Truncated,
    /// An unknown object kind byte.
    UnknownKind(u8),
    /// A stored object's recomputed address does not match its content.
    DigestMismatch {
        /// The address recorded in the pack.
        expected: Digest,
        /// The address recomputed from the payload.
        actual: Digest,
    },
    /// A string field is not valid UTF-8.
    BadString,
    /// The object graph is not closed: something references an object the
    /// pack does not contain (including any payload corruption, which moves
    /// the object to a different address).
    MissingObject(Digest),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::BadMagic => write!(f, "not a SVPK1 pack"),
            PackError::Truncated => write!(f, "truncated pack"),
            PackError::UnknownKind(k) => write!(f, "unknown object kind {k:#x}"),
            PackError::DigestMismatch { expected, actual } => write!(
                f,
                "digest mismatch: pack says {}, content is {}",
                expected.short(),
                actual.short()
            ),
            PackError::BadString => write!(f, "invalid UTF-8 in pack"),
            PackError::MissingObject(d) => {
                write!(f, "object graph not closed: missing {}", d.short())
            }
        }
    }
}

impl std::error::Error for PackError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_lstr(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian byte reader over a borrowed buffer.
///
/// Every read is length-checked against the remaining buffer (with
/// overflow-safe arithmetic), so corrupted length fields surface as
/// [`PackError::Truncated`] instead of panics. Public because the
/// sharded corpus store (`schevo-corpus`) frames its records with the
/// same primitives.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        // `saturating_sub` keeps the check overflow-free even if an attacker
        // smuggles a near-usize::MAX length through a corrupted header.
        if self.buf.len().saturating_sub(self.pos) < n {
            return Err(PackError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read exactly `N` bytes into a fixed array, bounds-checked by `take`.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], PackError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PackError> {
        Ok(self.array::<1>()?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PackError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PackError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PackError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PackError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// Read a 20-byte digest.
    pub fn digest(&mut self) -> Result<Digest, PackError> {
        Ok(Digest(self.array()?))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, PackError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| PackError::BadString)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn lstring(&mut self) -> Result<String, PackError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| PackError::BadString)
    }
}

fn write_object(out: &mut Vec<u8>, obj: &Object) {
    match obj {
        Object::Blob(b) => {
            out.push(b'B');
            put_u32(out, b.data.len() as u32);
            out.extend_from_slice(&b.data);
        }
        Object::Tree(t) => {
            out.push(b'T');
            put_u32(out, t.entries.len() as u32);
            for (path, id) in &t.entries {
                put_str(out, path);
                out.extend_from_slice(&id.0);
            }
        }
        Object::Commit(c) => {
            out.push(b'C');
            out.extend_from_slice(&c.tree.0);
            out.push(c.parents.len() as u8);
            for p in &c.parents {
                out.extend_from_slice(&p.0);
            }
            put_str(out, &c.author);
            out.extend_from_slice(&c.timestamp.0.to_le_bytes());
            put_lstr(out, &c.message);
        }
    }
}

fn read_object(r: &mut Reader<'_>) -> Result<Object, PackError> {
    match r.u8()? {
        b'B' => {
            let n = r.u32()? as usize;
            Ok(Object::Blob(Blob::new(Bytes::copy_from_slice(r.take(n)?))))
        }
        b'T' => {
            let n = r.u32()? as usize;
            let mut tree = Tree::new();
            for _ in 0..n {
                let path = r.string()?;
                let id = r.digest()?;
                tree.insert(path, id);
            }
            Ok(Object::Tree(tree))
        }
        b'C' => {
            let tree = r.digest()?;
            let parent_count = r.u8()? as usize;
            let mut parents = Vec::with_capacity(parent_count);
            for _ in 0..parent_count {
                parents.push(r.digest()?);
            }
            let author = r.string()?;
            let timestamp = Timestamp(r.i64()?);
            let message = r.lstring()?;
            Ok(Object::Commit(Commit {
                tree,
                parents,
                author,
                timestamp,
                message,
            }))
        }
        k => Err(PackError::UnknownKind(k)),
    }
}

/// Serialize a repository to a pack: its refs plus every object reachable
/// from any branch tip (a per-repo export; unrelated objects in a shared
/// store are not written).
pub fn write_pack(repo: &Repository) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    // Objects, in deterministic digest order.
    let mut ids: Vec<(Digest, Object)> = Vec::new();
    // The store has no iteration API by design; walk reachable objects from
    // all branch tips instead (exactly what a per-repo export should do).
    let mut stack: Vec<Digest> = repo
        .branch_names()
        .filter_map(|b| repo.branch_tip(b))
        .collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let Some(obj) = repo.store().get(id) else {
            continue;
        };
        match &obj {
            Object::Commit(c) => {
                stack.push(c.tree);
                stack.extend(c.parents.iter().copied());
            }
            Object::Tree(t) => {
                stack.extend(t.entries.values().copied());
            }
            Object::Blob(_) => {}
        }
        ids.push((id, obj));
    }
    ids.sort_by_key(|(id, _)| *id);
    put_u32(&mut out, ids.len() as u32);
    for (_, obj) in &ids {
        write_object(&mut out, obj);
    }
    // Manifest.
    put_str(&mut out, &repo.name);
    put_str(&mut out, repo.head_branch());
    let mut branches: Vec<(&str, Digest)> = repo
        .branch_names()
        .filter_map(|b| repo.branch_tip(b).map(|t| (b, t)))
        .collect();
    branches.sort_by_key(|(b, _)| b.to_string());
    put_u32(&mut out, branches.len() as u32);
    for (name, tip) in branches {
        put_str(&mut out, name);
        out.extend_from_slice(&tip.0);
    }
    out
}

/// Load a repository from a pack, verifying every object's address.
///
/// # Errors
///
/// See [`PackError`].
pub fn read_pack(bytes: &[u8]) -> Result<Repository, PackError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(5)? != MAGIC {
        return Err(PackError::BadMagic);
    }
    let store = Arc::new(ObjectStore::new());
    let count = r.u32()? as usize;
    let mut loaded: Vec<Digest> = Vec::with_capacity(count);
    for _ in 0..count {
        let obj = read_object(&mut r)?;
        loaded.push(store.put(obj));
    }
    // Closure verification: every reference must resolve. Payload
    // corruption moves an object to a new address, so this also catches
    // bit flips anywhere in the object section.
    for id in &loaded {
        match store.get(*id) {
            Some(Object::Commit(c)) => {
                if store.tree(c.tree).is_none() {
                    return Err(PackError::MissingObject(c.tree));
                }
                for p in &c.parents {
                    if store.commit(*p).is_none() {
                        return Err(PackError::MissingObject(*p));
                    }
                }
            }
            Some(Object::Tree(t)) => {
                for b in t.entries.values() {
                    if store.blob(*b).is_none() {
                        return Err(PackError::MissingObject(*b));
                    }
                }
            }
            _ => {}
        }
    }
    let name = r.string()?;
    let head = r.string()?;
    let branch_count = r.u32()? as usize;
    let mut repo = Repository::with_store(name, Arc::clone(&store));
    for _ in 0..branch_count {
        let branch = r.string()?;
        let tip = r.digest()?;
        // Verify the tip resolves to a commit whose digest matches.
        match store.get(tip) {
            Some(obj) if obj.id() == tip => {}
            Some(obj) => {
                return Err(PackError::DigestMismatch {
                    expected: tip,
                    actual: obj.id(),
                })
            }
            None => return Err(PackError::Truncated),
        }
        repo.set_branch(branch, tip);
    }
    if let Some(tip) = repo.branch_tip(&head) {
        // The tip was digest-verified above, so checkout can only fail if
        // the store is inconsistent — surface that as a corrupt pack rather
        // than panicking.
        if repo.checkout(&head).is_err() {
            return Err(PackError::MissingObject(tip));
        }
    }
    Ok(repo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{file_history, WalkStrategy};
    use crate::repo::FileChange;

    fn sample_repo() -> Repository {
        let mut r = Repository::new("pack/demo");
        r.commit(
            &[FileChange::write("s.sql", "CREATE TABLE a (x INT);")],
            "ann",
            Timestamp::from_date(2018, 1, 1),
            "v0",
        )
        .unwrap();
        r.branch_and_checkout("side").unwrap();
        r.commit(
            &[FileChange::write("s.sql", "CREATE TABLE a (x INT, y INT);")],
            "ben",
            Timestamp::from_date(2018, 2, 1),
            "side edit",
        )
        .unwrap();
        r.checkout(Repository::DEFAULT_BRANCH).unwrap();
        r.commit(
            &[FileChange::write("README", "hello")],
            "ann",
            Timestamp::from_date(2018, 3, 1),
            "docs",
        )
        .unwrap();
        r.merge("side", "ann", Timestamp::from_date(2018, 4, 1), "merge side")
            .unwrap();
        r
    }

    #[test]
    fn roundtrip_preserves_history() {
        let repo = sample_repo();
        let pack = write_pack(&repo);
        let loaded = read_pack(&pack).unwrap();
        assert_eq!(loaded.name, "pack/demo");
        assert_eq!(loaded.head_branch(), Repository::DEFAULT_BRANCH);
        assert_eq!(loaded.head(), repo.head());
        let a = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        let b = file_history(&loaded, "s.sql", WalkStrategy::FirstParent).unwrap();
        assert_eq!(a, b);
        // Both branches survive.
        assert_eq!(loaded.branch_tip("side"), repo.branch_tip("side"));
    }

    #[test]
    fn pack_is_deterministic() {
        let repo = sample_repo();
        assert_eq!(write_pack(&repo), write_pack(&repo));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_pack(b"NOPE!rest"), Err(PackError::BadMagic)));
        assert!(matches!(read_pack(b""), Err(PackError::Truncated)));
    }

    #[test]
    fn truncation_rejected() {
        let pack = write_pack(&sample_repo());
        for cut in [6, pack.len() / 2, pack.len() - 1] {
            assert!(
                read_pack(&pack[..cut]).is_err(),
                "cut at {cut} must not load"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let repo = sample_repo();
        let pack = write_pack(&repo);
        // Flip one byte in every position of the object section in turn: no
        // flip may load successfully AND reproduce the original history.
        let orig = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        for flip_at in (9..pack.len().saturating_sub(40)).step_by(37) {
            let mut bad = pack.clone();
            bad[flip_at] ^= 0x5a;
            if let Ok(loaded) = read_pack(&bad) {
                if let Ok(h) = file_history(&loaded, "s.sql", WalkStrategy::FirstParent) {
                    assert_ne!(
                        h, orig,
                        "flip at {flip_at} loaded and reproduced the original"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_repository_roundtrips() {
        let repo = Repository::new("pack/empty");
        let loaded = read_pack(&write_pack(&repo)).unwrap();
        assert_eq!(loaded.name, "pack/empty");
        assert!(loaded.head().is_none());
    }
}
