//! Object model: blobs, trees and commits, content-addressed like git.
//!
//! Serialization is a simple canonical byte format (`kind length\0payload`)
//! so that equal objects always share an address and the address never
//! depends on process state.

use crate::sha1::{sha1, Digest};
use crate::timestamp::Timestamp;
use bytes::Bytes;
use std::collections::BTreeMap;

/// File contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Raw bytes of the file version.
    pub data: Bytes,
}

impl Blob {
    /// Wrap bytes into a blob.
    pub fn new(data: impl Into<Bytes>) -> Self {
        Blob { data: data.into() }
    }

    /// The blob's content address (`blob <len>\0<data>`, exactly git's
    /// scheme).
    pub fn id(&self) -> Digest {
        let mut buf = Vec::with_capacity(self.data.len() + 16);
        buf.extend_from_slice(format!("blob {}\0", self.data.len()).as_bytes());
        buf.extend_from_slice(&self.data);
        sha1(&buf)
    }

    /// Interpret the blob as UTF-8 text (lossy).
    pub fn as_text(&self) -> String {
        String::from_utf8_lossy(&self.data).into_owned()
    }
}

/// A snapshot of the working tree: a flat, sorted map of repository-relative
/// paths to blob ids. (Real git nests trees per directory; a flat tree has
/// the same observable semantics for history mining and far simpler
/// invariants.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tree {
    /// Path → blob id.
    pub entries: BTreeMap<String, Digest>,
}

impl Tree {
    /// An empty tree.
    pub fn new() -> Self {
        Tree::default()
    }

    /// The tree's content address.
    pub fn id(&self) -> Digest {
        let mut payload = Vec::new();
        for (path, id) in &self.entries {
            payload.extend_from_slice(path.as_bytes());
            payload.push(0);
            payload.extend_from_slice(&id.0);
        }
        let mut buf = Vec::with_capacity(payload.len() + 16);
        buf.extend_from_slice(format!("tree {}\0", payload.len()).as_bytes());
        buf.extend_from_slice(&payload);
        sha1(&buf)
    }

    /// The blob id at `path`, if present.
    pub fn get(&self, path: &str) -> Option<Digest> {
        self.entries.get(path).copied()
    }

    /// Insert or replace the entry at `path`.
    pub fn insert(&mut self, path: impl Into<String>, blob: Digest) {
        self.entries.insert(path.into(), blob);
    }

    /// Remove the entry at `path`; true if it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        self.entries.remove(path).is_some()
    }
}

/// A commit: a tree snapshot plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Id of the snapshot tree.
    pub tree: Digest,
    /// Parent commit ids; empty for the root, two or more for merges. The
    /// first parent is the mainline, as in git.
    pub parents: Vec<Digest>,
    /// Author name.
    pub author: String,
    /// Commit timestamp.
    pub timestamp: Timestamp,
    /// Commit message.
    pub message: String,
}

impl Commit {
    /// The commit's content address.
    pub fn id(&self) -> Digest {
        let mut payload = Vec::new();
        payload.extend_from_slice(b"tree ");
        payload.extend_from_slice(self.tree.to_hex().as_bytes());
        payload.push(b'\n');
        for p in &self.parents {
            payload.extend_from_slice(b"parent ");
            payload.extend_from_slice(p.to_hex().as_bytes());
            payload.push(b'\n');
        }
        payload.extend_from_slice(format!("author {} {}\n", self.author, self.timestamp.0).as_bytes());
        payload.push(b'\n');
        payload.extend_from_slice(self.message.as_bytes());
        let mut buf = Vec::with_capacity(payload.len() + 16);
        buf.extend_from_slice(format!("commit {}\0", payload.len()).as_bytes());
        buf.extend_from_slice(&payload);
        sha1(&buf)
    }
}

/// Any stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// File contents.
    Blob(Blob),
    /// Snapshot.
    Tree(Tree),
    /// Commit.
    Commit(Commit),
}

impl Object {
    /// The object's content address.
    pub fn id(&self) -> Digest {
        match self {
            Object::Blob(b) => b.id(),
            Object::Tree(t) => t.id(),
            Object::Commit(c) => c.id(),
        }
    }

    /// Object kind as a short string (for stats and errors).
    pub fn kind(&self) -> &'static str {
        match self {
            Object::Blob(_) => "blob",
            Object::Tree(_) => "tree",
            Object::Commit(_) => "commit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_address_matches_git() {
        // Same vector as the sha1 module: git hash-object of "hello".
        let b = Blob::new(&b"hello"[..]);
        assert_eq!(b.id().to_hex(), "b6fc4c620b67d95f953a5c1c1230aaab5db5a1b0");
    }

    #[test]
    fn equal_content_equal_address() {
        let a = Blob::new(&b"same"[..]);
        let b = Blob::new(Bytes::from_static(b"same"));
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), Blob::new(&b"different"[..]).id());
    }

    #[test]
    fn tree_address_is_order_independent() {
        let blob = Blob::new(&b"x"[..]).id();
        let mut t1 = Tree::new();
        t1.insert("b.sql", blob);
        t1.insert("a.sql", blob);
        let mut t2 = Tree::new();
        t2.insert("a.sql", blob);
        t2.insert("b.sql", blob);
        assert_eq!(t1.id(), t2.id());
    }

    #[test]
    fn tree_address_depends_on_paths_and_blobs() {
        let x = Blob::new(&b"x"[..]).id();
        let y = Blob::new(&b"y"[..]).id();
        let mut t1 = Tree::new();
        t1.insert("a.sql", x);
        let mut t2 = Tree::new();
        t2.insert("a.sql", y);
        let mut t3 = Tree::new();
        t3.insert("b.sql", x);
        assert_ne!(t1.id(), t2.id());
        assert_ne!(t1.id(), t3.id());
    }

    #[test]
    fn commit_address_covers_all_fields() {
        let tree = Tree::new().id();
        let base = Commit {
            tree,
            parents: vec![],
            author: "alice".into(),
            timestamp: Timestamp(1_000),
            message: "init".into(),
        };
        let mut other = base.clone();
        other.message = "init!".into();
        assert_ne!(base.id(), other.id());
        let mut other = base.clone();
        other.timestamp = Timestamp(1_001);
        assert_ne!(base.id(), other.id());
        let mut other = base.clone();
        other.parents = vec![base.id()];
        assert_ne!(base.id(), other.id());
    }

    #[test]
    fn tree_mutation_api() {
        let mut t = Tree::new();
        let b = Blob::new(&b"z"[..]).id();
        t.insert("s.sql", b);
        assert_eq!(t.get("s.sql"), Some(b));
        assert!(t.remove("s.sql"));
        assert!(!t.remove("s.sql"));
        assert_eq!(t.get("s.sql"), None);
    }
}
