//! Commit-graph walks and per-file history extraction.
//!
//! The study's raw material is "a list of commits (a.k.a. versions) of the
//! same DDL file, ordered over time". [`file_history`] produces exactly
//! that: walking the commit graph from a branch tip, keeping the commits
//! where the file's content changed (including its first appearance), oldest
//! first.
//!
//! Two walk strategies are provided because git histories are non-linear — a
//! stated threat to validity in the paper (§III-C): the **first-parent**
//! walk follows the mainline only (what a release manager sees), while the
//! **full-DAG** walk visits every commit in topological order, merging
//! side-branch edits into the timeline. The ablation bench compares the two.

use crate::object::Commit;
use crate::repo::{RepoError, Repository};
use crate::sha1::Digest;
use crate::timestamp::Timestamp;
use std::collections::HashSet;

/// How to linearize a commit DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalkStrategy {
    /// Follow only the first parent of each commit (git's mainline view).
    #[default]
    FirstParent,
    /// Visit all ancestors, ordered by timestamp (ties broken by id) — the
    /// "entire schema history" view the paper investigates.
    FullDag,
}

/// One version of a file: the commit that changed it plus the content.
#[derive(Debug, Clone, PartialEq)]
pub struct FileVersion {
    /// Commit id that introduced this version.
    pub commit: Digest,
    /// Commit timestamp.
    pub timestamp: Timestamp,
    /// Commit author.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Full file content at this version.
    pub content: String,
}

/// List ancestor commits of `tip` oldest-first under the given strategy.
///
/// # Errors
///
/// [`RepoError::MissingObject`] if the graph references an object missing
/// from the store.
pub fn linearize(
    repo: &Repository,
    tip: Digest,
    strategy: WalkStrategy,
) -> Result<Vec<(Digest, Commit)>, RepoError> {
    match strategy {
        WalkStrategy::FirstParent => {
            let mut chain = Vec::new();
            let mut cursor = Some(tip);
            while let Some(id) = cursor {
                let commit = repo.commit_object(id)?;
                cursor = commit.parents.first().copied();
                chain.push((id, commit));
            }
            chain.reverse();
            Ok(chain)
        }
        WalkStrategy::FullDag => {
            let mut seen: HashSet<Digest> = HashSet::new();
            let mut stack = vec![tip];
            let mut all = Vec::new();
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                let commit = repo.commit_object(id)?;
                stack.extend(commit.parents.iter().copied());
                all.push((id, commit));
            }
            // Timestamp order approximates topological order for histories
            // whose clocks are sane; ties broken deterministically by id.
            all.sort_by(|a, b| {
                a.1.timestamp
                    .cmp(&b.1.timestamp)
                    .then_with(|| a.0.cmp(&b.0))
            });
            Ok(all)
        }
    }
}

/// Extract the history of `path` on the current branch of `repo`:
/// the sequence of *distinct* versions, oldest first. Commits that do not
/// change the file's content (or where the file is absent) are skipped —
/// exactly the behaviour of `git log --follow -- <path>` modulo renames.
///
/// Deleting the file does **not** emit a version; if it is later re-added
/// with the same content as the last version, no new version is emitted
/// either (content-identity semantics, which is what the paper's extraction
/// of ".sql file versions" observes).
///
/// # Errors
///
/// Propagates [`RepoError`] for unknown branches or missing objects.
pub fn file_history(
    repo: &Repository,
    path: &str,
    strategy: WalkStrategy,
) -> Result<Vec<FileVersion>, RepoError> {
    let _span = schevo_obs::span!("vcs.file_history", path = path);
    let Some(tip) = repo.head() else {
        return Ok(Vec::new());
    };
    let chain = linearize(repo, tip, strategy)?;
    let mut versions: Vec<FileVersion> = Vec::new();
    let mut last_emitted: Option<Digest> = None;
    for (id, commit) in chain {
        let tree = repo
            .store()
            .tree(commit.tree)
            .ok_or(RepoError::MissingObject(commit.tree))?;
        let Some(blob_id) = tree.get(path) else {
            continue;
        };
        // A commit contributes a version when it changed the file relative
        // to its first parent (git's TREESAME test), and the content is not
        // the one we already emitted (delete-and-readd, branch interleaving).
        let parent_blob = match commit.parents.first() {
            None => None,
            Some(&p) => {
                let pc = repo.commit_object(p)?;
                let ptree = repo
                    .store()
                    .tree(pc.tree)
                    .ok_or(RepoError::MissingObject(pc.tree))?;
                ptree.get(path)
            }
        };
        if Some(blob_id) == parent_blob || Some(blob_id) == last_emitted {
            continue;
        }
        let blob = repo
            .store()
            .blob(blob_id)
            .ok_or(RepoError::MissingObject(blob_id))?;
        versions.push(FileVersion {
            commit: id,
            timestamp: commit.timestamp,
            author: commit.author.clone(),
            message: commit.message.clone(),
            content: blob.as_text(),
        });
        last_emitted = Some(blob_id);
    }
    Ok(versions)
}

/// Count all commits reachable from the current branch tip (project-level
/// commit count, used for the "DDL commits are 4–6% of project commits"
/// narrative statistics).
pub fn commit_count(repo: &Repository) -> Result<usize, RepoError> {
    match repo.head() {
        None => Ok(0),
        Some(tip) => Ok(linearize(repo, tip, WalkStrategy::FullDag)?.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::FileChange;

    fn ts(n: i64) -> Timestamp {
        Timestamp(n * 86_400)
    }

    fn repo_with_linear_history() -> Repository {
        let mut r = Repository::new("t/linear");
        r.commit(&[FileChange::write("s.sql", "v1")], "a", ts(0), "c0")
            .unwrap();
        r.commit(&[FileChange::write("other.txt", "x")], "a", ts(1), "c1: unrelated")
            .unwrap();
        r.commit(&[FileChange::write("s.sql", "v2")], "a", ts(2), "c2")
            .unwrap();
        r.commit(&[FileChange::write("s.sql", "v2")], "a", ts(3), "c3: touch, same content")
            .unwrap();
        r.commit(&[FileChange::write("s.sql", "v3")], "a", ts(4), "c4")
            .unwrap();
        r
    }

    #[test]
    fn file_history_keeps_distinct_versions_only() {
        let r = repo_with_linear_history();
        let h = file_history(&r, "s.sql", WalkStrategy::FirstParent).unwrap();
        let contents: Vec<_> = h.iter().map(|v| v.content.as_str()).collect();
        assert_eq!(contents, vec!["v1", "v2", "v3"]);
        assert!(h[0].timestamp < h[1].timestamp);
    }

    #[test]
    fn absent_file_yields_empty_history() {
        let r = repo_with_linear_history();
        assert!(file_history(&r, "missing.sql", WalkStrategy::FirstParent)
            .unwrap()
            .is_empty());
        let empty = Repository::new("t/empty");
        assert!(file_history(&empty, "s.sql", WalkStrategy::FirstParent)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn delete_and_readd_same_content_no_new_version() {
        let mut r = Repository::new("t/readd");
        r.commit(&[FileChange::write("s.sql", "v1")], "a", ts(0), "add")
            .unwrap();
        r.commit(&[FileChange::delete("s.sql")], "a", ts(1), "drop")
            .unwrap();
        r.commit(&[FileChange::write("s.sql", "v1")], "a", ts(2), "restore")
            .unwrap();
        let h = file_history(&r, "s.sql", WalkStrategy::FirstParent).unwrap();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn delete_and_readd_different_content_new_version() {
        let mut r = Repository::new("t/readd2");
        r.commit(&[FileChange::write("s.sql", "v1")], "a", ts(0), "add")
            .unwrap();
        r.commit(&[FileChange::delete("s.sql")], "a", ts(1), "drop")
            .unwrap();
        r.commit(&[FileChange::write("s.sql", "v2")], "a", ts(2), "redo")
            .unwrap();
        let h = file_history(&r, "s.sql", WalkStrategy::FirstParent).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn first_parent_skips_side_branch_edits() {
        let mut r = Repository::new("t/branchy");
        r.commit(&[FileChange::write("s.sql", "v1")], "a", ts(0), "base")
            .unwrap();
        r.branch_and_checkout("side").unwrap();
        r.commit(&[FileChange::write("s.sql", "side-v")], "b", ts(1), "side edit")
            .unwrap();
        r.checkout(Repository::DEFAULT_BRANCH).unwrap();
        r.commit(&[FileChange::write("readme", "hi")], "a", ts(2), "main edit")
            .unwrap();
        r.merge("side", "a", ts(3), "merge side").unwrap();

        // First-parent: v1 then (at the merge) side-v arrives on mainline.
        let fp = file_history(&r, "s.sql", WalkStrategy::FirstParent).unwrap();
        let fp_contents: Vec<_> = fp.iter().map(|v| v.content.as_str()).collect();
        assert_eq!(fp_contents, vec!["v1", "side-v"]);
        // The version is attributed to the merge commit, not the side commit.
        assert_eq!(fp[1].message, "merge side");

        // Full DAG: the side commit itself appears in the timeline.
        let full = file_history(&r, "s.sql", WalkStrategy::FullDag).unwrap();
        let full_contents: Vec<_> = full.iter().map(|v| v.content.as_str()).collect();
        assert_eq!(full_contents, vec!["v1", "side-v"]);
        assert_eq!(full[1].message, "side edit");
    }

    #[test]
    fn commit_count_covers_all_branches_reachable() {
        let mut r = Repository::new("t/count");
        r.commit(&[], "a", ts(0), "c0").unwrap();
        r.branch_and_checkout("side").unwrap();
        r.commit(&[], "a", ts(1), "c1").unwrap();
        r.checkout(Repository::DEFAULT_BRANCH).unwrap();
        r.commit(&[], "a", ts(2), "c2").unwrap();
        r.merge("side", "a", ts(3), "m").unwrap();
        assert_eq!(commit_count(&r).unwrap(), 4);
    }

    #[test]
    fn full_dag_orders_by_timestamp() {
        let mut r = Repository::new("t/order");
        r.commit(&[], "a", ts(0), "c0").unwrap();
        r.branch_and_checkout("side").unwrap();
        r.commit(&[], "a", ts(5), "late side").unwrap();
        r.checkout(Repository::DEFAULT_BRANCH).unwrap();
        r.commit(&[], "a", ts(2), "early main").unwrap();
        r.merge("side", "a", ts(6), "m").unwrap();
        let tip = r.head().unwrap();
        let chain = linearize(&r, tip, WalkStrategy::FullDag).unwrap();
        let msgs: Vec<_> = chain.iter().map(|(_, c)| c.message.as_str()).collect();
        assert_eq!(msgs, vec!["c0", "early main", "late side", "m"]);
    }
}
