//! Property tests for the VCS substrate: content addressing, history
//! extraction, and SHA-1 streaming invariance.

use proptest::prelude::*;
use schevo_vcs::history::{file_history, WalkStrategy};
use schevo_vcs::repo::{FileChange, Repository};
use schevo_vcs::sha1::{sha1, Sha1};
use schevo_vcs::timestamp::Timestamp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hashing the same bytes in arbitrary chunkings yields the same digest.
    #[test]
    fn sha1_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                cuts in proptest::collection::vec(0usize..2048, 0..8)) {
        let oneshot = sha1(&data);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha1::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c.max(prev)]);
            prev = c.max(prev);
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Committing N distinct contents to one path yields an N-version
    /// history with the same contents, in order.
    #[test]
    fn linear_history_roundtrip(contents in proptest::collection::vec("[a-z]{0,40}", 1..20)) {
        let mut distinct = Vec::new();
        for c in &contents {
            if distinct.last() != Some(c) {
                distinct.push(c.clone());
            }
        }
        let mut repo = Repository::new("prop/linear");
        for (i, c) in contents.iter().enumerate() {
            repo.commit(
                &[FileChange::write("s.sql", c.clone())],
                "gen",
                Timestamp(i as i64 * 3600),
                &format!("v{i}"),
            ).unwrap();
        }
        let hist = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        let got: Vec<String> = hist.into_iter().map(|v| v.content).collect();
        prop_assert_eq!(got, distinct);
    }

    /// First-parent and full-DAG walks agree on purely linear histories.
    #[test]
    fn walks_agree_on_linear_histories(contents in proptest::collection::vec("[a-z]{0,12}", 1..12)) {
        let mut repo = Repository::new("prop/agree");
        for (i, c) in contents.iter().enumerate() {
            repo.commit(
                &[FileChange::write("s.sql", c.clone())],
                "gen",
                Timestamp(i as i64 * 60),
                "m",
            ).unwrap();
        }
        let a = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        let b = file_history(&repo, "s.sql", WalkStrategy::FullDag).unwrap();
        prop_assert_eq!(a, b);
    }

    /// History timestamps are nondecreasing under the first-parent walk when
    /// commits were created with nondecreasing clocks.
    #[test]
    fn history_timestamps_monotone(steps in proptest::collection::vec((0i64..10_000, "[a-z]{0,10}"), 1..15)) {
        let mut repo = Repository::new("prop/mono");
        let mut clock = 0i64;
        for (dt, content) in &steps {
            clock += dt;
            repo.commit(
                &[FileChange::write("s.sql", content.clone())],
                "gen",
                Timestamp(clock),
                "m",
            ).unwrap();
        }
        let hist = file_history(&repo, "s.sql", WalkStrategy::FirstParent).unwrap();
        for w in hist.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
