//! Extension studies (§VI open paths): foreign-key treatment and
//! table-level Electrolysis statistics — regenerates the extension table
//! and benchmarks the per-project analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_core::fk::fk_profile;
use schevo_core::model::SchemaHistory;
use schevo_core::tables::table_lives;
use schevo_corpus::exemplar::{build, FigureTag};
use schevo_report::extensions_table;
use schevo_vcs::history::{file_history, WalkStrategy};

fn bench(c: &mut Criterion) {
    print_block("Extensions — FK & table lives", &extensions_table(paper_study()));

    let project = build(FigureTag::Fig9);
    let versions =
        file_history(&project.repo, &project.ddl_path, WalkStrategy::FirstParent).unwrap();
    let history = SchemaHistory::from_file_versions("bench", &versions).unwrap();
    c.bench_function("extensions/table_lives_fig9", |b| {
        b.iter(|| table_lives(&history).len())
    });
    c.bench_function("extensions/fk_profile_fig9", |b| {
        b.iter(|| fk_profile(&history).fk_births)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
