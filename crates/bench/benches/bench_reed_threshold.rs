//! §III-B: the reed-limit derivation — regenerates the derived threshold
//! and benchmarks the percentile split.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_core::heartbeat::derive_reed_threshold;

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block(
        "Reed limit (§III-B)",
        &format!(
            "derived from single-active-commit projects: {} (paper: 14; used: {})",
            study.derived_reed_threshold, study.used_reed_threshold
        ),
    );
    let singles: Vec<u64> = study
        .profiles
        .iter()
        .filter(|p| p.active_commits == 1)
        .map(|p| p.total_activity)
        .collect();
    c.bench_function("reed/derive_threshold", |b| {
        b.iter(|| derive_reed_threshold(&singles))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
