//! Funnel experiment (§III-A): regenerates the collection-funnel table and
//! benchmarks a full funnel pass over the 1/10-scale universe.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, paper_universe, print_block, small_universe};
use schevo_pipeline::funnel::run_funnel;
use schevo_report::funnel_table;
use schevo_vcs::history::WalkStrategy;

fn bench(c: &mut Criterion) {
    // Regenerate the paper's funnel counts at full scale.
    print_block("Funnel (§III-A), paper scale", &funnel_table(&paper_study().report));
    let _ = paper_universe();

    let small = small_universe();
    c.bench_function("funnel/small_universe_pass", |b| {
        b.iter(|| {
            let out = run_funnel(small, WalkStrategy::FirstParent);
            assert!(out.report.analyzed > 0);
            out.report
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
