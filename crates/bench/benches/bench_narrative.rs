//! §IV/§VI narrative statistics — regenerates the measured-vs-paper table
//! and benchmarks the narrative aggregation (via a small-universe study).

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block, small_universe};
use schevo_pipeline::study::{run_study, StudyOptions};
use schevo_report::narrative_table;

fn bench(c: &mut Criterion) {
    print_block("Narrative (§IV/§VI)", &narrative_table(paper_study()));
    let small = small_universe();
    c.bench_function("narrative/small_study", |b| {
        b.iter(|| run_study(small, StudyOptions::default()).narrative.rigid_pct_of_cloned)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
