//! Fig. 11 / §V: the Kruskal–Wallis battery — regenerates the pairwise
//! matrix plus the overall tests and benchmarks them.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_core::taxa::{ProjectClass, Taxon};
use schevo_report::fig11_matrix;
use schevo_stats::kruskal::kruskal_wallis;
use schevo_stats::shapiro::shapiro_wilk;

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block("Fig. 11 — pairwise KW + §V battery", &fig11_matrix(study));

    let groups: Vec<Vec<f64>> = Taxon::ALL
        .iter()
        .map(|&t| {
            study
                .profiles
                .iter()
                .filter(|p| p.class == ProjectClass::Taxon(t))
                .map(|p| p.total_activity as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
    c.bench_function("fig11/kw_overall_6_groups", |b| {
        b.iter(|| kruskal_wallis(&refs).unwrap().statistic)
    });
    let activities: Vec<f64> = study.profiles.iter().map(|p| p.total_activity as f64).collect();
    c.bench_function("fig11/shapiro_wilk_n195", |b| {
        b.iter(|| shapiro_wilk(&activities).unwrap().w)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
