//! Table I / Fig. 3: the taxa classification tree — regenerates the
//! definitions table and benchmarks classification throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_core::taxa::{classify, TaxonFeatures};
use schevo_report::table1_definitions;

fn bench(c: &mut Criterion) {
    print_block("Table I — taxa definitions", &table1_definitions());
    let features: Vec<TaxonFeatures> = paper_study()
        .profiles
        .iter()
        .map(|p| TaxonFeatures {
            commits: p.commits,
            active_commits: p.active_commits,
            total_activity: p.total_activity,
            reeds: p.reeds,
        })
        .collect();
    c.bench_function("classify/195_projects", |b| {
        b.iter(|| {
            features
                .iter()
                .map(|&f| classify(f))
                .filter(|c| c.taxon().is_some())
                .count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
