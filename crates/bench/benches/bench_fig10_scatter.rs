//! Fig. 10: the activity × active-commits scatter — regenerates the plot
//! (ASCII + CSV) and benchmarks the series construction.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_report::{fig10_csv, fig10_scatter};

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block("Fig. 10 — scatter", &fig10_scatter(study));
    let csv = fig10_csv(study);
    println!("(CSV rows: {})", csv.len());
    c.bench_function("fig10/render_scatter", |b| {
        b.iter(|| fig10_scatter(study).len())
    });
    c.bench_function("fig10/build_csv", |b| b.iter(|| fig10_csv(study).len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
