//! Resident vs streaming mining at scale: run the same `MiningEngine`
//! over the in-memory `Universe` and over a sharded on-disk store, at
//! 1× and 20× of the 1/20-scale base corpus (20× ≈ the paper-scale
//! record count), recording throughput (analyzed projects per second of
//! mine wall time) and peak RSS per configuration.
//!
//! Peak RSS is attributed per configuration by resetting the kernel's
//! `VmHWM` watermark (`/proc/self/clear_refs`) before each pass. The
//! reset snaps the watermark to the *current* RSS, so memory the
//! allocator retains from an earlier pass can inflate a later row —
//! which is why the passes run smallest first and the streaming 20×
//! pass runs before the resident 20× one. When the reset is
//! unavailable the table is labelled cumulative.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use schevo_bench::{print_block, SEED};
use schevo_corpus::store::{generate_into_store, ShardStore};
use schevo_corpus::universe::{generate, UniverseConfig};
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_obs::procinfo;
use schevo_pipeline::{MiningEngine, MiningOutput, StudyOptions};

const SHARDS: usize = 8;

fn engine() -> MiningEngine {
    MiningEngine::new(StudyOptions {
        reed_threshold: Some(REED_THRESHOLD),
        workers: 1,
        cache: true,
        ..StudyOptions::default()
    })
}

fn config(factor: usize) -> UniverseConfig {
    UniverseConfig::small(SEED, 20).with_multiplier(factor)
}

fn store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("schevo_bench_scale_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

struct Pass {
    backend: &'static str,
    factor: usize,
    analyzed: usize,
    mine_s: f64,
    peak_rss_mb: f64,
}

/// One instrumented end-to-end pass: build the backend, reset the RSS
/// watermark, mine, sample. Returns the row plus the output so callers
/// can cross-check the backends against each other.
fn pass(backend: &'static str, factor: usize) -> (Pass, MiningOutput) {
    let cfg = config(factor);
    let reset_ok = procinfo::reset_peak_rss();
    let (out, mine_s) = match backend {
        "resident" => {
            let u = generate(cfg);
            let start = Instant::now();
            let out = engine().mine(&u).expect("clean corpus mines");
            (out, start.elapsed().as_secs_f64())
        }
        _ => {
            let dir = store_dir(&format!("{backend}_{factor}"));
            generate_into_store(cfg, &dir, SHARDS).expect("store writes");
            let store = ShardStore::open(&dir).expect("store opens");
            let start = Instant::now();
            let out = engine().mine(&store).expect("clean store mines");
            let elapsed = start.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&dir);
            (out, elapsed)
        }
    };
    let peak = if reset_ok {
        procinfo::peak_rss_bytes().unwrap_or(0)
    } else {
        0
    };
    let row = Pass {
        backend,
        factor,
        analyzed: out.mined.len(),
        mine_s,
        peak_rss_mb: peak as f64 / 1e6,
    };
    (row, out)
}

fn bench(c: &mut Criterion) {
    // Instrumented passes, smallest first; streaming 20× before
    // resident 20× so the bounded-memory row is not inflated by
    // allocator retention from the resident universe.
    let (r1, resident_1x) = pass("resident", 1);
    let (s1, streaming_1x) = pass("streaming", 1);
    let (s20, _) = pass("streaming", 20);
    let (r20, _) = pass("resident", 20);
    assert_eq!(
        resident_1x.mined, streaming_1x.mined,
        "backends disagree on the mined profiles"
    );

    let mut body = String::from(
        "backend    scale  analyzed  mine wall  projects/s  peak RSS (per-pass)\n",
    );
    for p in [&r1, &s1, &s20, &r20] {
        body.push_str(&format!(
            "{:<10} {:>4}x {:>9} {:>9.2}s {:>11.0} {:>12.0} MB\n",
            p.backend,
            p.factor,
            p.analyzed,
            p.mine_s,
            p.analyzed as f64 / p.mine_s,
            p.peak_rss_mb,
        ));
    }
    if r1.peak_rss_mb == 0.0 {
        body.push_str("(peak-RSS reset unavailable: RSS column suppressed)\n");
    }
    print_block("Resident vs streaming mining (1/20-scale base)", &body);

    // Steady-state timing at 1×: criterion iterates the mine pass with
    // the backend pre-built, so the comparison isolates source
    // streaming + mining from corpus generation.
    let cfg = config(1);
    let universe = generate(cfg);
    let dir = store_dir("criterion");
    generate_into_store(cfg, &dir, SHARDS).expect("store writes");
    let store = ShardStore::open(&dir).expect("store opens");

    let mut group = c.benchmark_group("scale_mine");
    group.throughput(Throughput::Elements(r1.analyzed as u64));
    group.bench_function("resident", |b| {
        b.iter(|| engine().mine(&universe).expect("clean corpus mines").mined.len())
    });
    group.bench_function("streaming", |b| {
        b.iter(|| engine().mine(&store).expect("clean store mines").mined.len())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
