//! Observability overhead: the same end-to-end mining pass (funnel
//! output of the 1/10-scale universe, every version parsed, every
//! transition diffed) run bare and fully instrumented — tracer enabled
//! with its shard buffers drained each pass, metrics registry attached,
//! progress heartbeat wired. The acceptance bar for the observability
//! layer is < 5% median overhead; `print_block` reports the measured
//! percentage alongside the criterion groups.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use schevo_bench::{print_block, small_universe};
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_obs::metrics::Registry;
use schevo_obs::{trace, ObsHooks};
use schevo_pipeline::funnel::run_funnel;
use schevo_pipeline::{MiningEngine, SliceSource, StudyOptions};
use schevo_vcs::history::WalkStrategy;
use std::time::{Duration, Instant};

fn mine(candidates: &[schevo_pipeline::funnel::CandidateHistory], obs: &ObsHooks) -> usize {
    let engine = MiningEngine::new(StudyOptions {
        reed_threshold: Some(REED_THRESHOLD),
        workers: 2,
        cache: true,
        obs: obs.clone(),
        ..StudyOptions::default()
    });
    let out = engine
        .mine(&SliceSource::new(candidates))
        .expect("clean corpus mines");
    assert!(out.quarantine.is_clean());
    out.mined.len()
}

/// Median wall time of `runs` passes of `f` (after one warmup pass).
fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let outcome = run_funnel(small_universe(), WalkStrategy::FirstParent);
    let candidates = &outcome.analyzed;
    let bare_hooks = ObsHooks::default();

    // Manual median comparison: this is the number the acceptance bar
    // reads, independent of criterion's own reporting.
    const RUNS: usize = 11;
    trace::set_enabled(false);
    let bare = median_secs(RUNS, || {
        mine(candidates, &bare_hooks);
    });
    trace::set_enabled(true);
    let instrumented = median_secs(RUNS, || {
        let hooks = ObsHooks::with_registry(std::sync::Arc::new(Registry::new()));
        mine(candidates, &hooks);
        let events = trace::drain();
        assert!(!events.is_empty(), "tracer was supposed to be on");
    });
    trace::set_enabled(false);
    let _ = trace::drain();
    let overhead_pct = (instrumented / bare - 1.0) * 100.0;
    print_block(
        "Observability overhead (1/10 scale, 2 workers, cached)",
        &format!(
            "bare median {:.4}s  instrumented median {:.4}s  overhead {overhead_pct:+.2}% \
             (acceptance bar: < 5%)",
            bare, instrumented
        ),
    );

    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(candidates.len() as u64));
    group.bench_function("bare", |b| {
        trace::set_enabled(false);
        b.iter(|| mine(candidates, &bare_hooks))
    });
    group.bench_function("instrumented", |b| {
        trace::set_enabled(true);
        b.iter(|| {
            let hooks = ObsHooks::with_registry(std::sync::Arc::new(Registry::new()));
            let n = mine(candidates, &hooks);
            trace::drain();
            n
        });
        trace::set_enabled(false);
        let _ = trace::drain();
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
