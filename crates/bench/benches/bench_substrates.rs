//! Substrate micro-benchmarks: DDL parsing, diffing, SHA-1 hashing, and
//! history extraction — the building blocks every experiment rests on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use schevo_core::diff::diff;
use schevo_ddl::parse_schema;
use schevo_ddl::render::render_schema;
use schevo_ddl::schema::{Attribute, Schema, Table};
use schevo_ddl::types::DataType;
use schevo_vcs::sha1::sha1;

fn sample_schema(tables: usize, arity: usize) -> Schema {
    let mut s = Schema::new();
    for t in 0..tables {
        let mut table = Table::new(format!("table_{t}"));
        for a in 0..arity {
            table.push_attribute(Attribute::new(
                format!("col_{a}"),
                if a % 2 == 0 { DataType::int() } else { DataType::varchar(255) },
            ));
        }
        table.set_primary_key(vec!["col_0".to_string()]);
        s.upsert_table(table);
    }
    s
}

fn bench(c: &mut Criterion) {
    let schema = sample_schema(40, 12);
    let sql = render_schema(&schema);
    let mut g = c.benchmark_group("substrates");
    g.throughput(Throughput::Bytes(sql.len() as u64));
    g.bench_function("ddl_parse_40_tables", |b| {
        b.iter(|| parse_schema(black_box(&sql)).unwrap().table_count())
    });
    g.finish();

    let mut grown = schema.clone();
    let mut extra = Table::new("extra");
    extra.push_attribute(Attribute::new("id", DataType::int()));
    grown.upsert_table(extra);
    c.bench_function("diff_40_tables", |b| {
        b.iter(|| diff(black_box(&schema), black_box(&grown)).activity())
    });

    let blob = sql.as_bytes();
    let mut g = c.benchmark_group("sha1");
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("hash_schema_file", |b| b.iter(|| sha1(black_box(blob))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
