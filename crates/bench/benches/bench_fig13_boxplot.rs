//! Fig. 13: the double box plot — regenerates its data table and benchmarks
//! per-taxon five-number summaries.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_core::taxa::{ProjectClass, Taxon};
use schevo_report::fig13_boxplot;
use schevo_stats::quantile::Quartiles;

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block("Fig. 13 — double box plot data", &fig13_boxplot(study));
    c.bench_function("fig13/per_taxon_quartiles", |b| {
        b.iter(|| {
            Taxon::NON_FROZEN
                .iter()
                .filter_map(|&t| {
                    let v: Vec<f64> = study
                        .profiles
                        .iter()
                        .filter(|p| p.class == ProjectClass::Taxon(t))
                        .map(|p| p.total_activity as f64)
                        .collect();
                    Quartiles::of(&v)
                })
                .count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
