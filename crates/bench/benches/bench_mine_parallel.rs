//! Work-stealing miner scaling: sweep the executor across 1/2/4/8
//! workers with the content-addressed parse/diff cache on and off, over
//! the 1/10-scale funnel output. Candidates are mined once per
//! iteration end-to-end (parse every version, diff every transition,
//! classify), so the sweep shows both thread scaling and cache payoff.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use schevo_bench::{print_block, small_universe};
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_pipeline::exec::ExecStats;
use schevo_pipeline::funnel::{run_funnel, CandidateHistory};
use schevo_pipeline::{MinePolicy, MiningEngine, SliceSource, StudyOptions};
use schevo_vcs::history::WalkStrategy;

fn mine_stats(candidates: &[CandidateHistory], workers: usize, cache: bool) -> (usize, usize, ExecStats) {
    let engine = MiningEngine::new(StudyOptions {
        reed_threshold: Some(REED_THRESHOLD),
        workers,
        cache,
        ..StudyOptions::default()
    })
    .with_policy(MinePolicy::Strict);
    let out = engine
        .mine(&SliceSource::new(candidates))
        .expect("strict mining over a clean corpus");
    (out.mined.len(), out.parse_failures, out.exec)
}

fn bench(c: &mut Criterion) {
    let outcome = run_funnel(small_universe(), WalkStrategy::FirstParent);
    let candidates = &outcome.analyzed;

    // One instrumented pass to report what the cache sees at this scale.
    let (_, _, stats) = mine_stats(candidates, 4, true);
    print_block(
        "Miner cache profile (1/10 scale)",
        &format!(
            "tasks {}  parse {} hits / {} misses  diff {} hits / {} misses",
            stats.tasks, stats.parse_hits, stats.parse_misses, stats.diff_hits, stats.diff_misses
        ),
    );

    let mut group = c.benchmark_group("mine_parallel");
    group.throughput(Throughput::Elements(candidates.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            let label = format!(
                "workers{workers}/{}",
                if cache { "cached" } else { "uncached" }
            );
            group.bench_function(&label, |b| {
                b.iter(|| {
                    let (mined, failures, _) = mine_stats(candidates, workers, cache);
                    assert_eq!(failures, 0);
                    mined
                })
            });
        }
    }
    group.finish();

    // The synthetic universe salts content per project, so the corpus
    // above never repeats a blob and the cache can only lose. Forked
    // histories (same DDL text under many project names — the situation
    // the content-addressed cache exists for) are modelled by cloning
    // every candidate under fresh names: all parses and diffs beyond the
    // first copy hit.
    let forked: Vec<_> = (0..4)
        .flat_map(|copy| {
            candidates.iter().map(move |c| {
                let mut c = c.clone();
                c.name = format!("{}-fork{copy}", c.name);
                c
            })
        })
        .collect();
    let (_, _, stats) = mine_stats(&forked, 4, true);
    print_block(
        "Miner cache profile (4x forked corpus)",
        &format!(
            "tasks {}  parse {} hits / {} misses  diff {} hits / {} misses",
            stats.tasks, stats.parse_hits, stats.parse_misses, stats.diff_hits, stats.diff_misses
        ),
    );
    let mut group = c.benchmark_group("mine_forked");
    group.throughput(Throughput::Elements(forked.len() as u64));
    for cache in [false, true] {
        let label = if cache { "cached" } else { "uncached" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let (mined, failures, _) = mine_stats(&forked, 4, cache);
                assert_eq!(failures, 0);
                mined
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
