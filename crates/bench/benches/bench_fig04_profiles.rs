//! Fig. 4: measurements per taxon — regenerates the full table and
//! benchmarks the profile-aggregation stage.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block, small_universe};
use schevo_pipeline::study::{run_study, StudyOptions};
use schevo_report::{fig04_csv, fig04_table};

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block("Fig. 4 — measurements per taxon", &fig04_table(study));
    print_block("Fig. 4 — CSV", &fig04_csv(study).render());

    let small = small_universe();
    c.bench_function("fig04/study_small_universe", |b| {
        b.iter(|| run_study(small, StudyOptions::default()).taxa.len())
    });
    c.bench_function("fig04/render_table", |b| b.iter(|| fig04_table(study).len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
