//! Figs. 1, 2, 5–9: the per-project exemplars — regenerates each two-panel
//! figure and benchmarks exemplar mining.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::print_block;
use schevo_corpus::exemplar::{all_exemplars, build, FigureTag};
use schevo_report::ProjectSeries;

fn bench(c: &mut Criterion) {
    for (tag, project) in all_exemplars() {
        let series = ProjectSeries::mine(&project);
        let monthly = matches!(tag, FigureTag::Fig1A | FigureTag::Fig1B | FigureTag::Fig9);
        print_block(tag.label(), &series.render(monthly));
    }
    let octav = build(FigureTag::Fig2);
    c.bench_function("exemplars/mine_fig2", |b| {
        b.iter(|| ProjectSeries::mine(&octav).heartbeat.len())
    });
    c.bench_function("exemplars/build_all", |b| b.iter(|| all_exemplars().len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
