//! Fig. 12: quartiles per taxon — regenerates the table and benchmarks the
//! quartile computation.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block};
use schevo_report::fig12_quartiles;
use schevo_stats::quantile::Quartiles;

fn bench(c: &mut Criterion) {
    let study = paper_study();
    print_block("Fig. 12 — quartiles", &fig12_quartiles(study));
    let activities: Vec<f64> = study.profiles.iter().map(|p| p.total_activity as f64).collect();
    c.bench_function("fig12/quartiles_n195", |b| {
        b.iter(|| Quartiles::of(&activities).unwrap().q2)
    });
    c.bench_function("fig12/render", |b| b.iter(|| fig12_quartiles(study).len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
