//! Ablations: reed-threshold sensitivity, walk strategy, rule order.

use criterion::{criterion_group, criterion_main, Criterion};
use schevo_bench::{paper_study, print_block, small_universe};
use schevo_pipeline::ablation::{
    reed_threshold_sensitivity, rule_order_comparison, walk_strategy_comparison,
};

fn bench(c: &mut Criterion) {
    let small = small_universe();
    let points = reed_threshold_sensitivity(small, &[6, 10, 14, 20, 30]);
    let mut body = String::from("threshold  counts (Frozen, AF, FSF, Mod, FSL, Act)\n");
    for p in &points {
        body.push_str(&format!("{:>9}  {:?}\n", p.threshold, p.counts));
    }
    let walk = walk_strategy_comparison(small);
    body.push_str(&format!("\nwalk comparison: {walk:?}\n"));
    let rule = rule_order_comparison(&paper_study().profiles);
    body.push_str(&format!("rule-order comparison (paper scale): {rule:?}\n"));
    print_block("Ablations", &body);

    c.bench_function("ablation/rule_order_195", |b| {
        b.iter(|| rule_order_comparison(&paper_study().profiles).changed)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
