//! Shared fixtures for the benchmark harness: the paper-scale universe and
//! study are built once per process and shared across benchmark functions,
//! so each bench measures its own computation, not corpus generation.

use schevo_corpus::universe::{generate, Universe, UniverseConfig};
use schevo_pipeline::study::{run_study, StudyOptions, StudyResult};
use std::sync::OnceLock;

pub mod lab;
pub mod perflab;

/// The canonical seed of the reproduction.
pub const SEED: u64 = 2019;

/// The paper-scale universe (133,029 records / 365 repositories).
pub fn paper_universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| generate(UniverseConfig::paper(SEED)))
}

/// A 1/10-scale universe for per-iteration benchmarks.
pub fn small_universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| generate(UniverseConfig::small(SEED, 10)))
}

/// The full study over the paper-scale universe.
pub fn paper_study() -> &'static StudyResult {
    static S: OnceLock<StudyResult> = OnceLock::new();
    S.get_or_init(|| run_study(paper_universe(), StudyOptions::default()))
}

/// Print a titled block once (benches regenerate the paper's rows as a side
/// effect of running).
pub fn print_block(title: &str, body: &str) {
    println!("\n================ {title} ================\n{body}");
}
