//! `perflab` — run the variance-controlled perf lab and append to
//! `BENCH_mine.json` / `BENCH_parse.json` history documents.
//!
//! ```text
//! perflab                  # paper tier (appends to the repo-root histories)
//! perflab --bench-smoke    # smoke tier, <10 s, the CI gate
//! perflab --out <dir>      # write reports into <dir> (default: cwd)
//! perflab --check <file>      # validate a report, print its latest median
//! perflab --check-min <file>  # validate a report, print its latest minimum
//! perflab --check-failpoint-overhead <file>
//!                             # print the latest armed-vs-disabled overhead %
//! perflab --history <file>    # render the per-revision median/MAD trend
//!                             # table; exit 1 on a >20% median regression
//! perflab --migrate <file>    # wrap a legacy single-run report as history
//! ```

use schevo_bench::lab::Tier;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut tier = Tier::Paper;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench-smoke" => tier = Tier::Smoke,
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--migrate" => {
                let Some(f) = args.next() else {
                    eprintln!("--migrate needs a report file argument");
                    return ExitCode::FAILURE;
                };
                return match schevo_bench::perflab::migrate(Path::new(&f)) {
                    Ok(true) => {
                        println!("migrated {f} to history format");
                        ExitCode::SUCCESS
                    }
                    Ok(false) => {
                        println!("{f} is already a history document");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("migrate failed for {f}: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--history" => {
                let Some(f) = args.next() else {
                    eprintln!("--history needs a report file argument");
                    return ExitCode::FAILURE;
                };
                return match schevo_bench::perflab::history(Path::new(&f)) {
                    Ok((table, regressed)) => {
                        print!("{table}");
                        if regressed {
                            eprintln!("history fence tripped for {f}");
                            ExitCode::FAILURE
                        } else {
                            ExitCode::SUCCESS
                        }
                    }
                    Err(e) => {
                        eprintln!("history failed for {f}: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            flag @ ("--check" | "--check-min" | "--check-failpoint-overhead") => {
                let Some(f) = args.next() else {
                    eprintln!("{flag} needs a report file argument");
                    return ExitCode::FAILURE;
                };
                let stat = match flag {
                    "--check" => schevo_bench::perflab::check(Path::new(&f)),
                    "--check-min" => schevo_bench::perflab::check_min(Path::new(&f)),
                    _ => schevo_bench::perflab::check_failpoint_overhead(Path::new(&f)),
                };
                return match stat {
                    Ok(v) => {
                        println!("{v}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("check failed for {f}: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: perflab [--bench-smoke] [--out <dir>] [--check <file>] [--check-min <file>] [--history <file>] [--migrate <file>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    match schevo_bench::perflab::run(tier, &out_dir) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perflab failed: {e}");
            ExitCode::FAILURE
        }
    }
}
