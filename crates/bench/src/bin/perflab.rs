//! `perflab` — run the variance-controlled perf lab and emit
//! `BENCH_mine.json` / `BENCH_parse.json`.
//!
//! ```text
//! perflab                  # paper tier (the committed repo-root reports)
//! perflab --bench-smoke    # smoke tier, <10 s, the CI gate
//! perflab --out <dir>      # write reports into <dir> (default: cwd)
//! perflab --check <file>      # validate a report, print its median
//! perflab --check-min <file>  # validate a report, print its minimum
//! ```

use schevo_bench::lab::Tier;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut tier = Tier::Paper;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench-smoke" => tier = Tier::Smoke,
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            flag @ ("--check" | "--check-min") => {
                let Some(f) = args.next() else {
                    eprintln!("{flag} needs a report file argument");
                    return ExitCode::FAILURE;
                };
                let stat = if flag == "--check" {
                    schevo_bench::perflab::check(Path::new(&f))
                } else {
                    schevo_bench::perflab::check_min(Path::new(&f))
                };
                return match stat {
                    Ok(v) => {
                        println!("{v}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("check failed for {f}: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: perflab [--bench-smoke] [--out <dir>] [--check <file>] [--check-min <file>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    match schevo_bench::perflab::run(tier, &out_dir) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perflab failed: {e}");
            ExitCode::FAILURE
        }
    }
}
