//! The variance-controlled perf lab: warmup + repeated in-process runs,
//! robust summary statistics (median/MAD), full sample distributions, and
//! self-validating `BENCH_*.json` reports.
//!
//! Criterion answers "how fast is this function"; the lab answers "did the
//! hot path regress" with a protocol CI can gate on:
//!
//! 1. every workload runs `warmup` times unmeasured, so the first-touch
//!    costs (page faults, lazy statics, branch-predictor training) never
//!    land in a sample;
//! 2. the measured runs are summarized by **median** and **MAD** (median
//!    absolute deviation), which a single noisy neighbor on a shared box
//!    cannot drag the way a mean/stddev pair can;
//! 3. the full sample vector is kept in the report, so a later reader can
//!    re-derive any statistic without re-running;
//! 4. [`validate_bench_json`] checks every report against the
//!    `schevo-bench/v1` shape before it is written *and* in CI before it
//!    is compared, so a torn or hand-edited file fails loudly.

use serde::Serialize;
use serde_json::Value;

/// Report schema identifier; bump when the JSON shape changes.
pub const BENCH_SCHEMA: &str = "schevo-bench/v1";

/// Which scale a lab run measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Sub-10-second tier for CI gating (heavily scaled-down corpus).
    Smoke,
    /// The scale the study itself runs at (1/20 of the full corpus, the
    /// same divisor as the committed goldens).
    Paper,
}

impl Tier {
    /// The string stored in the report's `tier` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Paper => "paper",
        }
    }
}

/// Robust summary of one sample vector, in the sample's unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SummaryStats {
    /// Type-7 median.
    pub median: f64,
    /// Median absolute deviation: `median(|x − median|)`.
    pub mad: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 10th percentile (type-7).
    pub p10: f64,
    /// 90th percentile (type-7).
    pub p90: f64,
}

/// Summarize a sample vector. `None` when empty.
pub fn summarize(samples: &[f64]) -> Option<SummaryStats> {
    if samples.is_empty() {
        return None;
    }
    let median = schevo_stats::median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - median).abs()).collect();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in samples {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    Some(SummaryStats {
        median,
        mad: schevo_stats::median(&deviations),
        mean: sum / samples.len() as f64,
        min,
        max,
        p10: schevo_stats::quantile(samples, 0.10),
        p90: schevo_stats::quantile(samples, 0.90),
    })
}

/// One lab measurement: the protocol parameters, every sample, and the
/// robust summary. Serializes to the `BENCH_*.json` shape.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA`].
    pub schema: String,
    /// Workload name (`mine`, `parse`).
    pub name: String,
    /// `smoke` or `paper`.
    pub tier: String,
    /// Corpus seed the workload was built from.
    pub seed: u64,
    /// Unmeasured warmup runs executed before sampling.
    pub warmup_runs: usize,
    /// Number of measured runs (`== samples.len()`).
    pub measured_runs: usize,
    /// Unit of every sample (`seconds`).
    pub unit: String,
    /// Per-run wall times, in run order.
    pub samples: Vec<f64>,
    /// Robust summary of `samples`.
    pub stats: SummaryStats,
}

impl BenchReport {
    /// Serialize to pretty JSON (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }
}

/// Run one workload under the lab protocol: `warmup` unmeasured calls,
/// then `runs` measured calls of `f` (which returns one run's wall time in
/// seconds). Panics if `runs` is zero — a report without samples is
/// meaningless.
pub fn run_lab(
    name: &str,
    tier: Tier,
    seed: u64,
    warmup: usize,
    runs: usize,
    mut f: impl FnMut() -> f64,
) -> BenchReport {
    assert!(runs > 0, "a lab run needs at least one measured sample");
    for _ in 0..warmup {
        let _ = f();
    }
    let samples: Vec<f64> = (0..runs).map(|_| f()).collect();
    let stats = match summarize(&samples) {
        Some(s) => s,
        None => unreachable!("runs > 0 was asserted above"),
    };
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        name: name.to_string(),
        tier: tier.as_str().to_string(),
        seed,
        warmup_runs: warmup,
        measured_runs: runs,
        unit: "seconds".to_string(),
        samples,
        stats,
    }
}

fn require_f64(stats: &Value, key: &str) -> Result<f64, String> {
    let v = stats
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `stats.{key}`"))?;
    if !v.is_finite() {
        return Err(format!("field `stats.{key}` is not finite"));
    }
    Ok(v)
}

/// Validate a parsed `BENCH_*.json` document against the
/// `schevo-bench/v1` shape. Returns the first violation found.
pub fn validate_bench_json(doc: &Value) -> Result<(), String> {
    let obj = doc;
    if obj.as_map().is_none() {
        return Err("report is not a JSON object".to_string());
    }
    match obj.get("schema").and_then(Value::as_str) {
        Some(s) if s == BENCH_SCHEMA => {}
        Some(s) => return Err(format!("unknown schema `{s}`, expected `{BENCH_SCHEMA}`")),
        None => return Err("missing string field `schema`".to_string()),
    }
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing string field `name`")?;
    if name.is_empty() {
        return Err("empty `name`".to_string());
    }
    match obj.get("tier").and_then(Value::as_str) {
        Some("smoke") | Some("paper") => {}
        Some(t) => return Err(format!("unknown tier `{t}`")),
        None => return Err("missing string field `tier`".to_string()),
    }
    if obj.get("seed").and_then(Value::as_u64).is_none() {
        return Err("missing integer field `seed`".to_string());
    }
    let warmup = obj
        .get("warmup_runs")
        .and_then(Value::as_u64)
        .ok_or("missing integer field `warmup_runs`")?;
    let _ = warmup;
    let measured = obj
        .get("measured_runs")
        .and_then(Value::as_u64)
        .ok_or("missing integer field `measured_runs`")?;
    match obj.get("unit").and_then(Value::as_str) {
        Some("seconds") => {}
        Some(u) => return Err(format!("unknown unit `{u}`")),
        None => return Err("missing string field `unit`".to_string()),
    }
    let samples = obj
        .get("samples")
        .and_then(Value::as_array)
        .ok_or("missing array field `samples`")?;
    if samples.is_empty() {
        return Err("`samples` is empty".to_string());
    }
    if samples.len() as u64 != measured {
        return Err(format!(
            "`measured_runs` ({measured}) disagrees with samples.len() ({})",
            samples.len()
        ));
    }
    for (i, s) in samples.iter().enumerate() {
        match s.as_f64() {
            Some(v) if v.is_finite() && v >= 0.0 => {}
            _ => return Err(format!("sample[{i}] is not a finite non-negative number")),
        }
    }
    let stats = obj.get("stats").ok_or("missing object field `stats`")?;
    if stats.as_map().is_none() {
        return Err("`stats` is not a JSON object".to_string());
    }
    for key in ["median", "mad", "mean", "min", "max", "p10", "p90"] {
        let v = require_f64(stats, key)?;
        if key != "mad" && v < 0.0 {
            return Err(format!("stats.{key} is negative"));
        }
    }
    let min = require_f64(stats, "min")?;
    let max = require_f64(stats, "max")?;
    let med = require_f64(stats, "median")?;
    if min > max || med < min || med > max {
        return Err("stats ordering violated (min ≤ median ≤ max)".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_exact_on_fixed_samples() {
        // Odd count: median is the middle element; MAD is the median of
        // |x − 5| = [4, 3, 0, 2, 5] → sorted [0, 2, 3, 4, 5] → 3.
        let s = summarize(&[1.0, 2.0, 5.0, 7.0, 10.0]).unwrap();
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 3.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
    }

    #[test]
    fn summary_even_count_interpolates() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        // |x − 2.5| = [1.5, 0.5, 0.5, 1.5] → median 1.0.
        assert_eq!(s.mad, 1.0);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn percentiles_match_r_type7() {
        // R: quantile(1:10, c(.1, .9)) → 1.9, 9.1.
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = summarize(&v).unwrap();
        assert!((s.p10 - 1.9).abs() < 1e-12);
        assert!((s.p90 - 9.1).abs() < 1e-12);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = summarize(&[3.0; 7]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mad, 0.0);
        assert_eq!((s.min, s.max), (3.0, 3.0));
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn run_lab_warms_up_then_samples() {
        let mut calls = 0usize;
        let report = run_lab("t", Tier::Smoke, 1, 2, 5, || {
            calls += 1;
            calls as f64
        });
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        // Samples are the measured calls only (3..=7).
        assert_eq!(report.samples, vec![3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(report.stats.median, 5.0);
        assert_eq!(report.warmup_runs, 2);
        assert_eq!(report.measured_runs, 5);
    }

    #[test]
    fn own_reports_validate() {
        let report = run_lab("mine", Tier::Paper, 2019, 1, 3, || 0.5);
        let doc: Value = serde_json::from_str(&report.to_json_string()).unwrap();
        validate_bench_json(&doc).unwrap();
    }

    /// Replace `doc[key]` in place (the vendored `Value` has no IndexMut).
    fn set(doc: &mut Value, key: &str, v: Value) {
        if let Value::Map(entries) = doc {
            if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                e.1 = v;
            }
        }
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let good = run_lab("parse", Tier::Smoke, 2019, 0, 2, || 1.0);
        let doc: Value = serde_json::from_str(&good.to_json_string()).unwrap();
        validate_bench_json(&doc).unwrap();

        let mut wrong_schema = doc.clone();
        set(&mut wrong_schema, "schema", Value::Str("schevo-bench/v0".into()));
        assert!(validate_bench_json(&wrong_schema).is_err());

        let mut bad_tier = doc.clone();
        set(&mut bad_tier, "tier", Value::Str("warp".into()));
        assert!(validate_bench_json(&bad_tier).is_err());

        let mut count_mismatch = doc.clone();
        set(&mut count_mismatch, "measured_runs", Value::U64(99));
        assert!(validate_bench_json(&count_mismatch).is_err());

        let mut no_samples = doc.clone();
        set(&mut no_samples, "samples", Value::Seq(vec![]));
        assert!(validate_bench_json(&no_samples).is_err());

        let mut negative_sample = doc.clone();
        set(
            &mut negative_sample,
            "samples",
            Value::Seq(vec![Value::F64(-1.0), Value::F64(1.0)]),
        );
        assert!(validate_bench_json(&negative_sample).is_err());

        let mut missing_stat = doc.clone();
        if let Some(Value::Map(stats)) = match &mut missing_stat {
            Value::Map(entries) => entries
                .iter_mut()
                .find(|(k, _)| k == "stats")
                .map(|(_, v)| v),
            _ => None,
        } {
            stats.retain(|(k, _)| k != "mad");
        }
        assert!(validate_bench_json(&missing_stat).is_err());

        assert!(validate_bench_json(&Value::U64(42)).is_err());
    }
}
