//! The perf-lab workloads: what `BENCH_mine.json` and `BENCH_parse.json`
//! actually measure, shared by the `perflab` binary and the smoke-tier
//! integration test.
//!
//! * **mine** — one full `MiningEngine::mine` pass over the resident
//!   universe, single worker, caches off, so every run exercises the
//!   parse + diff hot path end to end (cache hits would measure the cache,
//!   not the rewrite).
//! * **parse** — `parse_schema` over every DDL file version of every
//!   materialized repository, extracted once up front so the runs time the
//!   parser alone, not VCS walking.

use crate::lab::{run_lab, validate_bench_json, BenchReport, Tier};
use crate::SEED;
use schevo_corpus::universe::{generate, Universe, UniverseConfig};
use schevo_pipeline::{MiningEngine, StudyOptions};
use schevo_vcs::history::{file_history, WalkStrategy};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Corpus scale divisor per tier. Paper tier matches the committed
/// goldens (`--scale 20`); smoke is 4× smaller again so the whole lab
/// finishes inside CI's 10-second budget.
fn scale_divisor(tier: Tier) -> usize {
    match tier {
        Tier::Smoke => 80,
        Tier::Paper => 20,
    }
}

/// Measured runs per tier (after warmup). Smoke measures five runs —
/// the CI fence compares minima, and a deeper sample makes the minimum
/// robust to transient load on a shared box.
fn protocol(tier: Tier) -> (usize, usize) {
    match tier {
        Tier::Smoke => (1, 5),
        Tier::Paper => (2, 5),
    }
}

fn build_universe(tier: Tier) -> Universe {
    generate(UniverseConfig::small(SEED, scale_divisor(tier)))
}

/// Every DDL file version in the universe, in deterministic
/// (SQL-Collection, path, history) order.
fn ddl_corpus(universe: &Universe) -> Vec<String> {
    let mut texts = Vec::new();
    for entry in &universe.sql_collection {
        let Some(repo) = universe.materialized.get(&entry.repo_name) else {
            continue;
        };
        for path in &entry.sql_paths {
            let Ok(versions) = file_history(repo.repo(), path, WalkStrategy::FirstParent) else {
                continue;
            };
            for v in versions {
                texts.push(v.content);
            }
        }
    }
    texts
}

fn mine_report(universe: &Universe, tier: Tier) -> BenchReport {
    let (warmup, runs) = protocol(tier);
    run_lab("mine", tier, SEED, warmup, runs, || {
        let engine = MiningEngine::new(StudyOptions {
            workers: 1,
            cache: false,
            ..StudyOptions::default()
        });
        let start = Instant::now();
        let out = engine.mine(universe).expect("clean corpus mines");
        let elapsed = start.elapsed().as_secs_f64();
        assert!(!out.mined.is_empty(), "mine workload produced no profiles");
        elapsed
    })
}

fn parse_report(universe: &Universe, tier: Tier) -> BenchReport {
    let corpus = ddl_corpus(universe);
    assert!(!corpus.is_empty(), "parse workload has no DDL versions");
    let (warmup, runs) = protocol(tier);
    run_lab("parse", tier, SEED, warmup, runs, || {
        let start = Instant::now();
        let mut tables = 0usize;
        for sql in &corpus {
            if let Ok(schema) = schevo_ddl::parse_schema(sql) {
                tables += schema.table_count();
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(tables > 0, "parse workload produced no tables");
        elapsed
    })
}

/// Run the full lab at `tier` and write `BENCH_mine.json` and
/// `BENCH_parse.json` into `out_dir`. Every report is schema-validated
/// before it touches disk. Returns the written paths.
pub fn run(tier: Tier, out_dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let universe = build_universe(tier);
    let mut written = Vec::new();
    for report in [mine_report(&universe, tier), parse_report(&universe, tier)] {
        let json = report.to_json_string();
        let doc: serde_json::Value =
            serde_json::from_str(&json).expect("report serializes to valid JSON");
        if let Err(e) = validate_bench_json(&doc) {
            panic!("generated report failed self-validation: {e}");
        }
        let path = out_dir.join(format!("BENCH_{}.json", report.name));
        std::fs::write(&path, json)?;
        written.push(path);
    }
    Ok(written)
}

/// Validate the report at `path` against the perf-lab schema and return
/// the requested summary statistic. This backs `perflab --check` /
/// `--check-min`: the CI gate uses it to schema-check both the freshly
/// produced smoke reports and the checked-in baselines, and to extract
/// the values it fences against.
fn checked_stat(path: &Path, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    validate_bench_json(&doc)?;
    doc.get("stats")
        .and_then(|s| s.get(key))
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| format!("validated report lost its {key}"))
}

/// Schema-check a report and return its median sample.
pub fn check(path: &Path) -> Result<f64, String> {
    checked_stat(path, "median")
}

/// Schema-check a report and return its minimum sample. The CI
/// regression fence compares minima rather than medians: background
/// load can only inflate a timing, never deflate it, so the minimum of
/// five runs approximates quiet-box performance even on a busy runner.
pub fn check_min(path: &Path) -> Result<f64, String> {
    checked_stat(path, "min")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_finishes_under_ten_seconds_and_validates() {
        let dir = std::env::temp_dir().join(format!("schevo_perflab_smoke_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let start = Instant::now();
        let paths = run(Tier::Smoke, &dir).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            elapsed < 10.0,
            "smoke lab took {elapsed:.1}s, budget is 10s"
        );
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let doc: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate_bench_json(&doc).unwrap();
            assert_eq!(
                doc.get("tier").and_then(serde_json::Value::as_str),
                Some("smoke")
            );
            let median = check(p).unwrap();
            let min = check_min(p).unwrap();
            assert!(median.is_finite() && median >= 0.0);
            assert!(min.is_finite() && min <= median);
        }
        let names: Vec<String> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["BENCH_mine.json", "BENCH_parse.json"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_rejects_missing_and_malformed_files() {
        assert!(check(Path::new("/nonexistent/BENCH_mine.json")).is_err());
        assert!(check_min(Path::new("/nonexistent/BENCH_mine.json")).is_err());
        let dir = std::env::temp_dir().join(format!("schevo_perflab_check_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(&bad, "{\"schema\": \"wrong\"}").unwrap();
        assert!(check(&bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
