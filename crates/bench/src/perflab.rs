//! The perf-lab workloads: what `BENCH_mine.json` and `BENCH_parse.json`
//! actually measure, shared by the `perflab` binary and the smoke-tier
//! integration test.
//!
//! * **mine** — one full `MiningEngine::mine` pass over the resident
//!   universe, single worker, caches off, so every run exercises the
//!   parse + diff hot path end to end (cache hits would measure the cache,
//!   not the rewrite).
//! * **parse** — `parse_schema` over every DDL file version of every
//!   materialized repository, extracted once up front so the runs time the
//!   parser alone, not VCS walking.

use crate::lab::{run_lab, validate_bench_json, BenchReport, Tier};
use crate::SEED;
use schevo_core::failpoint;
use schevo_corpus::universe::{generate, Universe, UniverseConfig};
use schevo_pipeline::{MiningEngine, StudyOptions};
use schevo_vcs::history::{file_history, WalkStrategy};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema identifier of the append-only bench *history* files: one
/// entry per lab run, oldest first, each entry a full
/// [`crate::lab::BENCH_SCHEMA`] report. The lab appends to these
/// instead of clobbering them, so `BENCH_mine.json` / `BENCH_parse.json`
/// accumulate a per-PR performance trend.
pub const HISTORY_SCHEMA: &str = "schevo-bench-history/v1";

/// Corpus scale divisor per tier. Paper tier matches the committed
/// goldens (`--scale 20`); smoke is 4× smaller again so the whole lab
/// finishes inside CI's 10-second budget.
fn scale_divisor(tier: Tier) -> usize {
    match tier {
        Tier::Smoke => 80,
        Tier::Paper => 20,
    }
}

/// Measured runs per tier (after warmup). Smoke measures five runs —
/// the CI fence compares minima, and a deeper sample makes the minimum
/// robust to transient load on a shared box.
fn protocol(tier: Tier) -> (usize, usize) {
    match tier {
        Tier::Smoke => (1, 5),
        Tier::Paper => (2, 5),
    }
}

fn build_universe(tier: Tier) -> Universe {
    generate(UniverseConfig::small(SEED, scale_divisor(tier)))
}

/// Every DDL file version in the universe, in deterministic
/// (SQL-Collection, path, history) order.
fn ddl_corpus(universe: &Universe) -> Vec<String> {
    let mut texts = Vec::new();
    for entry in &universe.sql_collection {
        let Some(repo) = universe.materialized.get(&entry.repo_name) else {
            continue;
        };
        for path in &entry.sql_paths {
            let Ok(versions) = file_history(repo.repo(), path, WalkStrategy::FirstParent) else {
                continue;
            };
            for v in versions {
                texts.push(v.content);
            }
        }
    }
    texts
}

fn mine_report(universe: &Universe, tier: Tier) -> BenchReport {
    let (warmup, runs) = protocol(tier);
    run_lab("mine", tier, SEED, warmup, runs, || mine_once(universe))
}

fn parse_report(universe: &Universe, tier: Tier) -> BenchReport {
    let corpus = ddl_corpus(universe);
    assert!(!corpus.is_empty(), "parse workload has no DDL versions");
    let (warmup, runs) = protocol(tier);
    run_lab("parse", tier, SEED, warmup, runs, || {
        let start = Instant::now();
        let mut tables = 0usize;
        for sql in &corpus {
            if let Ok(schema) = schevo_ddl::parse_schema(sql) {
                tables += schema.table_count();
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(tables > 0, "parse workload produced no tables");
        elapsed
    })
}

fn mine_once(universe: &Universe) -> f64 {
    let engine = MiningEngine::new(StudyOptions {
        workers: 1,
        cache: false,
        ..StudyOptions::default()
    });
    let start = Instant::now();
    let out = engine.mine(universe).expect("clean corpus mines");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(!out.mined.is_empty(), "mine workload produced no profiles");
    elapsed
}

/// Interleaved in-process A/B of the mine workload: failpoints disabled
/// (the shipped default — one relaxed atomic load per site) vs armed
/// with an inert schedule (a rule on a site the pipeline never reaches,
/// so every site check runs the registry's full slow path without ever
/// firing). Alternating the legs run-by-run cancels thermal and load
/// drift; comparing minima cancels background noise, which can only
/// inflate a timing. The CI smoke gate fences `overhead_pct` below 1%.
fn failpoint_overhead(universe: &Universe, tier: Tier) -> Value {
    let (warmup, runs) = protocol(tier);
    failpoint::reset();
    for _ in 0..warmup.max(1) {
        let _ = mine_once(universe);
    }
    let mut disabled = Vec::with_capacity(runs);
    let mut armed = Vec::with_capacity(runs);
    for _ in 0..runs {
        failpoint::reset();
        disabled.push(mine_once(universe));
        failpoint::configure("bench.inert=eio@0", 0).expect("inert spec parses");
        armed.push(mine_once(universe));
    }
    failpoint::reset();
    let min_of = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let disabled_min = min_of(&disabled);
    let armed_min = min_of(&armed);
    Value::Map(vec![
        ("disabled_min_s".to_string(), Value::F64(disabled_min)),
        ("armed_min_s".to_string(), Value::F64(armed_min)),
        (
            "overhead_pct".to_string(),
            Value::F64((armed_min / disabled_min - 1.0) * 100.0),
        ),
    ])
}

/// Interpret a bench document as its list of validated report entries:
/// a bare single-run report is one entry; a history document is all of
/// them, in append order. Every entry is schema-checked.
fn entries_of(doc: &Value) -> Result<Vec<Value>, String> {
    if doc.get("schema").and_then(Value::as_str) == Some(HISTORY_SCHEMA) {
        let entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| "history document missing `entries` array".to_string())?;
        if entries.is_empty() {
            return Err("history document has no entries".to_string());
        }
        for e in entries {
            validate_bench_json(e)?;
        }
        Ok(entries.clone())
    } else {
        validate_bench_json(doc)?;
        Ok(vec![doc.clone()])
    }
}

fn render_history(name: &str, entries: Vec<Value>) -> Result<String, String> {
    let doc = Value::Map(vec![
        ("schema".to_string(), Value::Str(HISTORY_SCHEMA.to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("entries".to_string(), Value::Seq(entries)),
    ]);
    serde_json::to_string_pretty(&doc)
        .map(|s| s + "\n")
        .map_err(|e| format!("render history: {e:?}"))
}

fn invalid(detail: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail)
}

/// Run the full lab at `tier` and write `BENCH_mine.json` and
/// `BENCH_parse.json` into `out_dir` as history documents. An existing
/// file — single-run report or history — is **appended to**, never
/// clobbered, so repeated runs accumulate a trend. Every report is
/// schema-validated before it touches disk. Returns the written paths.
pub fn run(tier: Tier, out_dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let universe = build_universe(tier);
    let overhead = failpoint_overhead(&universe, tier);
    let mut written = Vec::new();
    for report in [mine_report(&universe, tier), parse_report(&universe, tier)] {
        let json = report.to_json_string();
        let mut doc: Value = serde_json::from_str(&json).expect("report serializes to valid JSON");
        if let Err(e) = validate_bench_json(&doc) {
            panic!("generated report failed self-validation: {e}");
        }
        // The mine entry carries the failpoint A/B alongside its primary
        // stats; extra fields are schema-tolerated, and `--check-min`
        // keeps reading `stats.min`, so the perf fence is undisturbed.
        if report.name == "mine" {
            if let Value::Map(fields) = &mut doc {
                fields.push(("failpoint_overhead".to_string(), overhead.clone()));
            }
        }
        let path = out_dir.join(format!("BENCH_{}.json", report.name));
        let mut entries = match std::fs::read_to_string(&path) {
            Ok(text) => {
                let existing: Value = serde_json::from_str(&text)
                    .map_err(|e| invalid(format!("existing {}: {e:?}", path.display())))?;
                entries_of(&existing)
                    .map_err(|e| invalid(format!("existing {}: {e}", path.display())))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        entries.push(doc);
        let rendered = render_history(&report.name, entries).map_err(invalid)?;
        std::fs::write(&path, rendered)?;
        written.push(path);
    }
    Ok(written)
}

/// Rewrite a single-run report file as a one-entry history document in
/// place. Idempotent: a file already in history format is validated and
/// left untouched. Returns whether the file was rewritten.
pub fn migrate(path: &Path) -> Result<bool, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    if doc.get("schema").and_then(Value::as_str) == Some(HISTORY_SCHEMA) {
        entries_of(&doc)?;
        return Ok(false);
    }
    validate_bench_json(&doc)?;
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("bench")
        .to_string();
    let rendered = render_history(&name, vec![doc])?;
    std::fs::write(path, rendered).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(true)
}

/// Validate the report at `path` against the perf-lab schema and return
/// the requested summary statistic. This backs `perflab --check` /
/// `--check-min`: the CI gate uses it to schema-check both the freshly
/// produced smoke reports and the checked-in baselines, and to extract
/// the values it fences against.
fn checked_stat(path: &Path, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    // Accept both the single-run report shape and the append-only
    // history shape; a history is judged by its most recent entry.
    let entries = entries_of(&doc)?;
    let latest = entries
        .last()
        .ok_or_else(|| "no entries to check".to_string())?;
    latest
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("validated report lost its {key}"))
}

/// Median regression fence for `--history`: the latest entry failing to
/// stay within +20% of its predecessor's median is flagged.
pub const HISTORY_REGRESSION_PCT: f64 = 20.0;

/// Render the bench document at `path` as a per-entry median/MAD trend
/// table — one row per recorded run, oldest first, with each row's
/// median delta against its predecessor — and flag whether the latest
/// entry's median regressed more than [`HISTORY_REGRESSION_PCT`] over
/// the previous one. Returns `(rendered_table, regressed)`.
pub fn history(path: &Path) -> Result<(String, bool), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    let entries = entries_of(&doc)?;
    let name = doc
        .get("name")
        .or_else(|| entries[0].get("name"))
        .and_then(Value::as_str)
        .unwrap_or("bench")
        .to_string();
    let stat_of = |entry: &Value, key: &str| -> Result<f64, String> {
        entry
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Value::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("entry missing finite stats.{key}"))
    };
    let mut out = format!(
        "history: {name} ({} entr{})\n{:<7}{:<8}{:>12}{:>12}{:>12}{:>10}\n",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
        "entry",
        "tier",
        "median_s",
        "mad_s",
        "min_s",
        "delta%"
    );
    let mut prev_median: Option<f64> = None;
    let mut latest_delta: Option<f64> = None;
    for (i, entry) in entries.iter().enumerate() {
        let median = stat_of(entry, "median")?;
        let mad = stat_of(entry, "mad")?;
        let min = stat_of(entry, "min")?;
        let tier = entry.get("tier").and_then(Value::as_str).unwrap_or("?");
        let delta = prev_median.map(|p| {
            if p > 0.0 {
                (median / p - 1.0) * 100.0
            } else {
                0.0
            }
        });
        out.push_str(&format!(
            "{:<7}{:<8}{:>12.6}{:>12.6}{:>12.6}{:>10}\n",
            i,
            tier,
            median,
            mad,
            min,
            match delta {
                Some(d) => format!("{d:+.1}"),
                None => "-".to_string(),
            }
        ));
        prev_median = Some(median);
        latest_delta = delta;
    }
    let regressed = latest_delta.is_some_and(|d| d > HISTORY_REGRESSION_PCT);
    if let Some(d) = latest_delta {
        if regressed {
            out.push_str(&format!(
                "REGRESSION: latest median {d:+.1}% vs previous entry (fence {HISTORY_REGRESSION_PCT}%)\n"
            ));
        } else {
            out.push_str(&format!(
                "latest median {d:+.1}% vs previous entry (fence {HISTORY_REGRESSION_PCT}%)\n"
            ));
        }
    }
    Ok((out, regressed))
}

/// Schema-check a report and return its median sample.
pub fn check(path: &Path) -> Result<f64, String> {
    checked_stat(path, "median")
}

/// Schema-check a report and return its minimum sample. The CI
/// regression fence compares minima rather than medians: background
/// load can only inflate a timing, never deflate it, so the minimum of
/// five runs approximates quiet-box performance even on a busy runner.
pub fn check_min(path: &Path) -> Result<f64, String> {
    checked_stat(path, "min")
}

/// Return the latest entry's `failpoint_overhead.overhead_pct` — the
/// armed-inert vs disabled mine-workload overhead in percent. The CI
/// smoke gate fences this below 1%.
pub fn check_failpoint_overhead(path: &Path) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    let entries = entries_of(&doc)?;
    let latest = entries
        .last()
        .ok_or_else(|| "no entries to check".to_string())?;
    latest
        .get("failpoint_overhead")
        .and_then(|o| o.get("overhead_pct"))
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| "latest entry has no finite failpoint_overhead.overhead_pct".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_finishes_under_ten_seconds_and_validates() {
        let dir = std::env::temp_dir().join(format!("schevo_perflab_smoke_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let start = Instant::now();
        let paths = run(Tier::Smoke, &dir).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            elapsed < 10.0,
            "smoke lab took {elapsed:.1}s, budget is 10s"
        );
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let doc: Value = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            assert_eq!(
                doc.get("schema").and_then(Value::as_str),
                Some(HISTORY_SCHEMA),
                "fresh lab output is a one-entry history document"
            );
            let entries = doc.get("entries").and_then(Value::as_array).unwrap();
            assert_eq!(entries.len(), 1);
            validate_bench_json(&entries[0]).unwrap();
            assert_eq!(
                entries[0].get("tier").and_then(Value::as_str),
                Some("smoke")
            );
            let median = check(p).unwrap();
            let min = check_min(p).unwrap();
            assert!(median.is_finite() && median >= 0.0);
            assert!(min.is_finite() && min <= median);
        }
        let names: Vec<String> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["BENCH_mine.json", "BENCH_parse.json"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reruns_append_history_entries_and_check_reads_the_latest() {
        let dir = std::env::temp_dir().join(format!(
            "schevo_perflab_history_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let first = run(Tier::Smoke, &dir).unwrap();
        let second = run(Tier::Smoke, &dir).unwrap();
        assert_eq!(first, second, "reruns write the same paths");
        for p in &second {
            let doc: Value = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            let entries = doc.get("entries").and_then(Value::as_array).unwrap();
            assert_eq!(entries.len(), 2, "the second run appended, not clobbered");
            // --check judges the latest entry, so the fence always fences
            // against the run that was just produced.
            let latest_min = entries[1]
                .get("stats")
                .and_then(|s| s.get("min"))
                .and_then(Value::as_f64)
                .unwrap();
            assert_eq!(check_min(p).unwrap(), latest_min);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrate_wraps_single_reports_in_place_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!(
            "schevo_perflab_migrate_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A legacy single-run report, as PR 6 committed them.
        let legacy = crate::lab::run_lab("mine", Tier::Smoke, SEED, 0, 3, || 0.01)
            .to_json_string();
        let path = dir.join("BENCH_mine.json");
        std::fs::write(&path, &legacy).unwrap();
        let single_min = check_min(&path).unwrap();

        assert!(migrate(&path).unwrap(), "first migration rewrites the file");
        let doc: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(HISTORY_SCHEMA));
        assert_eq!(
            doc.get("entries").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
        assert_eq!(
            check_min(&path).unwrap(),
            single_min,
            "migration preserves the checked statistic"
        );
        let bytes = std::fs::read(&path).unwrap();
        assert!(!migrate(&path).unwrap(), "second migration is a no-op");
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "idempotent bytes");

        assert!(migrate(Path::new("/nonexistent/BENCH.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_entries_carry_the_failpoint_overhead_ab() {
        let dir = std::env::temp_dir().join(format!(
            "schevo_perflab_fp_overhead_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let paths = run(Tier::Smoke, &dir).unwrap();
        let mine = &paths[0];
        assert!(mine.ends_with("BENCH_mine.json"));
        let pct = check_failpoint_overhead(mine).unwrap();
        assert!(pct.is_finite(), "overhead is a finite percentage");
        let doc: Value =
            serde_json::from_str(&std::fs::read_to_string(mine).unwrap()).unwrap();
        let entry = &doc.get("entries").and_then(Value::as_array).unwrap()[0];
        let ab = entry.get("failpoint_overhead").expect("A/B recorded");
        for key in ["disabled_min_s", "armed_min_s"] {
            let v = ab.get(key).and_then(Value::as_f64).unwrap();
            assert!(v.is_finite() && v > 0.0, "{key} is a positive timing");
        }
        // The parse entry stays a pure report, and the primary fence
        // statistic is still the mine stats.min, not the A/B.
        assert!(check_failpoint_overhead(&paths[1]).is_err());
        assert!(check_min(mine).unwrap() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_renders_a_trend_table_and_fences_median_regressions() {
        let dir = std::env::temp_dir().join(format!(
            "schevo_perflab_trend_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let entry = |secs: f64| {
            let json = crate::lab::run_lab("mine", Tier::Smoke, SEED, 0, 3, || secs)
                .to_json_string();
            serde_json::from_str::<Value>(&json).unwrap()
        };
        let path = dir.join("BENCH_mine.json");

        // Within the fence: +10% median drift renders, no regression.
        let ok = render_history("mine", vec![entry(0.010), entry(0.011)]).unwrap();
        std::fs::write(&path, ok).unwrap();
        let (table, regressed) = history(&path).unwrap();
        assert!(!regressed, "+10% is inside the 20% fence:\n{table}");
        assert!(table.contains("median_s") && table.contains("+10.0"));
        assert!(table.contains("2 entries"));

        // Past the fence: +25% flags a regression but still renders.
        let bad = render_history("mine", vec![entry(0.010), entry(0.0125)]).unwrap();
        std::fs::write(&path, bad).unwrap();
        let (table, regressed) = history(&path).unwrap();
        assert!(regressed, "+25% must trip the fence:\n{table}");
        assert!(table.contains("REGRESSION"));

        // A single entry has no predecessor: never a regression.
        let single = render_history("mine", vec![entry(0.010)]).unwrap();
        std::fs::write(&path, single).unwrap();
        let (table, regressed) = history(&path).unwrap();
        assert!(!regressed);
        assert!(table.contains("1 entry"));

        // A recovery after a slow entry is negative drift, not a fence trip.
        let recovery =
            render_history("mine", vec![entry(0.010), entry(0.020), entry(0.011)]).unwrap();
        std::fs::write(&path, recovery).unwrap();
        let (_, regressed) = history(&path).unwrap();
        assert!(!regressed, "the fence judges only the latest step");

        assert!(history(Path::new("/nonexistent/BENCH.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_rejects_missing_and_malformed_files() {
        assert!(check(Path::new("/nonexistent/BENCH_mine.json")).is_err());
        assert!(check_min(Path::new("/nonexistent/BENCH_mine.json")).is_err());
        let dir = std::env::temp_dir().join(format!("schevo_perflab_check_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(&bad, "{\"schema\": \"wrong\"}").unwrap();
        assert!(check(&bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
