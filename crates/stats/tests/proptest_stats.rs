//! Property tests for the statistics substrate.

use proptest::prelude::*;
use schevo_stats::describe::Summary;
use schevo_stats::kruskal::kruskal_wallis;
use schevo_stats::quantile::{quantile, Quartiles};
use schevo_stats::rank::{midranks, tie_correction};
use schevo_stats::special::{chi2_sf, gamma_p, gamma_q, normal_cdf, normal_quantile};

fn finite_sample(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rank sums always equal n(n+1)/2 and tie-group sizes partition n.
    #[test]
    fn rank_invariants(v in finite_sample(80)) {
        let (ranks, ties) = midranks(&v);
        let n = v.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert_eq!(ties.iter().sum::<usize>(), v.len());
        let c = tie_correction(&ties, v.len());
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// Quantiles are monotone in p and bounded by the extremes.
    #[test]
    fn quantile_monotone(v in finite_sample(60), ps in proptest::collection::vec(0.0f64..=1.0, 2..6)) {
        let mut ps = ps;
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &p in &ps {
            let q = quantile(&v, p);
            prop_assert!(q >= prev - 1e-9);
            prev = q;
        }
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(quantile(&v, 0.0) == min && quantile(&v, 1.0) == max);
    }

    /// Summary invariants: min ≤ median ≤ max and min ≤ mean ≤ max.
    #[test]
    fn summary_ordering(v in finite_sample(60)) {
        let s = Summary::of(&v).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Quartiles are ordered.
    #[test]
    fn quartiles_ordering(v in finite_sample(60)) {
        let q = Quartiles::of(&v).unwrap();
        prop_assert!(q.min <= q.q1 && q.q1 <= q.q2 && q.q2 <= q.q3 && q.q3 <= q.max);
        prop_assert!(q.iqr() >= 0.0);
    }

    /// P + Q = 1 for the regularized incomplete gamma.
    #[test]
    fn gamma_pq_complement(a in 0.01f64..50.0, x in 0.0f64..100.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "a={a} x={x} sum={s}");
    }

    /// normal_quantile inverts normal_cdf across the open unit interval.
    #[test]
    fn normal_quantile_roundtrip(p in 0.0001f64..0.9999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-6);
    }

    /// chi2 survival values are probabilities and decrease with x.
    #[test]
    fn chi2_sf_behaviour(df in 1.0f64..30.0, x in 0.0f64..200.0) {
        let p = chi2_sf(x, df);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(chi2_sf(x + 1.0, df) <= p + 1e-12);
    }

    /// KW on a group compared with a shifted copy of itself: big shifts give
    /// small p-values; identical groups (modulo jitter-free copy) give H ≈ 0.
    #[test]
    fn kw_shift_detection(base in proptest::collection::vec(0.0f64..100.0, 8..40)) {
        // Deduplicate-free: ties allowed, the implementation corrects them.
        let spread = {
            let min = base.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            max - min
        };
        prop_assume!(spread > 1.0);
        let shifted: Vec<f64> = base.iter().map(|v| v + spread * 10.0 + 1.0).collect();
        let r = kruskal_wallis(&[&base, &shifted]).unwrap();
        prop_assert!(r.p_value < 0.01, "fully separated groups, p={}", r.p_value);
    }

    /// KW is symmetric under group reordering.
    #[test]
    fn kw_group_order_invariance(a in proptest::collection::vec(0.0f64..50.0, 3..20),
                                 b in proptest::collection::vec(10.0f64..80.0, 3..20),
                                 c in proptest::collection::vec(5.0f64..120.0, 3..20)) {
        let all_same = {
            let mut vals: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
            vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
            vals.first() == vals.last()
        };
        prop_assume!(!all_same);
        let r1 = kruskal_wallis(&[&a, &b, &c]).unwrap();
        let r2 = kruskal_wallis(&[&c, &a, &b]).unwrap();
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-9);
    }
}
