//! Shapiro–Wilk normality test (Royston's AS R94 algorithm).
//!
//! The paper uses Shapiro–Wilk to show its activity data are wildly
//! non-normal (`W = 0.24386`, `p < 2.2e-16`), justifying rank-based tests.
//! This is a from-scratch port of Royston (1995), "Remark AS R94",
//! *Applied Statistics* 44(4) — the same algorithm behind R's
//! `shapiro.test`.

use crate::special::{normal_quantile, normal_sf};
use serde::{Deserialize, Serialize};

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapiroWilk {
    /// The W statistic in `(0, 1]`; values near 1 indicate normality.
    pub w: f64,
    /// Approximate p-value for H₀ "the sample is normal".
    pub p_value: f64,
    /// Sample size used.
    pub n: usize,
}

/// Errors from the Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapiroError {
    /// The test requires at least 3 observations.
    TooFewSamples,
    /// All observations identical; W is undefined.
    AllIdentical,
    /// The algorithm's approximations are validated for n ≤ 5000.
    TooManySamples,
}

impl std::fmt::Display for ShapiroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapiroError::TooFewSamples => write!(f, "need at least 3 observations"),
            ShapiroError::AllIdentical => write!(f, "all observations identical"),
            ShapiroError::TooManySamples => write!(f, "n > 5000 unsupported"),
        }
    }
}

impl std::error::Error for ShapiroError {}

/// Run the Shapiro–Wilk test on a sample (3 ≤ n ≤ 5000).
///
/// # Errors
///
/// See [`ShapiroError`].
pub fn shapiro_wilk(sample: &[f64]) -> Result<ShapiroWilk, ShapiroError> {
    let n = sample.len();
    if n < 3 {
        return Err(ShapiroError::TooFewSamples);
    }
    if n > 5000 {
        return Err(ShapiroError::TooManySamples);
    }
    let mut x = sample.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    if x[0] == x[n - 1] {
        return Err(ShapiroError::AllIdentical);
    }

    // Expected normal order statistics (Blom scores).
    let nf = n as f64;
    let mut m: Vec<f64> = (1..=n)
        .map(|i| normal_quantile((i as f64 - 0.375) / (nf + 0.25)))
        .collect();
    let ssumm: f64 = m.iter().map(|v| v * v).sum();
    let rsn = 1.0 / nf.sqrt();

    // Weights a[i]: polynomial-adjusted at the extremes (Royston 1995).
    let mut a = vec![0.0; n];
    let c_n = m[n - 1] / ssumm.sqrt();
    let a_n = -2.706056 * rsn.powi(5) + 4.434685 * rsn.powi(4) - 2.071190 * rsn.powi(3)
        - 0.147981 * rsn * rsn
        + 0.221157 * rsn
        + c_n;
    if n > 5 {
        let c_n1 = m[n - 2] / ssumm.sqrt();
        let a_n1 = -3.582633 * rsn.powi(5) + 5.682633 * rsn.powi(4) - 1.752461 * rsn.powi(3)
            - 0.293762 * rsn * rsn
            + 0.042981 * rsn
            + c_n1;
        let phi = (ssumm - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
            / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
        a[n - 1] = a_n;
        a[n - 2] = a_n1;
        a[0] = -a_n;
        a[1] = -a_n1;
        let phi_sqrt = phi.sqrt();
        for i in 2..n - 2 {
            a[i] = m[i] / phi_sqrt;
        }
    } else {
        a[n - 1] = a_n;
        a[0] = -a_n;
        if n == 3 {
            a[0] = -(0.5f64.sqrt());
            a[2] = 0.5f64.sqrt();
            a[1] = 0.0;
        } else {
            let phi = (ssumm - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
            let phi_sqrt = phi.sqrt();
            for i in 1..n - 1 {
                a[i] = m[i] / phi_sqrt;
            }
        }
    }
    // m is no longer needed; release before computing W to keep peak memory flat.
    m.clear();

    let mean = x.iter().sum::<f64>() / nf;
    let numerator: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>().powi(2);
    let denominator: f64 = x.iter().map(|xi| (xi - mean) * (xi - mean)).sum();
    let w = (numerator / denominator).min(1.0);

    // P-value approximations.
    let p_value = if n == 3 {
        let pi6 = 6.0 / std::f64::consts::PI;
        let stqr = (0.75f64).sqrt().asin();
        (pi6 * (w.sqrt().asin() - stqr)).clamp(0.0, 1.0)
    } else if n <= 11 {
        let g = -2.273 + 0.459 * nf;
        let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf * nf * nf;
        let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf * nf * nf).exp();
        let arg = g - (1.0 - w).ln();
        if arg <= 0.0 {
            // W so close to 1 that the transform degenerates: report p = 1.
            1.0
        } else {
            let z = (-(arg.ln()) - mu) / sigma;
            normal_sf(z)
        }
    } else {
        let u = nf.ln();
        let mu = -1.5861 - 0.31082 * u - 0.083751 * u * u + 0.0038915 * u * u * u;
        let sigma = (-0.4803 - 0.082676 * u + 0.0030302 * u * u).exp();
        let z = ((1.0 - w).ln() - mu) / sigma;
        normal_sf(z)
    };

    Ok(ShapiroWilk { w, p_value, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_n3_linear_sample() {
        // A perfectly linear 3-sample has W = 1 and p = 1 by the exact n=3
        // distribution.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!((r.w - 1.0).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_sequence_matches_r() {
        // R: shapiro.test(1:10) → W = 0.97016, p-value = 0.8924.
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let r = shapiro_wilk(&x).unwrap();
        assert!((r.w - 0.9702).abs() < 0.005, "W = {}", r.w);
        assert!((r.p_value - 0.892).abs() < 0.03, "p = {}", r.p_value);
    }

    #[test]
    fn near_normal_sample_is_accepted() {
        // Deterministic approximately-normal data via the quantile function.
        let x: Vec<f64> = (1..=100)
            .map(|i| crate::special::normal_quantile(i as f64 / 101.0))
            .collect();
        let r = shapiro_wilk(&x).unwrap();
        assert!(r.w > 0.98, "W = {}", r.w);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn power_law_sample_is_rejected_hard() {
        // A power-law-ish sample like the paper's activity data: mostly tiny
        // values, a few enormous ones → W far below 1, p ≈ 0.
        let mut x: Vec<f64> = vec![1.0; 150];
        for i in 0..45 {
            x.push(((i % 9) as f64 + 1.0) * 100.0);
        }
        // Break exact ties slightly so the sample is not degenerate.
        for (i, v) in x.iter_mut().enumerate() {
            *v += i as f64 * 1e-6;
        }
        let r = shapiro_wilk(&x).unwrap();
        assert!(r.w < 0.75, "W = {}", r.w);
        assert!(r.p_value < 1e-12, "p = {}", r.p_value);
    }

    #[test]
    fn error_cases() {
        assert_eq!(shapiro_wilk(&[1.0, 2.0]), Err(ShapiroError::TooFewSamples));
        assert_eq!(
            shapiro_wilk(&[5.0, 5.0, 5.0, 5.0]),
            Err(ShapiroError::AllIdentical)
        );
        let big = vec![0.0; 5001];
        assert_eq!(shapiro_wilk(&big), Err(ShapiroError::TooManySamples));
    }

    #[test]
    fn w_is_within_unit_interval() {
        let samples: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0, 2.0, 9.0],
            (1..=37).map(|i| (i as f64).powi(3)).collect(),
            vec![-5.0, 0.0, 5.0, 100.0, -3.3, 2.2, 8.8],
        ];
        for s in samples {
            let r = shapiro_wilk(&s).unwrap();
            assert!(r.w > 0.0 && r.w <= 1.0);
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn small_n_branch_4_and_5() {
        let r4 = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(r4.w > 0.95, "uniform 4-sample near-normal, W = {}", r4.w);
        let r5 = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert!(r5.w < r4.w, "outlier drops W");
    }
}
