//! Ranking with midranks for ties — the backbone of the Kruskal–Wallis test.

/// Assign ranks 1..n to `values`, giving tied observations the average of
/// the ranks they span (midranks). Returns ranks aligned with the input
/// order, plus the tie-group sizes (needed for tie correction).
///
/// # Panics
///
/// Panics if the input contains NaN.
pub fn midranks(values: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in rank input")
    });
    let mut ranks = vec![0.0; n];
    let mut tie_sizes = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        tie_sizes.push(j - i + 1);
        i = j + 1;
    }
    (ranks, tie_sizes)
}

/// The tie-correction factor `C = 1 − Σ(t³−t) / (n³−n)`; 1.0 when there are
/// no ties (or fewer than 2 observations).
pub fn tie_correction(tie_sizes: &[usize], n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    let num: f64 = tie_sizes
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let den = (n as f64).powi(3) - n as f64;
    1.0 - num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks_without_ties() {
        let (r, ties) = midranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
        assert_eq!(ties, vec![1, 1, 1]);
    }

    #[test]
    fn midranks_for_ties() {
        // values: 1, 2, 2, 3 → ranks 1, 2.5, 2.5, 4
        let (r, ties) = midranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ties, vec![1, 2, 1]);
    }

    #[test]
    fn all_equal() {
        let (r, ties) = midranks(&[7.0; 5]);
        assert!(r.iter().all(|&x| x == 3.0));
        assert_eq!(ties, vec![5]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Σranks must always be n(n+1)/2 regardless of ties.
        let samples: Vec<Vec<f64>> = vec![
            vec![5.0, 5.0, 1.0, 3.0, 3.0, 3.0],
            vec![2.0],
            vec![1.0, 2.0, 3.0, 4.0],
        ];
        for s in samples {
            let (r, _) = midranks(&s);
            let n = s.len() as f64;
            assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tie_correction_values() {
        assert_eq!(tie_correction(&[1, 1, 1], 3), 1.0);
        // n=4, one tie pair: C = 1 - (8-2)/(64-4) = 1 - 0.1 = 0.9
        assert!((tie_correction(&[1, 2, 1], 4) - 0.9).abs() < 1e-12);
        assert_eq!(tie_correction(&[1], 1), 1.0);
    }

    #[test]
    fn empty_input() {
        let (r, ties) = midranks(&[]);
        assert!(r.is_empty());
        assert!(ties.is_empty());
    }
}
