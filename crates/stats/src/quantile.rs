//! Quantiles with R's type-7 interpolation (the default of R, NumPy and
//! spreadsheet software — the tooling behind the paper's Fig. 12 quartiles).

use serde::{Deserialize, Serialize};

/// The five-number summary used by the paper's quartile tables (Fig. 12)
/// and double box plot (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub q2: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Quartiles {
    /// Compute the five-number summary of a sample. `None` when empty.
    pub fn of(values: &[f64]) -> Option<Quartiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Quartiles {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            q2: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Type-7 quantile of an unsorted sample.
///
/// # Panics
///
/// Panics when `values` is empty, `p` is outside `[0, 1]`, or the sample
/// contains NaN.
pub fn quantile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, p)
}

/// Type-7 quantile of an already-sorted sample.
///
/// `q = x[⌊h⌋] + (h − ⌊h⌋)·(x[⌊h⌋+1] − x[⌊h⌋])` with `h = (n−1)p`.
///
/// # Panics
///
/// Panics when `values` is empty or `p` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
    let h = (sorted.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = h - h.floor();
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median via type-7 quantile.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_r_type7() {
        // R: quantile(c(1,2,3,4,5,6,7,8,9,10), c(.25,.5,.75))
        //    25%: 3.25, 50%: 5.5, 75%: 7.75
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert!((quantile(&v, 0.25) - 3.25).abs() < 1e-12);
        assert!((quantile(&v, 0.50) - 5.50).abs() < 1e-12);
        assert!((quantile(&v, 0.75) - 7.75).abs() < 1e-12);
    }

    #[test]
    fn endpoints() {
        let v = [5.0, 1.0, 9.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 3.0, 100.0]), 3.0);
    }

    #[test]
    fn quartiles_struct() {
        let v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let q = Quartiles::of(&v).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 3.0);
        assert_eq!(q.q2, 5.0);
        assert_eq!(q.q3, 7.0);
        assert_eq!(q.max, 9.0);
        assert_eq!(q.iqr(), 4.0);
        assert!(Quartiles::of(&[]).is_none());
    }

    #[test]
    fn unsorted_input_is_fine() {
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&v), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn out_of_range_p_panics() {
        quantile(&[1.0], 1.5);
    }
}
