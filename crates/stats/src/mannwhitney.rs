//! The Mann–Whitney U test (two-sample Wilcoxon rank-sum), normal
//! approximation with tie correction.
//!
//! The paper's pairwise comparisons use two-group Kruskal–Wallis, which is
//! equivalent; this module provides the U-statistic formulation as an
//! independent cross-check (the equivalence is property-tested).

use crate::rank::{midranks, tie_correction};
use crate::special::normal_sf;
use serde::{Deserialize, Serialize};

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Two-sided p-value (normal approximation, tie-corrected).
    pub p_value: f64,
    /// The standardized z score.
    pub z: f64,
}

/// Errors from the Mann–Whitney test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MannWhitneyError {
    /// One of the samples is empty.
    EmptySample,
    /// All pooled observations are identical.
    AllIdentical,
}

impl std::fmt::Display for MannWhitneyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MannWhitneyError::EmptySample => write!(f, "samples must be non-empty"),
            MannWhitneyError::AllIdentical => write!(f, "all observations identical"),
        }
    }
}

impl std::error::Error for MannWhitneyError {}

/// Run the two-sided Mann–Whitney U test.
///
/// # Errors
///
/// See [`MannWhitneyError`].
pub fn mann_whitney(a: &[f64], b: &[f64]) -> Result<MannWhitney, MannWhitneyError> {
    if a.is_empty() || b.is_empty() {
        return Err(MannWhitneyError::EmptySample);
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let (ranks, ties) = midranks(&pooled);
    let c = tie_correction(&ties, pooled.len());
    if c <= 0.0 {
        return Err(MannWhitneyError::AllIdentical);
    }
    let r1: f64 = ranks[..a.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mean_u = n1 * n2 / 2.0;
    // Tie-corrected variance.
    let n = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term(&ties, n));
    let z = if var_u > 0.0 {
        (u1 - mean_u) / var_u.sqrt()
    } else {
        0.0
    };
    Ok(MannWhitney {
        u: u1,
        z,
        p_value: (2.0 * normal_sf(z.abs())).min(1.0),
    })
}

fn tie_term(tie_sizes: &[usize], n: f64) -> f64 {
    let s: f64 = tie_sizes
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    s / (n * (n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal_wallis;

    #[test]
    fn separated_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney(&a, &b).unwrap();
        assert_eq!(r.u, 0.0, "complete separation");
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn identical_distributions_not_significant() {
        let a: Vec<f64> = (0..20).map(|i| (i * 7 % 20) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| (i * 3 % 20) as f64 + 0.5).collect();
        let r = mann_whitney(&a, &b).unwrap();
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn agrees_with_two_group_kruskal_wallis() {
        // KW with k = 2 satisfies H = z² (both chi-square_1), so p-values
        // coincide under the same tie correction.
        let a = [1.0, 5.0, 7.0, 3.0, 9.0, 11.0];
        let b = [2.0, 8.0, 4.0, 10.0, 12.0, 6.5, 14.0];
        let mw = mann_whitney(&a, &b).unwrap();
        let kw = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(
            (mw.z * mw.z - kw.statistic).abs() < 1e-9,
            "z² = {} vs H = {}",
            mw.z * mw.z,
            kw.statistic
        );
        assert!((mw.p_value - kw.p_value).abs() < 1e-9);
    }

    #[test]
    fn equivalence_holds_with_ties() {
        let a = [1.0, 1.0, 2.0, 3.0, 3.0];
        let b = [2.0, 2.0, 3.0, 4.0];
        let mw = mann_whitney(&a, &b).unwrap();
        let kw = kruskal_wallis(&[&a, &b]).unwrap();
        assert!((mw.z * mw.z - kw.statistic).abs() < 1e-9);
    }

    #[test]
    fn error_cases() {
        assert_eq!(mann_whitney(&[], &[1.0]), Err(MannWhitneyError::EmptySample));
        assert_eq!(
            mann_whitney(&[3.0, 3.0], &[3.0, 3.0]),
            Err(MannWhitneyError::AllIdentical)
        );
    }
}
