//! Special functions: log-gamma, regularized incomplete gamma, error
//! function, normal and chi-squared distributions.
//!
//! Implemented from scratch (Lanczos approximation; series + Lentz continued
//! fraction for the incomplete gamma; Acklam's rational approximation for
//! the normal quantile) and validated in unit tests against reference values
//! from R/scipy.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes scheme).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return if x <= 0.0 { 0.0 } else { 1.0 };
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return if x <= 0.0 { 1.0 } else { 0.0 };
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function, via the incomplete gamma identity
/// `erf(x) = P(1/2, x²)` for `x ≥ 0`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(z)`, accurate in the far tail.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// |relative error| < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Chi-squared survival function: `P(X > x)` for `X ~ χ²(df)`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // math.lgamma(10.3) = 13.48203678613836
        assert!(close(ln_gamma(10.3), 13.482_036_786_138_36, 1e-12));
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 2.0), (5.0, 1.0), (10.0, 20.0)] {
            assert!(close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12));
        }
    }

    #[test]
    fn gamma_p_reference_values() {
        // scipy.special.gammainc(2, 2) = 0.5939941502901618
        assert!(close(gamma_p(2.0, 2.0), 0.593_994_150_290_161_8, 1e-10));
        // scipy.special.gammainc(0.5, 0.5) = 0.6826894921370859
        assert!(close(gamma_p(0.5, 0.5), 0.682_689_492_137_085_9, 1e-10));
    }

    #[test]
    fn erf_reference_values() {
        // erf(1) = 0.8427007929497149
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
        assert_eq!(erf(0.0), 0.0);
        // erfc(2) = 0.004677734981063127
        assert!(close(erfc(2.0), 0.004_677_734_981_063_127, 1e-9));
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-12));
        // Φ(1.96) = 0.9750021048517795
        assert!(close(normal_cdf(1.96), 0.975_002_104_851_779_5, 1e-9));
        // Tail: 1-Φ(6) = 9.865876450377018e-10
        assert!(close(normal_sf(6.0), 9.865_876_450_377_018e-10, 1e-6));
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-8, 0.001, 0.025, 0.3, 0.5, 0.77, 0.975, 0.999, 1.0 - 1e-8] {
            let z = normal_quantile(p);
            assert!(
                close(normal_cdf(z), p, 1e-7),
                "p={p} z={z} cdf={}",
                normal_cdf(z)
            );
        }
        assert!(close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-8));
    }

    #[test]
    #[should_panic(expected = "normal_quantile requires")]
    fn normal_quantile_rejects_out_of_range() {
        normal_quantile(0.0);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // R: pchisq(3.841459, df=1, lower.tail=FALSE) = 0.05
        assert!(close(chi2_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-9));
        // R: pchisq(11.0705, df=5, lower.tail=FALSE) = 0.05
        assert!(close(chi2_sf(11.070_497_693_516_35, 5.0), 0.05, 1e-9));
        // The paper's headline: chi2=178.22, df=5 → p < 2.2e-16.
        assert!(chi2_sf(178.22, 5.0) < 2.2e-16);
        assert!(chi2_sf(175.27, 5.0) < 2.2e-16);
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
    }

    #[test]
    fn chi2_sf_is_monotone_in_x() {
        let mut prev = 1.0;
        for i in 1..100 {
            let p = chi2_sf(i as f64 * 0.5, 5.0);
            assert!(p <= prev);
            prev = p;
        }
    }
}
