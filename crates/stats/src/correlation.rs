//! Rank correlation: Spearman's ρ with a t-approximation p-value.
//!
//! Used to quantify the Fig. 10 relationship (projects with more active
//! commits carry more activity) instead of leaving it to the eye.

use crate::rank::midranks;
use crate::special::normal_sf;
use serde::{Deserialize, Serialize};

/// Result of a Spearman rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spearman {
    /// The rank-correlation coefficient ρ ∈ [−1, 1].
    pub rho: f64,
    /// Two-sided p-value (normal approximation via the Fisher
    /// transformation; adequate for n ≳ 10).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Errors from correlation computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationError {
    /// The two samples differ in length.
    LengthMismatch,
    /// Fewer than 3 pairs.
    TooFewSamples,
    /// One of the variables is constant; ρ is undefined.
    ConstantInput,
}

impl std::fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrelationError::LengthMismatch => write!(f, "samples differ in length"),
            CorrelationError::TooFewSamples => write!(f, "need at least 3 pairs"),
            CorrelationError::ConstantInput => write!(f, "constant variable"),
        }
    }
}

impl std::error::Error for CorrelationError {}

/// Spearman's ρ between two samples (ties handled by midranks; ρ computed
/// as the Pearson correlation of the ranks, which is the standard
/// tie-corrected definition).
///
/// # Errors
///
/// See [`CorrelationError`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Spearman, CorrelationError> {
    if x.len() != y.len() {
        return Err(CorrelationError::LengthMismatch);
    }
    let n = x.len();
    if n < 3 {
        return Err(CorrelationError::TooFewSamples);
    }
    let (rx, _) = midranks(x);
    let (ry, _) = midranks(y);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = rx[i] - mean;
        let dy = ry[i] - mean;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(CorrelationError::ConstantInput);
    }
    let rho = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    // Fisher z-transform with the Spearman standard error √(1.06/(n−3)).
    let p_value = if n > 3 && rho.abs() < 1.0 {
        let z = 0.5 * ((1.0 + rho) / (1.0 - rho)).ln();
        let se = (1.06 / (n as f64 - 3.0)).sqrt();
        2.0 * normal_sf((z / se).abs())
    } else {
        0.0
    };
    Ok(Spearman {
        rho,
        p_value: p_value.min(1.0),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_relations() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let r = spearman(&x, &y).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let r = spearman(&x, &y_neg).unwrap();
        assert!((r.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_low_rho() {
        // A deterministic "shuffled" permutation with no monotone trend.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 17) % 40) as f64).collect();
        let r = spearman(&x, &y).unwrap();
        assert!(r.rho.abs() < 0.35, "rho = {}", r.rho);
        assert!(r.p_value > 0.05);
    }

    #[test]
    fn strong_relation_is_significant() {
        let x: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        // Monotone with small deterministic perturbation.
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v + ((i % 3) as f64)).collect();
        let r = spearman(&x, &y).unwrap();
        assert!(r.rho > 0.95);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn ties_are_handled() {
        let x = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0, 3.0, 4.0];
        let r = spearman(&x, &y).unwrap();
        assert!(r.rho > 0.8);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            spearman(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(CorrelationError::LengthMismatch)
        );
        assert_eq!(
            spearman(&[1.0, 2.0], &[1.0, 2.0]),
            Err(CorrelationError::TooFewSamples)
        );
        assert_eq!(
            spearman(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]),
            Err(CorrelationError::ConstantInput)
        );
    }
}
