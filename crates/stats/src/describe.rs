//! Descriptive statistics: the `min / median / max / avg` quadruple used in
//! every cell of the paper's Fig. 4, plus helpers.

use crate::quantile::median;
use serde::{Deserialize, Serialize};

/// The summary quadruple reported per taxon and measure in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// Median (R type-7 interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Summary {
            min,
            median: median(values),
            max,
            mean: sum / values.len() as f64,
            n: values.len(),
        })
    }

    /// Summarize integer-valued observations.
    pub fn of_counts<I: IntoIterator<Item = u64>>(values: I) -> Option<Summary> {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

/// Sample mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Unbiased sample variance (n−1 denominator); 0.0 when n < 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Fraction of observations satisfying `pred`, as a percentage in `[0, 100]`.
pub fn percent_where<T, F: Fn(&T) -> bool>(values: &[T], pred: F) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    100.0 * values.iter().filter(|v| pred(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 2.8).abs() < 1e-12);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn summary_even_sample_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_counts(std::iter::empty()).is_none());
    }

    #[test]
    fn summary_of_counts() {
        let s = Summary::of_counts([2u64, 2, 11]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 11.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn variance_known_value() {
        // var([2,4,4,4,5,5,7,9]) with n-1 = 32/7
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn percent_where_counts() {
        let v = [1, 2, 3, 4, 5];
        assert_eq!(percent_where(&v, |x| *x > 2), 60.0);
        let empty: [i32; 0] = [];
        assert_eq!(percent_where(&empty, |_| true), 0.0);
    }
}
