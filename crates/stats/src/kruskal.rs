//! The Kruskal–Wallis rank-sum test, with tie correction and χ²
//! approximation — the paper's instrument for taxa cohesion (§V, Fig. 11).

use crate::rank::{midranks, tie_correction};
use crate::special::chi2_sf;
use serde::{Deserialize, Serialize};

/// Result of a Kruskal–Wallis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KruskalWallis {
    /// Tie-corrected H statistic (distributed ~χ² under H₀).
    pub statistic: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: usize,
    /// p-value from the χ² approximation.
    pub p_value: f64,
}

/// Errors from the Kruskal–Wallis test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KruskalError {
    /// Fewer than two groups were supplied.
    TooFewGroups,
    /// A supplied group was empty.
    EmptyGroup,
    /// Every observation across all groups is identical — ranks carry no
    /// information and the statistic is undefined.
    AllIdentical,
}

impl std::fmt::Display for KruskalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KruskalError::TooFewGroups => write!(f, "need at least two groups"),
            KruskalError::EmptyGroup => write!(f, "groups must be non-empty"),
            KruskalError::AllIdentical => write!(f, "all observations identical"),
        }
    }
}

impl std::error::Error for KruskalError {}

/// Run the Kruskal–Wallis test over `k ≥ 2` groups.
///
/// `H = 12/(N(N+1)) · Σ R_j²/n_j − 3(N+1)`, divided by the tie-correction
/// factor; p-value from `χ²(k−1)`.
///
/// # Errors
///
/// See [`KruskalError`].
pub fn kruskal_wallis(groups: &[&[f64]]) -> Result<KruskalWallis, KruskalError> {
    if groups.len() < 2 {
        return Err(KruskalError::TooFewGroups);
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(KruskalError::EmptyGroup);
    }
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let n = pooled.len();
    let (ranks, tie_sizes) = midranks(&pooled);
    let correction = tie_correction(&tie_sizes, n);
    if correction <= 0.0 {
        return Err(KruskalError::AllIdentical);
    }
    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let rank_sum: f64 = ranks[offset..offset + g.len()].iter().sum();
        h += rank_sum * rank_sum / g.len() as f64;
        offset += g.len();
    }
    let nf = n as f64;
    h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);
    let statistic = h / correction;
    let df = groups.len() - 1;
    Ok(KruskalWallis {
        statistic,
        df,
        p_value: chi2_sf(statistic, df as f64),
    })
}

/// A symmetric matrix of pairwise Kruskal–Wallis p-values over labelled
/// groups — the layout of the paper's Fig. 11 triangles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseMatrix {
    /// Group labels, in the order of rows/columns.
    pub labels: Vec<String>,
    /// `p[i][j]` = p-value of the test between groups i and j
    /// (NaN on the diagonal).
    pub p: Vec<Vec<f64>>,
}

impl PairwiseMatrix {
    /// The p-value for the pair of labels, if both exist.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        if i == j {
            return None;
        }
        Some(self.p[i][j])
    }
}

/// Compute all pairwise Kruskal–Wallis tests between labelled groups.
///
/// A pair whose pooled observations are all identical carries no rank
/// information, so the test cannot reject the null for it: the cell is
/// recorded as `p = 1.0` rather than failing the matrix. (Degenerate
/// pairs occur in tiny corpora where a whole taxon shares one value.)
///
/// # Errors
///
/// Any pair failing for a structural reason ([`KruskalError::EmptyGroup`])
/// fails the whole computation — the caller should have filtered empty
/// groups first.
pub fn pairwise_kruskal(
    labelled: &[(String, Vec<f64>)],
) -> Result<PairwiseMatrix, KruskalError> {
    let k = labelled.len();
    let mut p = vec![vec![f64::NAN; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let p_value = match kruskal_wallis(&[&labelled[i].1, &labelled[j].1]) {
                Ok(r) => r.p_value,
                Err(KruskalError::AllIdentical) => 1.0,
                Err(e) => return Err(e),
            };
            p[i][j] = p_value;
            p[j][i] = p_value;
        }
    }
    Ok(PairwiseMatrix {
        labels: labelled.iter().map(|(l, _)| l.clone()).collect(),
        p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_r_reference_no_ties() {
        // R: kruskal.test(list(c(1,2,3), c(4,5,6), c(7,8,9)))
        //    chi-squared = 7.2, df = 2, p-value = 0.02732
        let r = kruskal_wallis(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 9.0],
        ])
        .unwrap();
        assert!((r.statistic - 7.2).abs() < 1e-10);
        assert_eq!(r.df, 2);
        assert!((r.p_value - 0.027_323_722_447_292_56).abs() < 1e-9);
    }

    #[test]
    fn matches_r_reference_with_ties() {
        // Hand-derived: pooled ranks 1.5,1.5,4 | 4,4,6 → H = 7/3,
        // tie correction C = 6/7 → H' = 49/18 = 2.7222…,
        // p = erfc(sqrt(H'/2)) = 0.09896015…
        let r = kruskal_wallis(&[&[1.0, 1.0, 2.0], &[2.0, 2.0, 3.0]]).unwrap();
        assert!((r.statistic - 49.0 / 18.0).abs() < 1e-10);
        assert!((r.p_value - 0.098_960_154_019_405_8).abs() < 1e-9);
    }

    #[test]
    fn identical_groups_give_high_p() {
        let r = kruskal_wallis(&[&[1.0, 2.0, 3.0, 4.0], &[1.5, 2.5, 3.5, 2.0]]).unwrap();
        assert!(r.p_value > 0.3);
    }

    #[test]
    fn separated_groups_give_tiny_p() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 1000.0 + i as f64).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            kruskal_wallis(&[&[1.0][..]]),
            Err(KruskalError::TooFewGroups)
        );
        assert_eq!(
            kruskal_wallis(&[&[1.0][..], &[][..]]),
            Err(KruskalError::EmptyGroup)
        );
        assert_eq!(
            kruskal_wallis(&[&[2.0, 2.0][..], &[2.0, 2.0][..]]),
            Err(KruskalError::AllIdentical)
        );
    }

    #[test]
    fn pairwise_degenerate_pair_is_not_significant() {
        // Two taxa sharing one constant value cannot be distinguished:
        // the cell reads p = 1.0 instead of poisoning the whole matrix.
        let groups = vec![
            ("a".to_string(), vec![3.0, 3.0]),
            ("b".to_string(), vec![3.0, 3.0]),
            ("c".to_string(), vec![1.0, 9.0, 2.0]),
        ];
        let m = pairwise_kruskal(&groups).unwrap();
        assert_eq!(m.get("a", "b"), Some(1.0));
        assert!(m.get("a", "c").unwrap() < 1.0);
    }

    #[test]
    fn pairwise_matrix_symmetric() {
        let groups = vec![
            ("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("b".to_string(), vec![10.0, 11.0, 12.0, 13.0]),
            ("c".to_string(), vec![1.0, 10.0, 5.0, 7.0]),
        ];
        let m = pairwise_kruskal(&groups).unwrap();
        assert_eq!(m.labels.len(), 3);
        let ab = m.get("a", "b").unwrap();
        let ba = m.get("b", "a").unwrap();
        assert_eq!(ab, ba);
        assert!(ab < 0.05, "a and b are clearly separated");
        assert!(m.get("a", "a").is_none());
        assert!(m.get("a", "zzz").is_none());
    }

    #[test]
    fn two_group_kw_matches_known_wilcoxon_equivalence() {
        // KW with k=2 is equivalent to the two-sided Mann-Whitney test
        // (identical p under the chi-square/normal approximations).
        // R: kruskal.test(list(c(1.1, 2.2, 3.3), c(4.4, 5.5)))
        //    chi-squared = 3, df = 1, p = 0.08326
        let r = kruskal_wallis(&[&[1.1, 2.2, 3.3], &[4.4, 5.5]]).unwrap();
        assert!((r.statistic - 3.0).abs() < 1e-10);
        assert!((r.p_value - 0.083_264_516_663_611_2).abs() < 1e-9);
    }
}
