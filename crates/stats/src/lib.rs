//! # schevo-stats
//!
//! The statistics substrate of the schema-evolution study, implemented from
//! scratch: descriptive summaries, R type-7 quantiles, midranks,
//! tie-corrected Kruskal–Wallis with χ² p-values, Royston's Shapiro–Wilk
//! normality test, and the percentile-split thresholding that derives the
//! paper's "reed limit".
//!
//! Every procedure is validated against published reference values
//! (R / scipy / RFC test vectors) in its module tests.
//!
//! ## Example: the paper's §V sanity check, in miniature
//!
//! ```
//! use schevo_stats::kruskal::kruskal_wallis;
//!
//! // Activities of two fictional taxa.
//! let almost_frozen = [1.0, 2.0, 3.0, 3.0, 5.0];
//! let active = [112.0, 254.0, 548.0, 3485.0, 177.0];
//! let kw = kruskal_wallis(&[&almost_frozen, &active]).unwrap();
//! assert!(kw.p_value < 0.05, "the taxa differ significantly");
//! ```

#![warn(missing_docs)]

pub mod contingency;
pub mod correlation;
pub mod describe;
pub mod kruskal;
pub mod mannwhitney;
pub mod quantile;
pub mod rank;
pub mod shapiro;
pub mod special;
pub mod threshold;

pub use contingency::{chi2_independence, Chi2Independence, ContingencyError};
pub use correlation::{spearman, CorrelationError, Spearman};
pub use describe::{mean, percent_where, variance, Summary};
pub use mannwhitney::{mann_whitney, MannWhitney, MannWhitneyError};
pub use kruskal::{kruskal_wallis, pairwise_kruskal, KruskalError, KruskalWallis, PairwiseMatrix};
pub use quantile::{median, quantile, Quartiles};
pub use rank::{midranks, tie_correction};
pub use shapiro::{shapiro_wilk, ShapiroError, ShapiroWilk};
pub use threshold::{percentile_split, reed_limit};
