//! Pearson's χ² test of independence on contingency tables.
//!
//! Used by the table-level extension to test whether a table's *fate*
//! (survivor/dead) is independent of its *activity* (quiet/updated) — the
//! statistical core of the Electrolysis pattern.

use crate::special::chi2_sf;
use serde::{Deserialize, Serialize};

/// Result of a χ² independence test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Independence {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom `(r−1)(c−1)`.
    pub df: usize,
    /// p-value from the χ² distribution.
    pub p_value: f64,
}

/// Errors from the independence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContingencyError {
    /// The table needs at least 2 rows and 2 columns.
    TooSmall,
    /// Rows have differing lengths.
    Ragged,
    /// A row or column sums to zero (the test is undefined).
    ZeroMarginal,
}

impl std::fmt::Display for ContingencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContingencyError::TooSmall => write!(f, "need at least a 2×2 table"),
            ContingencyError::Ragged => write!(f, "rows differ in length"),
            ContingencyError::ZeroMarginal => write!(f, "zero row/column marginal"),
        }
    }
}

impl std::error::Error for ContingencyError {}

/// Run Pearson's χ² test of independence over an `r × c` count table.
///
/// # Errors
///
/// See [`ContingencyError`].
pub fn chi2_independence(table: &[Vec<u64>]) -> Result<Chi2Independence, ContingencyError> {
    let r = table.len();
    if r < 2 {
        return Err(ContingencyError::TooSmall);
    }
    let c = table[0].len();
    if c < 2 {
        return Err(ContingencyError::TooSmall);
    }
    if table.iter().any(|row| row.len() != c) {
        return Err(ContingencyError::Ragged);
    }
    let row_sums: Vec<f64> = table.iter().map(|row| row.iter().sum::<u64>() as f64).collect();
    let col_sums: Vec<f64> = (0..c)
        .map(|j| table.iter().map(|row| row[j]).sum::<u64>() as f64)
        .collect();
    let total: f64 = row_sums.iter().sum();
    if row_sums.contains(&0.0) || col_sums.contains(&0.0) {
        return Err(ContingencyError::ZeroMarginal);
    }
    let mut statistic = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            let expected = row_sums[i] * col_sums[j] / total;
            let d = obs as f64 - expected;
            statistic += d * d / expected;
        }
    }
    let df = (r - 1) * (c - 1);
    Ok(Chi2Independence {
        statistic,
        df,
        p_value: chi2_sf(statistic, df as f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_2x2_reference() {
        // Hand-derived: [[10, 20], [20, 10]] → total 60, all marginals 30,
        // expected 15 everywhere, χ² = 4·(25/15) = 20/3 ≈ 6.6667, df = 1.
        let r = chi2_independence(&[vec![10, 20], vec![20, 10]]).unwrap();
        assert!((r.statistic - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.df, 1);
        assert!(r.p_value < 0.01 && r.p_value > 0.005);
    }

    #[test]
    fn independent_table_high_p() {
        // Rows proportional → χ² = 0.
        let r = chi2_independence(&[vec![10, 30], vec![20, 60]]).unwrap();
        assert!(r.statistic < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_by_three() {
        let r = chi2_independence(&[
            vec![30, 10, 5],
            vec![10, 30, 10],
            vec![5, 10, 30],
        ])
        .unwrap();
        assert_eq!(r.df, 4);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            chi2_independence(&[vec![1, 2]]),
            Err(ContingencyError::TooSmall)
        );
        assert_eq!(
            chi2_independence(&[vec![1], vec![2]]),
            Err(ContingencyError::TooSmall)
        );
        assert_eq!(
            chi2_independence(&[vec![1, 2], vec![3]]),
            Err(ContingencyError::Ragged)
        );
        assert_eq!(
            chi2_independence(&[vec![0, 0], vec![3, 4]]),
            Err(ContingencyError::ZeroMarginal)
        );
        assert_eq!(
            chi2_independence(&[vec![0, 1], vec![0, 4]]),
            Err(ContingencyError::ZeroMarginal)
        );
    }
}
