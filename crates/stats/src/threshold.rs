//! Percentile-split thresholding — the paper's derivation of the *reed
//! limit* (§III-B): take the activities of all single-active-commit
//! projects, sort them (a power-law-like distribution), and split at the
//! 85% limit. Commits with activity strictly above the threshold are
//! "reeds"; the rest are "turf".

use crate::quantile::quantile_sorted;

/// Split a sample at the `p`-th percentile, returning the split value
/// rounded *down* to an integer threshold (activity is measured in whole
/// attributes). Returns `None` for an empty sample.
pub fn percentile_split(values: &[f64], p: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Some(quantile_sorted(&sorted, p).floor() as u64)
}

/// The paper's reed-limit rule: the 85% split of single-commit activities.
pub fn reed_limit(single_commit_activities: &[f64]) -> Option<u64> {
    percentile_split(single_commit_activities, 0.85)
}

/// Check how power-law-like a positive sample is by comparing the
/// mean/median ratio: heavy-tailed samples have mean ≫ median. Returns the
/// ratio (1.0 ⇒ symmetric-ish; ≥ 2 ⇒ strongly right-skewed).
pub fn skew_ratio(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let m = crate::describe::mean(values);
    let med = crate::quantile::median(values);
    if med == 0.0 {
        return None;
    }
    Some(m / med)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_of_uniform_1_to_100() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        // type-7: h = 99*0.85 = 84.15 → 85.15 → floor 85
        assert_eq!(percentile_split(&v, 0.85), Some(85));
    }

    #[test]
    fn reed_limit_on_power_law_like_sample() {
        // Mostly small activities with a heavy tail; calibrated to split
        // near the paper's threshold of 14.
        let mut v = Vec::new();
        for i in 1..=85 {
            v.push(((i % 14) + 1) as f64); // 1..14
        }
        for i in 0..15 {
            v.push(20.0 + 25.0 * i as f64); // the long tail
        }
        let t = reed_limit(&v).unwrap();
        assert!((14..=20).contains(&t), "threshold = {t}");
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(percentile_split(&[], 0.85), None);
        assert_eq!(reed_limit(&[]), None);
        assert_eq!(skew_ratio(&[]), None);
    }

    #[test]
    fn skew_ratio_detects_heavy_tail() {
        let symmetric: Vec<f64> = (1..=99).map(|x| x as f64).collect();
        assert!((skew_ratio(&symmetric).unwrap() - 1.0).abs() < 0.01);
        let mut heavy = vec![1.0; 90];
        heavy.extend(vec![1000.0; 10]);
        assert!(skew_ratio(&heavy).unwrap() > 50.0);
    }

    #[test]
    fn zero_median_is_none() {
        assert_eq!(skew_ratio(&[0.0, 0.0, 5.0]), None);
    }
}
