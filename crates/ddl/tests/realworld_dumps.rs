//! Parser tests against realistic `schema.sql` shapes: the dump styles of
//! well-known FOSS projects (CMS, wiki, shop), vendor mixtures, and the
//! noise statements real dumps carry. These are hand-written in the style
//! of the originals, not copies.

use schevo_ddl::parse_schema;
use schevo_ddl::types::TypeFamily;

#[test]
fn wordpress_style_dump() {
    let sql = r#"
-- WordPress-style database schema
/*!40101 SET @saved_cs_client = @@character_set_client */;
/*!40101 SET character_set_client = utf8 */;

CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `post_author` bigint(20) unsigned NOT NULL DEFAULT '0',
  `post_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_status` varchar(20) NOT NULL DEFAULT 'publish',
  `comment_status` varchar(20) NOT NULL DEFAULT 'open',
  `post_name` varchar(200) NOT NULL DEFAULT '',
  `post_parent` bigint(20) unsigned NOT NULL DEFAULT '0',
  `menu_order` int(11) NOT NULL DEFAULT '0',
  `post_mime_type` varchar(100) NOT NULL DEFAULT '',
  `comment_count` bigint(20) NOT NULL DEFAULT '0',
  PRIMARY KEY (`ID`),
  KEY `post_name` (`post_name`(191)),
  KEY `type_status_date` (`post_status`,`post_date`,`ID`),
  KEY `post_parent` (`post_parent`),
  KEY `post_author` (`post_author`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4 COLLATE=utf8mb4_unicode_520_ci;

CREATE TABLE `wp_options` (
  `option_id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `option_name` varchar(191) NOT NULL DEFAULT '',
  `option_value` longtext NOT NULL,
  `autoload` varchar(20) NOT NULL DEFAULT 'yes',
  PRIMARY KEY (`option_id`),
  UNIQUE KEY `option_name` (`option_name`)
) ENGINE=InnoDB;

INSERT INTO `wp_options` VALUES (1,'siteurl','http://example.org','yes');
"#;
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 2);
    let posts = s.table("wp_posts").unwrap();
    assert_eq!(posts.arity(), 12);
    assert_eq!(posts.primary_key(), &["ID".to_string()]);
    let id = posts.attribute("ID").unwrap();
    assert_eq!(id.data_type.family, TypeFamily::BigInt);
    assert!(id.data_type.unsigned);
    assert_eq!(
        posts.attribute("post_content").unwrap().data_type.family,
        TypeFamily::Text
    );
}

#[test]
fn mediawiki_style_dump_with_comments() {
    let sql = r#"
-- Database schema for MediaWiki-like wiki engine
--
-- General notes: keep stuff sorted.

CREATE TABLE /*_*/page (
  page_id int unsigned NOT NULL PRIMARY KEY AUTO_INCREMENT,
  page_namespace int NOT NULL,
  page_title varchar(255) binary NOT NULL,
  page_is_redirect tinyint unsigned NOT NULL default 0,
  page_touched binary(14) NOT NULL,
  page_latest int unsigned NOT NULL,
  page_len int unsigned NOT NULL
) /*$wgDBTableOptions*/;

CREATE TABLE /*_*/revision (
  rev_id int unsigned NOT NULL PRIMARY KEY AUTO_INCREMENT,
  rev_page int unsigned NOT NULL,
  rev_comment_id bigint unsigned NOT NULL default 0,
  rev_timestamp binary(14) NOT NULL default '',
  rev_deleted tinyint unsigned NOT NULL default 0
) /*$wgDBTableOptions*/;
"#;
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 2);
    let page = s.table("page").unwrap();
    assert_eq!(page.arity(), 7);
    assert_eq!(page.primary_key(), &["page_id".to_string()]);
}

#[test]
fn shop_dump_with_foreign_keys_and_decimals() {
    let sql = r#"
CREATE TABLE customers (
  id INT NOT NULL AUTO_INCREMENT,
  email VARCHAR(255) NOT NULL,
  PRIMARY KEY (id),
  UNIQUE KEY uq_email (email)
);
CREATE TABLE orders (
  id INT NOT NULL AUTO_INCREMENT,
  customer_id INT NOT NULL,
  total DECIMAL(12,2) NOT NULL DEFAULT 0.00,
  placed_at TIMESTAMP NOT NULL DEFAULT CURRENT_TIMESTAMP,
  status ENUM('new','paid','shipped','cancelled') NOT NULL DEFAULT 'new',
  PRIMARY KEY (id),
  CONSTRAINT fk_orders_customer FOREIGN KEY (customer_id)
    REFERENCES customers (id) ON DELETE CASCADE
);
CREATE TABLE order_items (
  order_id INT NOT NULL,
  line_no SMALLINT NOT NULL,
  product_sku VARCHAR(64) NOT NULL,
  qty INT NOT NULL DEFAULT 1,
  unit_price DECIMAL(12,2) NOT NULL,
  PRIMARY KEY (order_id, line_no),
  FOREIGN KEY (order_id) REFERENCES orders (id)
);
"#;
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 3);
    assert_eq!(s.attribute_count(), 2 + 5 + 5);
    let orders = s.table("orders").unwrap();
    assert_eq!(orders.foreign_keys().len(), 1);
    assert_eq!(orders.foreign_keys()[0].foreign_table, "customers");
    let status = orders.attribute("status").unwrap();
    assert_eq!(status.data_type.family, TypeFamily::Enum);
    assert_eq!(status.data_type.values.len(), 4);
    let items = s.table("order_items").unwrap();
    assert_eq!(
        items.primary_key(),
        &["order_id".to_string(), "line_no".to_string()]
    );
}

#[test]
fn postgres_flavoured_dump() {
    let sql = r#"
-- PostgreSQL-flavoured schema
CREATE TABLE "users" (
    "id" SERIAL PRIMARY KEY,
    "login" CHARACTER VARYING(64) NOT NULL,
    "bio" TEXT,
    "joined" TIMESTAMPTZ NOT NULL,
    "score" DOUBLE PRECISION DEFAULT 0
);
CREATE TABLE "sessions" (
    "token" UUID PRIMARY KEY,
    "user_id" INTEGER REFERENCES "users" ("id"),
    "payload" JSONB
);
CREATE INDEX idx_sessions_user ON sessions (user_id);
"#;
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 2);
    let users = s.table("users").unwrap();
    assert_eq!(users.attribute("id").unwrap().data_type.family, TypeFamily::Serial);
    assert_eq!(users.attribute("login").unwrap().data_type.family, TypeFamily::Varchar);
    assert_eq!(users.attribute("score").unwrap().data_type.family, TypeFamily::Double);
    let sessions = s.table("sessions").unwrap();
    assert_eq!(sessions.attribute("token").unwrap().data_type.family, TypeFamily::Uuid);
    assert_eq!(sessions.attribute("payload").unwrap().data_type.family, TypeFamily::Json);
    assert_eq!(sessions.primary_key(), &["token".to_string()]);
}

#[test]
fn dump_with_trailing_alter_migrations() {
    // Some projects keep a base CREATE plus appended migrations in one file.
    let sql = r#"
CREATE TABLE app_user (id INT PRIMARY KEY, login VARCHAR(32));

-- migration 2018-03-01
ALTER TABLE app_user ADD COLUMN email VARCHAR(255) NOT NULL;
-- migration 2018-07-15
ALTER TABLE app_user MODIFY COLUMN login VARCHAR(64);
ALTER TABLE app_user ADD COLUMN last_seen DATETIME;
-- migration 2019-01-20
ALTER TABLE app_user DROP COLUMN last_seen;
"#;
    let s = parse_schema(sql).unwrap();
    let u = s.table("app_user").unwrap();
    assert_eq!(u.arity(), 3);
    assert!(u.attribute("email").unwrap().not_null);
    assert_eq!(u.attribute("login").unwrap().data_type.params, vec![64]);
    assert!(u.attribute("last_seen").is_none());
}

#[test]
fn dump_with_drop_and_recreate_sections() {
    let sql = r#"
SET FOREIGN_KEY_CHECKS=0;
DROP TABLE IF EXISTS `settings`;
CREATE TABLE `settings` (
  `key` VARCHAR(191) NOT NULL,
  `value` TEXT,
  PRIMARY KEY (`key`)
);
DROP TABLE IF EXISTS `cache`;
CREATE TABLE `cache` (
  `id` VARCHAR(64) NOT NULL,
  `blob` LONGBLOB,
  `expires` INT(11),
  PRIMARY KEY (`id`)
);
LOCK TABLES `settings` WRITE;
INSERT INTO `settings` VALUES ('version', '3.2.1');
UNLOCK TABLES;
"#;
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 2);
    assert_eq!(s.table("cache").unwrap().attribute("blob").unwrap().data_type.family, TypeFamily::Blob);
}

#[test]
fn sql_server_flavoured_dump() {
    let sql = r#"
CREATE TABLE [dbo].[Accounts] (
    [Id] INT IDENTITY(1,1) NOT NULL PRIMARY KEY,
    [Name] NVARCHAR(128) NOT NULL,
    [Balance] MONEY DEFAULT 0,
    [Notes] NVARCHAR(MAX)
);
"#;
    let s = parse_schema(sql).unwrap();
    let t = s.table("Accounts").unwrap();
    assert_eq!(t.arity(), 4);
    assert_eq!(t.attribute("Name").unwrap().data_type.family, TypeFamily::Varchar);
    assert_eq!(t.attribute("Balance").unwrap().data_type.family, TypeFamily::Decimal);
    assert_eq!(t.attribute("Notes").unwrap().data_type.params, vec![0]);
}

#[test]
fn messy_whitespace_and_case() {
    let sql = "create\ttable\nT1(  a  int ,b\ntext )  ;CREATE TABLE t2(x INT);";
    let s = parse_schema(sql).unwrap();
    assert_eq!(s.table_count(), 2);
    assert_eq!(s.table("T1").unwrap().arity(), 2);
}

#[test]
fn seed_only_file_is_logically_empty() {
    let sql = r#"
SET NAMES utf8;
INSERT INTO users VALUES (1, 'a'), (2, 'b');
INSERT INTO roles VALUES ('admin');
UPDATE settings SET value = 'x' WHERE id = 1;
DELETE FROM cache;
"#;
    let s = parse_schema(sql).unwrap();
    assert!(s.is_empty());
}
