//! Edge-case gauntlet for the DDL front end: inputs that have historically
//! broken tolerant SQL parsers.

use schevo_ddl::parse_schema;

#[test]
fn keywords_as_identifiers_everywhere() {
    let s = parse_schema(
        "CREATE TABLE `table` (`key` INT, `order` INT, `index` INT, `primary` INT, \
         PRIMARY KEY (`key`));",
    )
    .unwrap();
    let t = s.table("table").unwrap();
    assert_eq!(t.arity(), 4);
    assert_eq!(t.primary_key(), &["key".to_string()]);
}

#[test]
fn deeply_nested_parens_in_defaults_and_checks() {
    let s = parse_schema(
        "CREATE TABLE t (a INT DEFAULT (1 + (2 * (3 - (4 / 5)))), \
         b INT, CHECK ((a > 0) AND (b < (a * (a + 1)))));",
    )
    .unwrap();
    assert_eq!(s.table("t").unwrap().arity(), 2);
}

#[test]
fn comment_terminators_inside_strings() {
    let s = parse_schema(
        "CREATE TABLE t (a TEXT COMMENT 'contains; semicolons -- and dashes /* and block */');",
    )
    .unwrap();
    assert_eq!(s.table("t").unwrap().arity(), 1);
}

#[test]
fn zero_width_and_long_identifiers() {
    let long = "c".repeat(64);
    let sql = format!("CREATE TABLE t (`{long}` INT);");
    let s = parse_schema(&sql).unwrap();
    assert!(s.table("t").unwrap().attribute(&long).is_some());
}

#[test]
fn many_tables_scale() {
    let mut sql = String::new();
    for i in 0..300 {
        sql.push_str(&format!("CREATE TABLE t{i} (a INT, b TEXT, c DATETIME);\n"));
    }
    let s = parse_schema(&sql).unwrap();
    assert_eq!(s.table_count(), 300);
    assert_eq!(s.attribute_count(), 900);
}

#[test]
fn delimiter_directives_are_skipped() {
    // mysqldump trigger sections use DELIMITER games.
    let s = parse_schema(
        "DELIMITER ;;\n\
         CREATE TABLE t (a INT);;\n\
         DELIMITER ;\n\
         CREATE TABLE u (b INT);",
    )
    .unwrap();
    // Both tables must be visible despite the delimiter noise.
    assert!(s.table("t").is_some());
    assert!(s.table("u").is_some());
}

#[test]
fn duplicate_column_last_wins() {
    let s = parse_schema("CREATE TABLE t (a INT, a VARCHAR(10));").unwrap();
    let t = s.table("t").unwrap();
    assert_eq!(t.arity(), 1);
    assert_eq!(t.attribute("a").unwrap().data_type.params, vec![10]);
}

#[test]
fn empty_table_body_yields_table_without_columns() {
    let s = parse_schema("CREATE TABLE t ();").unwrap();
    assert_eq!(s.table("t").map(|t| t.arity()), Some(0));
}

#[test]
fn alter_on_mixed_case_names() {
    let s = parse_schema(
        "CREATE TABLE Users (Id INT);\
         ALTER TABLE Users ADD COLUMN Email VARCHAR(50);",
    )
    .unwrap();
    // Names are case-sensitive in our model; the ALTER targets the exact name.
    assert_eq!(s.table("Users").unwrap().arity(), 2);
}

#[test]
fn unicode_identifiers_and_values() {
    let s = parse_schema(
        "CREATE TABLE benutzer (größe INT, status ENUM('aktiv','inaktiv','gelöscht'));",
    )
    .unwrap();
    let t = s.table("benutzer").unwrap();
    assert!(t.attribute("größe").is_some());
    assert_eq!(t.attribute("status").unwrap().data_type.values.len(), 3);
}

#[test]
fn crlf_only_file() {
    let s = parse_schema("CREATE TABLE t (\r\n  a INT,\r\n  b TEXT\r\n);\r\n").unwrap();
    assert_eq!(s.table("t").unwrap().arity(), 2);
}

#[test]
fn giant_insert_between_tables() {
    let mut sql = String::from("CREATE TABLE t (a INT);\nINSERT INTO t VALUES ");
    for i in 0..5000 {
        if i > 0 {
            sql.push(',');
        }
        sql.push_str(&format!("({i})"));
    }
    sql.push_str(";\nCREATE TABLE u (b INT);");
    let s = parse_schema(&sql).unwrap();
    assert_eq!(s.table_count(), 2);
}

#[test]
fn alter_add_multiple_columns_one_statement() {
    let s = parse_schema(
        "CREATE TABLE t (a INT);\
         ALTER TABLE t ADD COLUMN b INT, ADD COLUMN c TEXT, ADD d DATETIME;",
    )
    .unwrap();
    assert_eq!(s.table("t").unwrap().arity(), 4);
}
