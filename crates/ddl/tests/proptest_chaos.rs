//! Chaos property battery for the DDL front end: arbitrary byte
//! mutations, truncations, and splices of valid DDL must flow through
//! both the strict and the recovering parser as a clean `Ok`/`Err` —
//! never a panic, never an infinite loop, and never a lex error whose
//! byte offset points outside the input.
//!
//! The strict and recovering parsers share the token stream, so whenever
//! the strict parse succeeds the recovering parse must agree exactly:
//! same schema, no recorded lex error.

use proptest::prelude::*;
use schevo_ddl::{parse_schema, parse_schema_recovering, tokenize_recovering};

/// Realistic base documents the mutations start from. Covers strings,
/// quoted identifiers, line and block comments, and multi-statement
/// scripts — the regions where a flipped byte can open an unterminated
/// token.
const BASES: &[&str] = &[
    "CREATE TABLE users (id INT, name VARCHAR(80), bio TEXT);",
    "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT, z DECIMAL(10,2));\n\
     ALTER TABLE a ADD COLUMN w TEXT;",
    "-- schema v3\nCREATE TABLE t (id INT DEFAULT 7, label VARCHAR(20) DEFAULT 'n/a');",
    "/* header\n   block */\nCREATE TABLE `orders` (`id` INT, `note` TEXT);\n\
     DROP TABLE old_orders;",
    "CREATE TABLE logs (msg TEXT, at DATETIME);\nINSERT INTO logs VALUES ('it''s fine', NOW());",
    "CREATE INDEX idx_users_name ON users (name);\nCREATE TABLE s (q INT);",
];

fn base() -> impl Strategy<Value = String> {
    (0..BASES.len()).prop_map(|i| BASES[i].to_string())
}

/// Apply `(fraction, byte)` mutations to the document's bytes; the result
/// is rehydrated lossily, so the parser always sees valid UTF-8 (the rest
/// of the pipeline reads blobs the same way).
fn mutate(doc: &str, muts: &[(u16, u8)]) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    for &(frac, val) in muts {
        if bytes.is_empty() {
            break;
        }
        let pos = (frac as usize * (bytes.len() - 1)) / u16::MAX as usize;
        bytes[pos] = val;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte-mutated document parses to Ok or Err — never a panic —
    /// and lex errors carry in-bounds byte offsets.
    #[test]
    fn mutated_ddl_never_panics(
        doc in base(),
        muts in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..8),
    ) {
        let mutated = mutate(&doc, &muts);
        match parse_schema(&mutated) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(
                    e.span.start <= mutated.len(),
                    "error offset {} beyond input length {}",
                    e.span.start,
                    mutated.len()
                );
            }
        }
        let salvage = parse_schema_recovering(&mutated);
        if let Some(e) = &salvage.lex_error {
            prop_assert!(e.span.start <= mutated.len());
        }
    }

    /// When the strict parse succeeds, the recovering parse must be a
    /// bit-identical no-op: same schema, no recorded lex error.
    #[test]
    fn recovering_parse_agrees_with_strict_on_success(
        doc in base(),
        muts in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..4),
    ) {
        let mutated = mutate(&doc, &muts);
        if let Ok(strict) = parse_schema(&mutated) {
            let salvage = parse_schema_recovering(&mutated);
            prop_assert!(salvage.lex_error.is_none(),
                "strict parse succeeded but recovery recorded a lex error");
            prop_assert_eq!(salvage.schema, strict,
                "recovering parse diverged from strict parse on clean input");
        }
    }

    /// Every truncation point of a valid document is survivable, and the
    /// recovered token prefix never exceeds the cut.
    #[test]
    fn truncation_never_panics(doc in base(), cut_frac in any::<u16>()) {
        let mut cut = (cut_frac as usize * doc.len()) / u16::MAX as usize;
        while cut > 0 && !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &doc[..cut];
        let _ = parse_schema(truncated);
        let (tokens, err) = tokenize_recovering(truncated);
        for t in &tokens {
            prop_assert!(t.span.end <= truncated.len());
        }
        if let Some(e) = err {
            prop_assert!(e.span.start <= truncated.len());
        }
    }

    /// Splicing two documents at arbitrary points (the shape a botched
    /// merge or interleaved non-DDL noise produces) never panics.
    #[test]
    fn spliced_ddl_never_panics(
        a in base(),
        b in base(),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        let mut ca = (cut_a as usize * a.len()) / u16::MAX as usize;
        while ca > 0 && !a.is_char_boundary(ca) { ca -= 1; }
        let mut cb = (cut_b as usize * b.len()) / u16::MAX as usize;
        while cb > 0 && !b.is_char_boundary(cb) { cb -= 1; }
        let spliced = format!("{}{}", &a[..ca], &b[cb..]);
        let _ = parse_schema(&spliced);
        let salvage = parse_schema_recovering(&spliced);
        // Salvage keeps at most as many statements as a clean joint parse
        // could ever yield; mostly this asserts termination.
        let _ = salvage.dropped_statements;
    }
}
