//! Differential property battery for the byte-level lexer fast path.
//!
//! The fast path (`schevo_ddl::lexer`: ASCII class dispatch + SWAR
//! chunk scanning) must be observationally identical to the retired
//! character-oriented lexer, which is kept verbatim as
//! `schevo_ddl::lexer::reference` precisely to serve as this oracle:
//! same tokens, same spans, same recovered-error offsets and messages —
//! on clean DDL, on arbitrary mutated bytes, and on every corruption
//! class the corpus fault generator can produce.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use schevo_corpus::faultgen::{corrupt_versions, FaultClass};
use schevo_ddl::lexer::{self, reference};
use schevo_vcs::history::FileVersion;
use schevo_vcs::sha1::Digest;
use schevo_vcs::timestamp::Timestamp;

/// Tokenize through both lexers and demand bit-identical observables:
/// the token vectors (kinds and byte spans) and the recovered error's
/// span and rendered message.
fn assert_lexers_agree(input: &str) {
    let (fast_tokens, fast_err) = lexer::tokenize_recovering(input);
    let (ref_tokens, ref_err) = reference::tokenize_recovering(input);
    assert_eq!(
        fast_tokens, ref_tokens,
        "token streams diverged on {input:?}"
    );
    let fast_err = fast_err.map(|e| (e.span, e.to_string()));
    let ref_err = ref_err.map(|e| (e.span, e.to_string()));
    assert_eq!(fast_err, ref_err, "lex errors diverged on {input:?}");

    // The strict entry points must agree too (identical Ok tokens or
    // identical error span + message).
    match (lexer::tokenize(input), reference::tokenize(input)) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => {
            assert_eq!((a.span, a.to_string()), (b.span, b.to_string()));
        }
        (a, b) => panic!("strict outcomes diverged on {input:?}: {a:?} vs {b:?}"),
    }
}

/// Base documents covering every token class: strings with escapes and
/// doubled quotes, backquoted and double-quoted identifiers, nested block
/// comments, hex/float/exponent numbers, punctuation runs, and non-ASCII
/// identifier bytes.
const BASES: &[&str] = &[
    "CREATE TABLE users (id INT(11) NOT NULL, email VARCHAR(255) DEFAULT 'a@b.c', \
     PRIMARY KEY (id)) ENGINE=InnoDB;",
    "-- line comment\nCREATE TABLE t (a DECIMAL(10,2), b FLOAT DEFAULT 1.5e-3, c INT DEFAULT 0x1F);",
    "/* outer /* nested */ still outer */ CREATE TABLE `weird ``name` (\"col\"\"x\" TEXT);",
    "INSERT INTO logs VALUES ('it''s \\'fine\\'', \"not\\na string\", `tick`);",
    "CREATE TABLE naïve_täble (übercol INT, $dollar INT, _under INT);",
    "ALTER TABLE a ADD COLUMN w TEXT; DROP TABLE IF EXISTS b, c;\n\
     SELECT 1 <> 2, 3 != 4, a <= b >= c;",
    "",
    "'unterminated",
    "`unterminated ident",
    "/* unterminated /* nested comment",
];

fn base() -> impl Strategy<Value = String> {
    (0..BASES.len()).prop_map(|i| BASES[i].to_string())
}

fn version(content: &str) -> FileVersion {
    FileVersion {
        commit: Digest([0u8; 20]),
        timestamp: Timestamp::from_date(2019, 1, 1),
        author: "dev".into(),
        message: "v".into(),
        content: content.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte mutations of realistic DDL lex identically through
    /// both paths — tokens, spans, and error offsets.
    #[test]
    fn mutated_bytes_lex_identically(
        doc in base(),
        muts in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12),
    ) {
        let mut bytes = doc.into_bytes();
        for &(frac, val) in &muts {
            if bytes.is_empty() {
                break;
            }
            let pos = (frac as usize * (bytes.len() - 1)) / u16::MAX as usize;
            bytes[pos] = val;
        }
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_lexers_agree(&input);
    }

    /// Fully random byte soup (no DDL structure at all) also agrees —
    /// this is where the SWAR tail/boundary handling earns its keep.
    #[test]
    fn random_byte_soup_lexes_identically(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_lexers_agree(&input);
    }

    /// Every truncation point of every base document agrees, including
    /// cuts that land inside strings, comments, and multi-byte chars.
    #[test]
    fn truncations_lex_identically(doc in base(), cut_frac in any::<u16>()) {
        let mut cut = (cut_frac as usize * doc.len()) / u16::MAX as usize;
        while cut > 0 && !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_lexers_agree(&doc[..cut]);
    }

    /// Content produced by the corpus fault generator's corruption
    /// classes lexes identically through both paths.
    #[test]
    fn faultgen_corruption_lexes_identically(
        doc in base(),
        class_idx in 0..FaultClass::ALL.len(),
        seed in any::<u64>(),
    ) {
        let class = FaultClass::ALL[class_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut versions = vec![version(&doc), version(&format!("{doc}\n-- v2"))];
        // Inapplicable class/content combinations return None and leave
        // the versions untouched — still worth lexing.
        let _ = corrupt_versions(&mut versions, class, &mut rng);
        for v in &versions {
            assert_lexers_agree(&v.content);
        }
    }
}

/// One deterministic sweep of every fault class over every base, so a
/// plain `cargo test` exercises the whole catalog even at low proptest
/// case counts.
#[test]
fn every_fault_class_sweeps_every_base() {
    let mut rng = StdRng::seed_from_u64(2019);
    for class in FaultClass::ALL {
        for doc in BASES {
            let mut versions = vec![version(doc), version(&format!("{doc}\n-- tail"))];
            let _ = corrupt_versions(&mut versions, class, &mut rng);
            for v in &versions {
                assert_lexers_agree(&v.content);
            }
        }
    }
}
