//! Property tests for the DDL front end: arbitrary schemas must survive a
//! render → parse round trip, under both rendering styles, and the lexer
//! must never panic on arbitrary input.

use proptest::prelude::*;
use schevo_ddl::render::{render_schema_with, RenderOptions};
use schevo_ddl::schema::{Attribute, Schema, Table};
use schevo_ddl::types::DataType;
use schevo_ddl::{parse_schema, Span};

/// Identifier-safe names: start alpha, then alphanumerics/underscore.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,14}".prop_map(|s| s)
}

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::int()),
        Just(DataType::from_name("BIGINT")),
        Just(DataType::from_name("TINYINT")),
        Just(DataType::text()),
        Just(DataType::datetime()),
        Just(DataType::from_name("DATE")),
        Just(DataType::from_name("DOUBLE")),
        Just(DataType::from_name("JSON")),
        (1u32..2000).prop_map(DataType::varchar),
        (1u32..30, 0u32..10).prop_map(|(p, s)| DataType::decimal(p, p.max(s).min(s))),
        proptest::collection::vec("[a-z]{1,6}", 1..4).prop_map(|vals| {
            let mut t = DataType::from_name("ENUM");
            // Deduplicate to keep logical_eq sane.
            let mut vs: Vec<String> = vals;
            vs.dedup();
            t.values = vs;
            t
        }),
    ]
}

fn table() -> impl Strategy<Value = Table> {
    (
        ident(),
        proptest::collection::vec((ident(), data_type(), any::<bool>()), 1..8),
        any::<bool>(),
    )
        .prop_map(|(name, cols, pk_on_first)| {
            let mut t = Table::new(name);
            for (n, ty, not_null) in cols {
                let mut a = Attribute::new(n, ty);
                a.not_null = not_null;
                t.push_attribute(a);
            }
            if pk_on_first {
                let first = t.attributes()[0].name.clone();
                t.set_primary_key(vec![first]);
            }
            t
        })
}

fn schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(table(), 0..6).prop_map(|tables| {
        let mut s = Schema::new();
        for t in tables {
            s.upsert_table(t);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_parse_roundtrip_backquoted(s in schema()) {
        let sql = render_schema_with(&s, &RenderOptions::default());
        let parsed = parse_schema(&sql).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn render_parse_roundtrip_bare(s in schema()) {
        let opts = RenderOptions {
            backquote_identifiers: false,
            engine_clause: false,
            ..Default::default()
        };
        let sql = render_schema_with(&s, &opts);
        let parsed = parse_schema(&sql).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn roundtrip_with_noise(s in schema(), header in "[ -~]{0,40}") {
        let opts = RenderOptions {
            header_comment: Some(header),
            trailer_statements: vec![
                "INSERT INTO x VALUES (1, 'a;b');".to_string(),
                "SET FOREIGN_KEY_CHECKS=1;".to_string(),
            ],
            ..Default::default()
        };
        let sql = render_schema_with(&s, &opts);
        let parsed = parse_schema(&sql).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn lexer_never_panics(input in "\\PC{0,200}") {
        // Any outcome is fine; no panics, and spans must be in bounds.
        if let Ok(tokens) = schevo_ddl::lexer::tokenize(&input) {
            for t in tokens {
                prop_assert!(t.span.end <= input.len());
                prop_assert!(t.span.start <= t.span.end);
            }
        }
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_schema(&input);
    }

    #[test]
    fn spans_slice_within_source(input in "[ -~]{0,120}") {
        if let Ok(tokens) = schevo_ddl::lexer::tokenize(&input) {
            for t in tokens {
                let sp: Span = t.span;
                prop_assert!(sp.slice(&input).is_some());
            }
        }
    }
}
