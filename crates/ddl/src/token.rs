//! Token model produced by the [`crate::lexer`].

use crate::error::Span;
use std::fmt;

/// The kind of a lexed token.
///
/// Keywords are *not* distinguished at the lexer level: SQL keywords are not
/// reserved in the dialects we mine (MySQL allows `` `order` `` as a table
/// name and even unquoted non-reserved keywords as identifiers), so the
/// parser matches identifier text case-insensitively where a keyword is
/// required.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare (unquoted) identifier or keyword, e.g. `CREATE`, `users`.
    Ident(String),
    /// A quoted identifier with its quoting removed: `` `order` ``,
    /// `"order"` (ANSI), or `[order]` (SQL Server).
    QuotedIdent(String),
    /// A single- or double-quoted string literal, unescaped.
    StringLit(String),
    /// A numeric literal, kept verbatim (e.g. `11`, `10.5`, `0xFF`).
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// Any other single punctuation/operator character the parser may skip
    /// (`+`, `-`, `*`, `/`, `<`, `>`, `@`, `:`, `!`, `%`, `&`, `|`, `^`, `~`, `?`).
    Punct(char),
}

impl TokenKind {
    /// Return the identifier text (bare or quoted), if this token is one.
    pub fn ident_text(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is a bare identifier equal to `kw`
    /// case-insensitively. Quoted identifiers never match keywords.
    pub fn is_keyword(&self, kw: &str) -> bool {
        match self {
            TokenKind::Ident(s) => s.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }

    /// Short human description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::QuotedIdent(s) => format!("quoted identifier `{s}`"),
            TokenKind::StringLit(_) => "string literal".to_string(),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Semicolon => "';'".to_string(),
            TokenKind::Dot => "'.'".to_string(),
            TokenKind::Eq => "'='".to_string(),
            TokenKind::Punct(c) => format!("'{c}'"),
        }
    }
}

/// A token together with its source [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is, including any payload text.
    pub kind: TokenKind,
    /// Where in the source the token came from.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = TokenKind::Ident("CrEaTe".into());
        assert!(t.is_keyword("create"));
        assert!(t.is_keyword("CREATE"));
        assert!(!t.is_keyword("table"));
    }

    #[test]
    fn quoted_identifiers_are_never_keywords() {
        let t = TokenKind::QuotedIdent("create".into());
        assert!(!t.is_keyword("create"));
        assert_eq!(t.ident_text(), Some("create"));
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::LParen.describe(), "'('");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Number("11".into()).describe(), "number `11`");
    }
}
