//! A byte-oriented SQL lexer with full comment, string and quoted-identifier
//! handling.
//!
//! The lexer is deliberately permissive: real-world `schema.sql` dumps carry
//! vendor directives (`/*!40101 SET ... */`), `#` comments, Windows line
//! endings, and stray punctuation. All of it must tokenize so that the
//! tolerant parser can decide what to keep.
//!
//! # Fast path
//!
//! Tokenization is the single hottest operation in the mining pipeline
//! (every schema version of every repository is lexed at least once), so
//! this module is written as a byte-level fast path:
//!
//! - a 256-entry ASCII dispatch table ([`CLASS`]) classifies each leading
//!   byte in one load instead of a cascading `match` with lookahead guards;
//! - runs of whitespace, identifier characters, comments and string bodies
//!   are consumed with memchr-style SWAR scans ([`memchr1`]/[`memchr2`])
//!   that examine eight bytes per iteration rather than one character at a
//!   time;
//! - string and quoted-identifier bodies are copied out in whole chunks
//!   between escape characters instead of `char`-by-`char`.
//!
//! The original character-oriented implementation is preserved unchanged in
//! [`reference`] and serves as the oracle: the proptest battery in
//! `crates/ddl/tests/proptest_lexer_fastpath.rs` checks both lexers produce
//! bit-identical token streams and error spans on arbitrary inputs.

use crate::error::{ParseError, Span};
use crate::token::{Token, TokenKind};

#[doc(hidden)]
pub mod reference;

/// Tokenize a whole SQL script.
///
/// Comments (`-- ...`, `# ...`, `/* ... */`) and whitespace are consumed and
/// not emitted. MySQL "executable comments" (`/*! ... */`) are also dropped:
/// the study treats the directives they carry as non-logical content.
///
/// # Errors
///
/// Unterminated strings, unterminated block comments, and unterminated quoted
/// identifiers produce a [`ParseError`] pointing at the opening delimiter.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let (tokens, err) = Lexer::new(input).run();
    match err {
        Some(e) => Err(e),
        None => Ok(tokens),
    }
}

/// Tokenize as much of a script as possible.
///
/// Every lex error in this lexer is terminal — it is only raised when the
/// input ends inside an unterminated string, comment, or quoted identifier —
/// so the tokens accumulated before the error are exactly the tokens of the
/// well-formed prefix. Returns that prefix together with the error, if any.
/// On clean input this is identical to [`tokenize`].
pub fn tokenize_recovering(input: &str) -> (Vec<Token>, Option<ParseError>) {
    Lexer::new(input).run()
}

// Byte classes for the leading-byte dispatch table. Each input byte maps to
// exactly one class; the lexer's main loop is a single table load plus a
// jump, with no lookahead needed to pick the handler.
const CL_PUNCT: u8 = 0; // fallback: emit as Punct
const CL_WS: u8 = 1; // space, \t, \r, \n, VT, FF
const CL_IDENT: u8 = 2; // ASCII alpha, `_`, `$`, and all bytes >= 0x80
const CL_DIGIT: u8 = 3; // 0-9
const CL_LPAREN: u8 = 4;
const CL_RPAREN: u8 = 5;
const CL_COMMA: u8 = 6;
const CL_SEMI: u8 = 7;
const CL_EQ: u8 = 8;
const CL_DOT: u8 = 9; // Dot token or leading-dot number
const CL_MINUS: u8 = 10; // `--` line comment or Punct('-')
const CL_HASH: u8 = 11; // `#` line comment
const CL_SLASH: u8 = 12; // `/*` block comment or Punct('/')
const CL_SQUOTE: u8 = 13; // string literal
const CL_DQUOTE: u8 = 14; // string literal or ANSI quoted identifier
const CL_BACKQ: u8 = 15; // backquoted identifier
const CL_LBRACK: u8 = 16; // T-SQL bracket-quoted identifier

const fn build_class_table() -> [u8; 256] {
    let mut t = [CL_PUNCT; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        t[i] = match b {
            b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => CL_WS,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => CL_IDENT,
            b'0'..=b'9' => CL_DIGIT,
            b'(' => CL_LPAREN,
            b')' => CL_RPAREN,
            b',' => CL_COMMA,
            b';' => CL_SEMI,
            b'=' => CL_EQ,
            b'.' => CL_DOT,
            b'-' => CL_MINUS,
            b'#' => CL_HASH,
            b'/' => CL_SLASH,
            b'\'' => CL_SQUOTE,
            b'"' => CL_DQUOTE,
            b'`' => CL_BACKQ,
            b'[' => CL_LBRACK,
            _ => {
                if b >= 0x80 {
                    CL_IDENT // MySQL permits non-ASCII identifier bytes
                } else {
                    CL_PUNCT
                }
            }
        };
        i += 1;
    }
    t
}

/// Leading-byte dispatch table: byte value → token class.
static CLASS: [u8; 256] = build_class_table();

// Identifier-continuation lookup: true for ASCII alnum, `_`, `$`. Non-ASCII
// continuation bytes are handled separately (they advance by UTF-8 width).
const fn build_ident_cont_table() -> [bool; 256] {
    let mut t = [false; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        t[i] = matches!(b, b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$');
        i += 1;
    }
    t
}

static IDENT_CONT: [bool; 256] = build_ident_cont_table();

// ---- memchr-style SWAR scanning -----------------------------------------
//
// The vendored dependency set has no `memchr` crate, so the classic
// word-at-a-time trick is implemented here: read eight bytes as a `u64`,
// XOR with the needle splatted across all lanes, and detect a zero lane
// with the `(x - 0x01..) & !x & 0x80..` bit test. Only the hit chunk is
// re-scanned bytewise.

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

#[inline(always)]
fn contains_zero_byte(x: u64) -> bool {
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI != 0
}

#[inline(always)]
fn splat(b: u8) -> u64 {
    u64::from(b) * SWAR_LO
}

/// Index of the first occurrence of `needle` in `hay`, if any.
#[inline]
fn memchr1(needle: u8, hay: &[u8]) -> Option<usize> {
    let n = splat(needle);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let chunk = u64::from_ne_bytes([
            hay[i],
            hay[i + 1],
            hay[i + 2],
            hay[i + 3],
            hay[i + 4],
            hay[i + 5],
            hay[i + 6],
            hay[i + 7],
        ]);
        if contains_zero_byte(chunk ^ n) {
            break;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the first occurrence of `a` or `b` in `hay`, if any.
#[inline]
fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let na = splat(a);
    let nb = splat(b);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let chunk = u64::from_ne_bytes([
            hay[i],
            hay[i + 1],
            hay[i + 2],
            hay[i + 3],
            hay[i + 4],
            hay[i + 5],
            hay[i + 6],
            hay[i + 7],
        ]);
        if contains_zero_byte(chunk ^ na) || contains_zero_byte(chunk ^ nb) {
            break;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Byte width of the UTF-8 character whose lead byte is `b`.
///
/// The lexer only receives `&str` input, so lead bytes are always valid;
/// the `_ => 1` arm keeps the function total without panicking.
#[inline(always)]
fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(input: &'s str) -> Self {
        Lexer {
            src: input.as_bytes(),
            pos: 0,
            // One token per ~6 source bytes is typical for DDL dumps;
            // pre-sizing avoids the early doubling churn on every parse.
            tokens: Vec::with_capacity(input.len() / 6 + 4),
        }
    }

    #[inline(always)]
    fn byte(&self, i: usize) -> Option<u8> {
        self.src.get(i).copied()
    }

    #[inline(always)]
    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> (Vec<Token>, Option<ParseError>) {
        let len = self.src.len();
        while self.pos < len {
            let b = self.src[self.pos];
            let start = self.pos;
            let step: Result<(), ParseError> = match CLASS[b as usize] {
                CL_WS => {
                    // Consume the whole whitespace run in one tight loop.
                    self.pos += 1;
                    while self.pos < len && CLASS[self.src[self.pos] as usize] == CL_WS {
                        self.pos += 1;
                    }
                    Ok(())
                }
                CL_IDENT => {
                    self.bare_ident(start);
                    Ok(())
                }
                CL_DIGIT => {
                    self.number(start);
                    Ok(())
                }
                CL_LPAREN => {
                    self.pos += 1;
                    self.push(TokenKind::LParen, start);
                    Ok(())
                }
                CL_RPAREN => {
                    self.pos += 1;
                    self.push(TokenKind::RParen, start);
                    Ok(())
                }
                CL_COMMA => {
                    self.pos += 1;
                    self.push(TokenKind::Comma, start);
                    Ok(())
                }
                CL_SEMI => {
                    self.pos += 1;
                    self.push(TokenKind::Semicolon, start);
                    Ok(())
                }
                CL_EQ => {
                    self.pos += 1;
                    self.push(TokenKind::Eq, start);
                    Ok(())
                }
                CL_DOT => {
                    if matches!(self.byte(self.pos + 1), Some(b'0'..=b'9')) {
                        self.number(start);
                    } else {
                        self.pos += 1;
                        self.push(TokenKind::Dot, start);
                    }
                    Ok(())
                }
                CL_MINUS => {
                    if self.byte(self.pos + 1) == Some(b'-') {
                        self.line_comment();
                    } else {
                        self.pos += 1;
                        self.push(TokenKind::Punct('-'), start);
                    }
                    Ok(())
                }
                CL_HASH => {
                    self.line_comment();
                    Ok(())
                }
                CL_SLASH => {
                    if self.byte(self.pos + 1) == Some(b'*') {
                        self.block_comment(start)
                    } else {
                        self.pos += 1;
                        self.push(TokenKind::Punct('/'), start);
                        Ok(())
                    }
                }
                CL_SQUOTE => self.string_lit(b'\'', start),
                CL_DQUOTE => self.string_lit(b'"', start),
                CL_BACKQ => self.quoted_ident(b'`', b'`', start),
                CL_LBRACK => self.quoted_ident(b'[', b']', start),
                _ => {
                    // Any other punctuation: emit as Punct so the tolerant
                    // parser can skip it inside statements it ignores. Only
                    // ASCII bytes reach here (>= 0x80 classifies as ident),
                    // so the char is the byte itself.
                    self.pos += 1;
                    self.push(TokenKind::Punct(b as char), start);
                    Ok(())
                }
            };
            if let Err(e) = step {
                // Lex errors only fire at end of input, so the accumulated
                // tokens form the complete well-formed prefix.
                return (self.tokens, Some(e));
            }
        }
        (self.tokens, None)
    }

    /// Decode the character at `pos` and return it with its byte width.
    ///
    /// Input is always a `&str`, so decoding cannot actually fail; the
    /// fallback arms keep this panic-free regardless.
    #[inline]
    fn char_at(&self, pos: usize) -> (char, usize) {
        let rest = &self.src[pos..];
        let w = utf8_width(rest[0]).min(rest.len());
        match std::str::from_utf8(&rest[..w]) {
            Ok(s) => match s.chars().next() {
                Some(c) => (c, c.len_utf8()),
                None => ('\u{fffd}', 1),
            },
            Err(_) => ('\u{fffd}', 1),
        }
    }

    /// Slice `[start, end)` out of the source as UTF-8 text.
    ///
    /// Both bounds always fall on character boundaries (scans only stop on
    /// ASCII bytes or after whole characters), so the lossy fallback never
    /// allocates in practice.
    #[inline]
    fn text(&self, start: usize, end: usize) -> String {
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }

    fn line_comment(&mut self) {
        // Leave the terminating `\n` for the whitespace handler, exactly
        // like the reference lexer does.
        match memchr1(b'\n', &self.src[self.pos..]) {
            Some(i) => self.pos += i,
            None => self.pos = self.src.len(),
        }
    }

    fn block_comment(&mut self, start: usize) -> Result<(), ParseError> {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            // Skip ahead to the next byte that could open or close a
            // comment; everything in between is comment body.
            match memchr2(b'*', b'/', &self.src[self.pos..]) {
                Some(i) => self.pos += i,
                None => self.pos = self.src.len(),
            }
            match self.byte(self.pos) {
                Some(b'*') if self.byte(self.pos + 1) == Some(b'/') => {
                    self.pos += 2;
                    depth -= 1;
                }
                Some(b'/') if self.byte(self.pos + 1) == Some(b'*') => {
                    // MySQL does not nest comments but some dumps do; be lenient.
                    self.pos += 2;
                    depth += 1;
                }
                Some(_) => {
                    self.pos += 1;
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated block comment",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        Ok(())
    }

    fn string_lit(&mut self, quote: u8, start: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            // Bulk-copy everything up to the next quote or escape; plain
            // string bodies take exactly one scan and one extend.
            let chunk_start = self.pos;
            match memchr2(quote, b'\\', &self.src[self.pos..]) {
                Some(i) => self.pos += i,
                None => self.pos = self.src.len(),
            }
            if self.pos > chunk_start {
                text.push_str(&String::from_utf8_lossy(&self.src[chunk_start..self.pos]));
            }
            match self.byte(self.pos) {
                Some(b'\\') => {
                    // MySQL-style backslash escape: keep the escaped char.
                    self.pos += 1;
                    if self.pos >= self.src.len() {
                        return Err(ParseError::lex(
                            "unterminated string literal",
                            Span::new(start, self.pos),
                        ));
                    }
                    let (c, w) = self.char_at(self.pos);
                    self.pos += w;
                    text.push(unescape(c));
                }
                Some(_) => {
                    // Must be the quote byte itself.
                    if self.byte(self.pos + 1) == Some(quote) {
                        // Doubled quote: literal quote character.
                        text.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        // A double-quoted token is ambiguous: MySQL treats `"x"` as a string,
        // ANSI SQL as an identifier. We emit double-quoted text as a quoted
        // identifier when it looks like one, because DDL dumps overwhelmingly
        // use `"name"` in the identifier position. Single quotes are always
        // string literals.
        if quote == b'"' && looks_like_identifier(&text) {
            self.push(TokenKind::QuotedIdent(text), start);
        } else {
            self.push(TokenKind::StringLit(text), start);
        }
        Ok(())
    }

    fn quoted_ident(&mut self, open: u8, close: u8, start: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening delimiter
        let mut text = String::new();
        loop {
            let chunk_start = self.pos;
            match memchr1(close, &self.src[self.pos..]) {
                Some(i) => self.pos += i,
                None => self.pos = self.src.len(),
            }
            if self.pos > chunk_start {
                text.push_str(&String::from_utf8_lossy(&self.src[chunk_start..self.pos]));
            }
            match self.byte(self.pos) {
                Some(_) => {
                    // Must be the close byte.
                    if close == open && self.byte(self.pos + 1) == Some(close) {
                        // Doubled backquote inside a backquoted name.
                        text.push(close as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated quoted identifier",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        self.push(TokenKind::QuotedIdent(text), start);
        Ok(())
    }

    fn number(&mut self, start: usize) {
        let len = self.src.len();
        let mut seen_dot = false;
        let mut seen_exp = false;
        // Hex literal.
        if self.src[self.pos] == b'0' && matches!(self.byte(self.pos + 1), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            while self.pos < len && self.src[self.pos].is_ascii_hexdigit() {
                self.pos += 1;
            }
            let text = self.text(start, self.pos);
            self.push(TokenKind::Number(text), start);
            return;
        }
        while self.pos < len {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by digit or sign+digit.
                    let next = self.byte(self.pos + 1);
                    let after_sign = self.byte(self.pos + 2);
                    let is_exp = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(after_sign, Some(b'0'..=b'9')));
                    if is_exp {
                        seen_exp = true;
                        self.pos += 1;
                        if matches!(self.byte(self.pos), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = self.text(start, self.pos);
        self.push(TokenKind::Number(text), start);
    }

    fn bare_ident(&mut self, start: usize) {
        let len = self.src.len();
        // ASCII identifiers (the overwhelmingly common case) run through
        // the continuation table one byte per iteration; non-ASCII chars
        // advance by their UTF-8 width.
        while self.pos < len {
            let b = self.src[self.pos];
            if IDENT_CONT[b as usize] {
                self.pos += 1;
            } else if b >= 0x80 {
                // Non-ASCII identifier characters (MySQL permits them).
                self.pos += utf8_width(b).min(len - self.pos);
            } else {
                break;
            }
        }
        let text = self.text(start, self.pos);
        self.push(TokenKind::Ident(text), start);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b'$' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

fn looks_like_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().map(is_ident_start).unwrap_or(false)
        && s.bytes().all(|b| is_ident_continue(b) || b >= 0x80)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(sql: &str) -> Vec<K> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_create_table_header() {
        let ks = kinds("CREATE TABLE users (");
        assert_eq!(
            ks,
            vec![
                K::Ident("CREATE".into()),
                K::Ident("TABLE".into()),
                K::Ident("users".into()),
                K::LParen,
            ]
        );
    }

    #[test]
    fn skips_line_comments_both_styles() {
        let ks = kinds("a -- hidden\n# also hidden\nb");
        assert_eq!(ks, vec![K::Ident("a".into()), K::Ident("b".into())]);
    }

    #[test]
    fn skips_block_and_executable_comments() {
        let ks = kinds("/* x */ a /*!40101 SET NAMES utf8 */ b");
        assert_eq!(ks, vec![K::Ident("a".into()), K::Ident("b".into())]);
    }

    #[test]
    fn backquoted_identifier_with_doubled_quote() {
        let ks = kinds("`we``ird`");
        assert_eq!(ks, vec![K::QuotedIdent("we`ird".into())]);
    }

    #[test]
    fn bracket_quoted_identifier() {
        let ks = kinds("[order]");
        assert_eq!(ks, vec![K::QuotedIdent("order".into())]);
    }

    #[test]
    fn single_quoted_string_with_escapes() {
        let ks = kinds(r"'it\'s ok'");
        assert_eq!(ks, vec![K::StringLit("it's ok".into())]);
    }

    #[test]
    fn doubled_single_quote_escape() {
        let ks = kinds("'it''s ok'");
        assert_eq!(ks, vec![K::StringLit("it's ok".into())]);
    }

    #[test]
    fn double_quoted_name_becomes_quoted_ident() {
        let ks = kinds(r#""users""#);
        assert_eq!(ks, vec![K::QuotedIdent("users".into())]);
    }

    #[test]
    fn double_quoted_sentence_stays_string() {
        let ks = kinds(r#""hello world""#);
        assert_eq!(ks, vec![K::StringLit("hello world".into())]);
    }

    #[test]
    fn numbers_integer_decimal_hex_exponent() {
        let ks = kinds("11 10.5 0xFF 1e3 2.5E-4");
        assert_eq!(
            ks,
            vec![
                K::Number("11".into()),
                K::Number("10.5".into()),
                K::Number("0xFF".into()),
                K::Number("1e3".into()),
                K::Number("2.5E-4".into()),
            ]
        );
    }

    #[test]
    fn dot_between_identifiers_is_dot_token() {
        let ks = kinds("db.users");
        assert_eq!(
            ks,
            vec![
                K::Ident("db".into()),
                K::Dot,
                K::Ident("users".into()),
            ]
        );
    }

    #[test]
    fn punctuation_tokens() {
        let ks = kinds("( ) , ; = < >");
        assert_eq!(
            ks,
            vec![
                K::LParen,
                K::RParen,
                K::Comma,
                K::Semicolon,
                K::Eq,
                K::Punct('<'),
                K::Punct('>'),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn unterminated_backquote_is_error() {
        assert!(tokenize("`oops").is_err());
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }

    #[test]
    fn non_ascii_identifier() {
        let ks = kinds("tabelle_größe");
        assert_eq!(ks, vec![K::Ident("tabelle_größe".into())]);
    }

    #[test]
    fn windows_line_endings() {
        let ks = kinds("a\r\nb");
        assert_eq!(ks, vec![K::Ident("a".into()), K::Ident("b".into())]);
    }

    #[test]
    fn dollar_in_identifier() {
        let ks = kinds("v$session");
        assert_eq!(ks, vec![K::Ident("v$session".into())]);
    }

    #[test]
    fn unterminated_errors_carry_opening_byte_offset() {
        // The error span must point at the byte that opened the
        // never-closed token, so quarantine provenance is actionable.
        let err = tokenize("SELECT 1; 'oops").unwrap_err();
        assert_eq!(err.span.start, 10);
        let err = tokenize("ab /* oops").unwrap_err();
        assert_eq!(err.span.start, 3);
        let err = tokenize(";`oops").unwrap_err();
        assert_eq!(err.span.start, 1);
    }

    #[test]
    fn recovering_tokenizer_keeps_wellformed_prefix() {
        let (tokens, err) = tokenize_recovering("CREATE TABLE t 'never closed");
        let err = err.expect("unterminated string must be reported");
        assert_eq!(err.span.start, 15);
        let kinds: Vec<_> = tokens.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                K::Ident("CREATE".into()),
                K::Ident("TABLE".into()),
                K::Ident("t".into()),
            ]
        );
        // Every recovered token ends before the error.
        assert!(tokens.iter().all(|t| t.span.end <= err.span.start));
    }

    #[test]
    fn recovering_tokenizer_is_identity_on_clean_input() {
        let clean = "CREATE TABLE t (id INT); -- done\n";
        let (tokens, err) = tokenize_recovering(clean);
        assert!(err.is_none());
        assert_eq!(tokens, tokenize(clean).unwrap());
    }

    #[test]
    fn memchr_helpers_cover_chunk_and_tail_positions() {
        let hay = b"abcdefghijklmnop";
        for (i, &b) in hay.iter().enumerate() {
            assert_eq!(memchr1(b, hay), Some(i));
            assert_eq!(memchr2(b, 0, hay), Some(i));
            assert_eq!(memchr2(0, b, hay), Some(i));
        }
        assert_eq!(memchr1(b'z', hay), None);
        assert_eq!(memchr2(b'z', b'!', hay), None);
        assert_eq!(memchr1(b'x', b""), None);
    }

    #[test]
    fn fast_path_matches_reference_on_representative_corpus() {
        // Belt-and-braces behind the proptest battery: a fixed set of
        // nasty inputs runs on every `cargo test`.
        let cases = [
            "CREATE TABLE `t` (id INT(11) NOT NULL, PRIMARY KEY (id));",
            "/* outer /* inner */ still comment */ SELECT 1;",
            "-- line\n# hash\nCREATE TABLE x(y TEXT DEFAULT 'a\\'b');",
            "'unterminated",
            "`unterminated",
            "/* unterminated",
            "\"ansi_ident\" \"two words\" [bracketed] `back``quote`",
            "0x 0xFF 1.5e+10 .5 1. a.b .x",
            "sel\u{fffd}ect größe 'füß\\ne'",
            "a\\b \u{0b}\u{0c}\r\n ; = < > ~ @ ^",
            "",
            "'' \"\" ``",
        ];
        for sql in cases {
            let (fast, fe) = tokenize_recovering(sql);
            let (slow, se) = reference::tokenize_recovering(sql);
            assert_eq!(fast, slow, "token divergence on {sql:?}");
            assert_eq!(
                fe.map(|e| (e.span, e.to_string())),
                se.map(|e| (e.span, e.to_string())),
                "error divergence on {sql:?}"
            );
        }
    }
}
