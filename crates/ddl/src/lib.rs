//! # schevo-ddl
//!
//! A tolerant, MySQL-flavored SQL DDL front end for schema-evolution mining.
//!
//! The crate provides everything needed to turn the raw text of a project's
//! DDL file (one version of its `schema.sql`) into a *logical schema*: the
//! set of tables, their ordered attributes, attribute data types, and primary
//! keys. This is the exact granularity at which the ICDE 2021 study
//! *"Profiles of Schema Evolution in Free Open Source Software Projects"*
//! measures change: everything else in the file (comments, `INSERT`
//! statements, index definitions, vendor directives, storage options) is
//! deliberately ignored, because changes to those artifacts are "non-active"
//! commits in the study's nomenclature.
//!
//! ## Pipeline
//!
//! ```text
//! &str ──lexer──▶ Vec<Token> ──parser──▶ Script(AST) ──schema──▶ Schema
//! ```
//!
//! * [`lexer`] tokenizes SQL with full comment/string/quoted-identifier
//!   handling and byte-accurate spans.
//! * [`parser`] is a *tolerant* recursive-descent parser: it fully parses
//!   `CREATE TABLE` statements and skips every other statement, so that a
//!   real-world dump full of `INSERT`s, `SET` directives and vendor noise
//!   still yields its logical schema.
//! * [`schema`] lowers the AST to the [`schema::Schema`] model and is the
//!   input to the diff engine in `schevo-core`.
//! * [`render`] pretty-prints a [`schema::Schema`] back to canonical DDL;
//!   `parse(render(s)) == s` is property-tested and is what the synthetic
//!   corpus generator uses to materialize file versions.
//!
//! ## Quick example
//!
//! ```
//! use schevo_ddl::parse_schema;
//!
//! let sql = r#"
//!     -- users of the system
//!     CREATE TABLE users (
//!         id INT(11) NOT NULL AUTO_INCREMENT,
//!         email VARCHAR(255) NOT NULL,
//!         PRIMARY KEY (id)
//!     ) ENGINE=InnoDB;
//!     INSERT INTO users VALUES (1, 'a@b.c');
//! "#;
//! let schema = parse_schema(sql).unwrap();
//! assert_eq!(schema.table_count(), 1);
//! assert_eq!(schema.attribute_count(), 2);
//! assert!(schema.table("users").unwrap().primary_key().contains(&"id".to_string()));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod schema;
pub mod token;
pub mod types;

pub use arena::{arena_bytes_total, ScriptArena};
pub use error::{ParseError, Span};
pub use lexer::tokenize_recovering;
pub use parser::{parse_script, parse_script_arena, Parser};
pub use schema::{Attribute, Schema, Table};

/// Parse the text of a DDL file straight into its logical [`Schema`].
///
/// This is the main entry point used by the mining pipeline: it runs the
/// tolerant parser over the whole script and lowers every `CREATE TABLE`
/// statement into the schema model. Statements that are not `CREATE TABLE`
/// are skipped; a file with no `CREATE TABLE` statements yields an empty
/// schema (the collection funnel filters such files out upstream).
///
/// # Errors
///
/// Returns [`ParseError`] only for input that cannot be tokenized or whose
/// `CREATE TABLE` statements are structurally broken beyond recovery.
pub fn parse_schema(sql: &str) -> Result<Schema, ParseError> {
    let _span = schevo_obs::span!("ddl.parse", bytes = sql.len());
    let arena = parse_script_arena(sql)?;
    arena::record_arena_bytes(arena.heap_bytes());
    Ok(schema::Schema::from_arena(&arena))
}

/// The result of a best-effort parse: the schema salvaged from the
/// well-formed part of the input, plus an account of what was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSchema {
    /// The schema lowered from every statement that survived.
    pub schema: Schema,
    /// The lex error that truncated tokenization, if any. When present,
    /// everything after its span start was discarded.
    pub lex_error: Option<ParseError>,
    /// `CREATE TABLE` statements that were structurally broken and
    /// degraded to skipped statements (statement-level recovery).
    pub dropped_statements: usize,
}

impl RecoveredSchema {
    /// Whether any content was lost relative to a strict parse.
    pub fn is_degraded(&self) -> bool {
        self.lex_error.is_some() || self.dropped_statements > 0
    }
}

/// Parse as much of a DDL file as possible, never failing.
///
/// Tokenization stops at the first lex error (unterminated string,
/// comment, or quoted identifier — all terminal by construction) and the
/// well-formed token prefix is parsed normally; structurally broken
/// `CREATE TABLE` statements degrade to skipped statements exactly as in
/// [`parse_schema`]. On clean input the result equals
/// `parse_schema(sql)` with no error and no drops — recovery never
/// perturbs the strict path.
pub fn parse_schema_recovering(sql: &str) -> RecoveredSchema {
    use arena::ArenaStatement;
    let (tokens, lex_error) = lexer::tokenize_recovering(sql);
    let arena = Parser::new(tokens).script_arena().unwrap_or_default();
    arena::record_arena_bytes(arena.heap_bytes());
    let dropped_statements = arena
        .statements()
        .iter()
        .filter(|s| matches!(s, ArenaStatement::Other { keyword } if keyword == "CREATE TABLE"))
        .count();
    RecoveredSchema {
        schema: schema::Schema::from_arena(&arena),
        lex_error,
        dropped_statements,
    }
}
