//! # schevo-ddl
//!
//! A tolerant, MySQL-flavored SQL DDL front end for schema-evolution mining.
//!
//! The crate provides everything needed to turn the raw text of a project's
//! DDL file (one version of its `schema.sql`) into a *logical schema*: the
//! set of tables, their ordered attributes, attribute data types, and primary
//! keys. This is the exact granularity at which the ICDE 2021 study
//! *"Profiles of Schema Evolution in Free Open Source Software Projects"*
//! measures change: everything else in the file (comments, `INSERT`
//! statements, index definitions, vendor directives, storage options) is
//! deliberately ignored, because changes to those artifacts are "non-active"
//! commits in the study's nomenclature.
//!
//! ## Pipeline
//!
//! ```text
//! &str ──lexer──▶ Vec<Token> ──parser──▶ Script(AST) ──schema──▶ Schema
//! ```
//!
//! * [`lexer`] tokenizes SQL with full comment/string/quoted-identifier
//!   handling and byte-accurate spans.
//! * [`parser`] is a *tolerant* recursive-descent parser: it fully parses
//!   `CREATE TABLE` statements and skips every other statement, so that a
//!   real-world dump full of `INSERT`s, `SET` directives and vendor noise
//!   still yields its logical schema.
//! * [`schema`] lowers the AST to the [`schema::Schema`] model and is the
//!   input to the diff engine in `schevo-core`.
//! * [`render`] pretty-prints a [`schema::Schema`] back to canonical DDL;
//!   `parse(render(s)) == s` is property-tested and is what the synthetic
//!   corpus generator uses to materialize file versions.
//!
//! ## Quick example
//!
//! ```
//! use schevo_ddl::parse_schema;
//!
//! let sql = r#"
//!     -- users of the system
//!     CREATE TABLE users (
//!         id INT(11) NOT NULL AUTO_INCREMENT,
//!         email VARCHAR(255) NOT NULL,
//!         PRIMARY KEY (id)
//!     ) ENGINE=InnoDB;
//!     INSERT INTO users VALUES (1, 'a@b.c');
//! "#;
//! let schema = parse_schema(sql).unwrap();
//! assert_eq!(schema.table_count(), 1);
//! assert_eq!(schema.attribute_count(), 2);
//! assert!(schema.table("users").unwrap().primary_key().contains(&"id".to_string()));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod schema;
pub mod token;
pub mod types;

pub use error::{ParseError, Span};
pub use parser::{parse_script, Parser};
pub use schema::{Attribute, Schema, Table};

/// Parse the text of a DDL file straight into its logical [`Schema`].
///
/// This is the main entry point used by the mining pipeline: it runs the
/// tolerant parser over the whole script and lowers every `CREATE TABLE`
/// statement into the schema model. Statements that are not `CREATE TABLE`
/// are skipped; a file with no `CREATE TABLE` statements yields an empty
/// schema (the collection funnel filters such files out upstream).
///
/// # Errors
///
/// Returns [`ParseError`] only for input that cannot be tokenized or whose
/// `CREATE TABLE` statements are structurally broken beyond recovery.
pub fn parse_schema(sql: &str) -> Result<Schema, ParseError> {
    let script = parse_script(sql)?;
    Ok(schema::Schema::from_script(&script))
}
