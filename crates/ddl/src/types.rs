//! SQL data-type model and normalization.
//!
//! The study counts an attribute as *maintained* when its data type changes.
//! Dialect noise must therefore not register as change: `INT`, `INTEGER` and
//! `INT(11)` describe the same logical type in MySQL dumps, while
//! `VARCHAR(100)` → `VARCHAR(255)` is a real type change. The
//! [`DataType::logical_eq`] relation encodes exactly that: family + length
//! parameters matter, display-width on integers and synonyms do not.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The normalized family of a SQL data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeFamily {
    /// `TINYINT`
    TinyInt,
    /// `SMALLINT`
    SmallInt,
    /// `MEDIUMINT`
    MediumInt,
    /// `INT` / `INTEGER`
    Int,
    /// `BIGINT`
    BigInt,
    /// `DECIMAL` / `NUMERIC` / `DEC`
    Decimal,
    /// `FLOAT`
    Float,
    /// `DOUBLE` / `DOUBLE PRECISION` / `REAL`
    Double,
    /// `BIT`
    Bit,
    /// `BOOLEAN` / `BOOL`
    Boolean,
    /// `CHAR` / `CHARACTER`
    Char,
    /// `VARCHAR` / `CHARACTER VARYING` / `CHARACTER(n) VARYING`
    Varchar,
    /// `TINYTEXT`, `TEXT`, `MEDIUMTEXT`, `LONGTEXT` — length class kept in params
    Text,
    /// `TINYBLOB`, `BLOB`, `MEDIUMBLOB`, `LONGBLOB`
    Blob,
    /// `BINARY`
    Binary,
    /// `VARBINARY`
    Varbinary,
    /// `DATE`
    Date,
    /// `TIME`
    Time,
    /// `DATETIME`
    DateTime,
    /// `TIMESTAMP`
    Timestamp,
    /// `YEAR`
    Year,
    /// `ENUM(...)`
    Enum,
    /// `SET(...)`
    Set,
    /// `JSON`
    Json,
    /// `UUID` / `GUID`
    Uuid,
    /// `GEOMETRY`, `POINT`, and friends
    Spatial,
    /// `SERIAL` / `BIGSERIAL` (Postgres-style auto-increment integers)
    Serial,
    /// Anything we do not recognize; the raw name is kept in
    /// [`DataType::raw_name`].
    Other,
}

impl TypeFamily {
    /// Whether integer display width (`INT(11)`) is a purely cosmetic
    /// parameter for this family.
    pub fn width_is_cosmetic(&self) -> bool {
        matches!(
            self,
            TypeFamily::TinyInt
                | TypeFamily::SmallInt
                | TypeFamily::MediumInt
                | TypeFamily::Int
                | TypeFamily::BigInt
                | TypeFamily::Serial
                | TypeFamily::Boolean
                | TypeFamily::Year
        )
    }

    /// The canonical spelling used when rendering.
    pub fn canonical_name(&self) -> &'static str {
        match self {
            TypeFamily::TinyInt => "TINYINT",
            TypeFamily::SmallInt => "SMALLINT",
            TypeFamily::MediumInt => "MEDIUMINT",
            TypeFamily::Int => "INT",
            TypeFamily::BigInt => "BIGINT",
            TypeFamily::Decimal => "DECIMAL",
            TypeFamily::Float => "FLOAT",
            TypeFamily::Double => "DOUBLE",
            TypeFamily::Bit => "BIT",
            TypeFamily::Boolean => "BOOLEAN",
            TypeFamily::Char => "CHAR",
            TypeFamily::Varchar => "VARCHAR",
            TypeFamily::Text => "TEXT",
            TypeFamily::Blob => "BLOB",
            TypeFamily::Binary => "BINARY",
            TypeFamily::Varbinary => "VARBINARY",
            TypeFamily::Date => "DATE",
            TypeFamily::Time => "TIME",
            TypeFamily::DateTime => "DATETIME",
            TypeFamily::Timestamp => "TIMESTAMP",
            TypeFamily::Year => "YEAR",
            TypeFamily::Enum => "ENUM",
            TypeFamily::Set => "SET",
            TypeFamily::Json => "JSON",
            TypeFamily::Uuid => "UUID",
            TypeFamily::Spatial => "GEOMETRY",
            TypeFamily::Serial => "SERIAL",
            TypeFamily::Other => "OTHER",
        }
    }
}

/// A parsed data type: family, numeric parameters, enum/set values, and the
/// raw spelling found in the source.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataType {
    /// Normalized family.
    pub family: TypeFamily,
    /// Numeric parameters in declaration order (length, or precision+scale).
    pub params: Vec<u32>,
    /// Value list for `ENUM`/`SET` types.
    pub values: Vec<String>,
    /// `UNSIGNED` modifier (significant for numeric types).
    pub unsigned: bool,
    /// The raw, uppercased type name from the source (for `Other` fidelity
    /// and diagnostics).
    pub raw_name: String,
}

impl DataType {
    /// Build a type from its raw name, classifying it into a family.
    pub fn from_name(raw: &str) -> Self {
        let upper = raw.to_ascii_uppercase();
        let family = classify(&upper);
        DataType {
            family,
            params: Vec::new(),
            values: Vec::new(),
            unsigned: false,
            raw_name: upper,
        }
    }

    /// Shorthand for a plain `INT`.
    pub fn int() -> Self {
        DataType::from_name("INT")
    }

    /// Shorthand for `VARCHAR(n)`.
    pub fn varchar(n: u32) -> Self {
        let mut t = DataType::from_name("VARCHAR");
        t.params.push(n);
        t
    }

    /// Shorthand for a plain `TEXT`.
    pub fn text() -> Self {
        DataType::from_name("TEXT")
    }

    /// Shorthand for `DATETIME`.
    pub fn datetime() -> Self {
        DataType::from_name("DATETIME")
    }

    /// Shorthand for `DECIMAL(p, s)`.
    pub fn decimal(p: u32, s: u32) -> Self {
        let mut t = DataType::from_name("DECIMAL");
        t.params.push(p);
        t.params.push(s);
        t
    }

    /// Logical equality: the relation under which a transition counts an
    /// attribute as "data type changed".
    ///
    /// Two types are logically equal when their families match, their
    /// *significant* parameters match, their signedness matches (for numeric
    /// families) and their value lists match (for `ENUM`/`SET`). For integer
    /// families the display width is cosmetic and ignored, so
    /// `INT(11) == INTEGER`.
    pub fn logical_eq(&self, other: &DataType) -> bool {
        if self.family != other.family {
            return false;
        }
        if self.family == TypeFamily::Other && self.raw_name != other.raw_name {
            return false;
        }
        if self.is_numeric() && self.unsigned != other.unsigned {
            return false;
        }
        if !self.family.width_is_cosmetic() && self.params != other.params {
            return false;
        }
        if matches!(self.family, TypeFamily::Enum | TypeFamily::Set)
            && self.values != other.values
        {
            return false;
        }
        true
    }

    /// Whether this is a numeric family (where `UNSIGNED` is significant).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.family,
            TypeFamily::TinyInt
                | TypeFamily::SmallInt
                | TypeFamily::MediumInt
                | TypeFamily::Int
                | TypeFamily::BigInt
                | TypeFamily::Decimal
                | TypeFamily::Float
                | TypeFamily::Double
                | TypeFamily::Serial
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.family == TypeFamily::Other {
            write!(f, "{}", self.raw_name)?;
        } else if self.family == TypeFamily::Text || self.family == TypeFamily::Blob {
            // Preserve TINYTEXT/MEDIUMTEXT/... spellings.
            write!(f, "{}", self.raw_name)?;
        } else {
            write!(f, "{}", self.family.canonical_name())?;
        }
        if matches!(self.family, TypeFamily::Enum | TypeFamily::Set) {
            write!(f, "(")?;
            for (i, v) in self.values.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "'{}'", v.replace('\'', "''"))?;
            }
            write!(f, ")")?;
        } else if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        if self.unsigned {
            write!(f, " UNSIGNED")?;
        }
        Ok(())
    }
}

/// Map an uppercased raw type name to its family.
fn classify(upper: &str) -> TypeFamily {
    match upper {
        "TINYINT" | "INT1" => TypeFamily::TinyInt,
        "SMALLINT" | "INT2" => TypeFamily::SmallInt,
        "MEDIUMINT" | "INT3" | "MIDDLEINT" => TypeFamily::MediumInt,
        "INT" | "INTEGER" | "INT4" => TypeFamily::Int,
        "BIGINT" | "INT8" => TypeFamily::BigInt,
        "DECIMAL" | "NUMERIC" | "DEC" | "FIXED" | "NUMBER" | "MONEY" => TypeFamily::Decimal,
        "FLOAT" | "FLOAT4" => TypeFamily::Float,
        "DOUBLE" | "REAL" | "FLOAT8" => TypeFamily::Double,
        "BIT" => TypeFamily::Bit,
        "BOOLEAN" | "BOOL" => TypeFamily::Boolean,
        "CHAR" | "CHARACTER" | "NCHAR" => TypeFamily::Char,
        "VARCHAR" | "NVARCHAR" | "VARCHAR2" | "CHARACTERVARYING" => TypeFamily::Varchar,
        "TEXT" | "TINYTEXT" | "MEDIUMTEXT" | "LONGTEXT" | "CLOB" | "NTEXT" => TypeFamily::Text,
        "BLOB" | "TINYBLOB" | "MEDIUMBLOB" | "LONGBLOB" | "BYTEA" | "IMAGE" => TypeFamily::Blob,
        "BINARY" => TypeFamily::Binary,
        "VARBINARY" => TypeFamily::Varbinary,
        "DATE" => TypeFamily::Date,
        "TIME" => TypeFamily::Time,
        "DATETIME" | "SMALLDATETIME" | "DATETIME2" => TypeFamily::DateTime,
        "TIMESTAMP" | "TIMESTAMPTZ" => TypeFamily::Timestamp,
        "YEAR" => TypeFamily::Year,
        "ENUM" => TypeFamily::Enum,
        "SET" => TypeFamily::Set,
        "JSON" | "JSONB" => TypeFamily::Json,
        "UUID" | "GUID" | "UNIQUEIDENTIFIER" => TypeFamily::Uuid,
        "GEOMETRY" | "POINT" | "LINESTRING" | "POLYGON" | "MULTIPOINT" | "MULTILINESTRING"
        | "MULTIPOLYGON" | "GEOMETRYCOLLECTION" => TypeFamily::Spatial,
        "SERIAL" | "BIGSERIAL" | "SMALLSERIAL" => TypeFamily::Serial,
        _ => TypeFamily::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(name: &str) -> DataType {
        DataType::from_name(name)
    }

    #[test]
    fn synonyms_share_a_family() {
        assert_eq!(ty("INTEGER").family, TypeFamily::Int);
        assert_eq!(ty("int").family, TypeFamily::Int);
        assert_eq!(ty("NUMERIC").family, TypeFamily::Decimal);
        assert_eq!(ty("bool").family, TypeFamily::Boolean);
        assert_eq!(ty("longtext").family, TypeFamily::Text);
    }

    #[test]
    fn int_display_width_is_cosmetic() {
        let mut a = ty("INT");
        a.params.push(11);
        let b = ty("INTEGER");
        assert!(a.logical_eq(&b));
        assert!(b.logical_eq(&a));
    }

    #[test]
    fn varchar_length_is_significant() {
        assert!(!DataType::varchar(100).logical_eq(&DataType::varchar(255)));
        assert!(DataType::varchar(255).logical_eq(&DataType::varchar(255)));
    }

    #[test]
    fn decimal_precision_scale_significant() {
        assert!(!DataType::decimal(10, 2).logical_eq(&DataType::decimal(12, 2)));
        assert!(DataType::decimal(10, 2).logical_eq(&DataType::decimal(10, 2)));
    }

    #[test]
    fn signedness_matters_for_numerics() {
        let mut a = ty("INT");
        a.unsigned = true;
        assert!(!a.logical_eq(&ty("INT")));
    }

    #[test]
    fn enum_values_matter() {
        let mut a = ty("ENUM");
        a.values = vec!["a".into(), "b".into()];
        let mut b = ty("ENUM");
        b.values = vec!["a".into()];
        assert!(!a.logical_eq(&b));
        b.values.push("b".into());
        assert!(a.logical_eq(&b));
    }

    #[test]
    fn other_types_compare_by_raw_name() {
        assert!(ty("HYPERLOGLOG").logical_eq(&ty("hyperloglog")));
        assert!(!ty("HYPERLOGLOG").logical_eq(&ty("SKETCH")));
    }

    #[test]
    fn text_size_classes_are_distinct_spellings_same_family() {
        // TEXT vs LONGTEXT: same family, params empty — logically equal only
        // when raw spelling aside; we treat family Text as one logical type
        // class, so TEXT -> LONGTEXT is NOT a type change under logical_eq.
        assert!(ty("TEXT").logical_eq(&ty("LONGTEXT")));
    }

    #[test]
    fn display_renders_canonically() {
        let mut v = DataType::varchar(255);
        assert_eq!(v.to_string(), "VARCHAR(255)");
        v.unsigned = false;
        let mut e = ty("ENUM");
        e.values = vec!["on".into(), "off".into()];
        assert_eq!(e.to_string(), "ENUM('on','off')");
        let mut i = ty("INT");
        i.unsigned = true;
        assert_eq!(i.to_string(), "INT UNSIGNED");
        assert_eq!(ty("LONGTEXT").to_string(), "LONGTEXT");
    }

    #[test]
    fn display_escapes_enum_quotes() {
        let mut e = ty("ENUM");
        e.values = vec!["it's".into()];
        assert_eq!(e.to_string(), "ENUM('it''s')");
    }
}
