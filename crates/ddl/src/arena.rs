//! Index-based arena storage for parsed scripts.
//!
//! The tolerant parser used to build a [`Script`] with one heap-allocated
//! `Vec` per statement (columns, constraints, alter-ops, options), which
//! meant a dump with hundreds of `CREATE TABLE` statements paid thousands
//! of small allocations per parse — on the hottest path of the whole
//! pipeline. A [`ScriptArena`] replaces that shape with flat, shared pools:
//! every column of every statement lives in one `Vec<ColumnDef>`, and a
//! statement holds a [`PoolRange`] (a `u32` start/len pair) into the pool
//! instead of owning a vector.
//!
//! Indices are used instead of references deliberately: the arena is built
//! incrementally while the parser backtracks (`CREATE TABLE` degradation
//! truncates the pools back to a checkpoint), and a self-referential
//! `&`-based design would freeze the pools the moment the first statement
//! borrowed them. Ranges also stay valid across moves, so the finished
//! arena can be returned by value and dropped in one deallocation per pool.
//!
//! The arena's heap footprint is tracked in a process-wide relaxed counter
//! surfaced as the `parse.arena_bytes` metric. The counter never feeds any
//! study output — the observability layer's never-perturb invariant covers
//! it — it exists so the perf lab can report allocator pressure.

use crate::ast::{
    AlterOp, AlterTable, ColumnDef, CreateTable, Script, Statement, TableConstraint,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative arena heap bytes since process start (all parses, all threads).
static ARENA_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total arena bytes allocated by every parse so far, process-wide.
///
/// Monotonic and cumulative: a per-run figure is the difference between two
/// readings. Relaxed ordering is sufficient — the counter is diagnostic.
pub fn arena_bytes_total() -> u64 {
    ARENA_BYTES.load(Ordering::Relaxed)
}

/// Record a finished arena's footprint into [`arena_bytes_total`].
pub(crate) fn record_arena_bytes(bytes: usize) {
    ARENA_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// A half-open `[start, start+len)` slice of one of the arena's pools.
///
/// `u32` indices keep the range at 8 bytes (a `Range<usize>` is 16) and
/// bound each pool at four billion entries — far beyond any real dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolRange {
    start: u32,
    len: u32,
}

impl PoolRange {
    fn new(start: usize, end: usize) -> Self {
        PoolRange {
            start: start as u32,
            len: (end - start) as u32,
        }
    }

    /// Number of pooled items in the range.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bounds(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One top-level statement, with its variable-length parts stored as pool
/// ranges rather than owned vectors. The arena-side mirror of [`Statement`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArenaStatement {
    /// A fully parsed `CREATE TABLE`.
    CreateTable(ArenaCreateTable),
    /// A parsed `ALTER TABLE`; `ops` indexes the arena's op pool.
    AlterTable {
        /// Target table name (unqualified).
        name: String,
        /// Alterations in order, in the op pool.
        ops: PoolRange,
    },
    /// A parsed `DROP TABLE`; `names` indexes the string pool.
    DropTable {
        /// Names of the dropped tables, in the string pool.
        names: PoolRange,
    },
    /// Any other statement, skipped by the tolerant parser.
    Other {
        /// The leading keyword(s) identifying the statement, uppercased.
        keyword: String,
    },
}

/// A `CREATE TABLE` whose columns, constraints and options live in the
/// arena pools. The arena-side mirror of [`CreateTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaCreateTable {
    /// Table name, unqualified (a `db.` qualifier is stripped but recorded).
    pub name: String,
    /// Optional schema/database qualifier that preceded the name.
    pub qualifier: Option<String>,
    /// Whether `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
    /// Whether `TEMPORARY` was present.
    pub temporary: bool,
    /// Column definitions in declaration order, in the column pool.
    pub columns: PoolRange,
    /// Table-level constraints in declaration order, in the constraint pool.
    pub constraints: PoolRange,
    /// Trailing table options, in the string pool.
    pub options: PoolRange,
}

/// Marks of all pool lengths at one instant; used by the parser to roll
/// the arena back when a statement fails and degrades to a skip.
#[derive(Debug, Clone, Copy)]
pub struct ArenaMark {
    columns: usize,
    constraints: usize,
    ops: usize,
    strings: usize,
}

/// Flat storage for one parsed script: statements plus the shared pools
/// their [`PoolRange`]s index into.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ScriptArena {
    statements: Vec<ArenaStatement>,
    columns: Vec<ColumnDef>,
    constraints: Vec<TableConstraint>,
    ops: Vec<AlterOp>,
    strings: Vec<String>,
}

impl ScriptArena {
    /// Statements in file order.
    pub fn statements(&self) -> &[ArenaStatement] {
        &self.statements
    }

    /// The columns of `range`, in declaration order.
    pub fn columns(&self, range: PoolRange) -> &[ColumnDef] {
        &self.columns[range.bounds()]
    }

    /// The constraints of `range`, in declaration order.
    pub fn constraints(&self, range: PoolRange) -> &[TableConstraint] {
        &self.constraints[range.bounds()]
    }

    /// The alter-ops of `range`, in statement order.
    pub fn ops(&self, range: PoolRange) -> &[AlterOp] {
        &self.ops[range.bounds()]
    }

    /// The pooled strings of `range` (drop-table names, table options).
    pub fn strings(&self, range: PoolRange) -> &[String] {
        &self.strings[range.bounds()]
    }

    /// The primary-key columns of a pooled `CREATE TABLE`: a table-level
    /// `PRIMARY KEY` constraint wins, else the inline-marked columns.
    /// Mirrors [`CreateTable::primary_key_columns`].
    pub fn primary_key_columns(&self, ct: &ArenaCreateTable) -> Vec<String> {
        for c in self.constraints(ct.constraints) {
            if let TableConstraint::PrimaryKey { columns, .. } = c {
                return columns.clone();
            }
        }
        self.columns(ct.columns)
            .iter()
            .filter(|c| c.inline_primary_key)
            .map(|c| c.name.clone())
            .collect()
    }

    /// Iterate the pooled `CREATE TABLE` statements, in file order.
    pub fn create_tables(&self) -> impl Iterator<Item = &ArenaCreateTable> {
        self.statements.iter().filter_map(|s| match s {
            ArenaStatement::CreateTable(ct) => Some(ct),
            _ => None,
        })
    }

    // -- builder surface used by the parser --------------------------------

    pub(crate) fn push_statement(&mut self, s: ArenaStatement) {
        self.statements.push(s);
    }

    pub(crate) fn push_column(&mut self, c: ColumnDef) {
        self.columns.push(c);
    }

    pub(crate) fn push_constraint(&mut self, c: TableConstraint) {
        self.constraints.push(c);
    }

    pub(crate) fn push_op(&mut self, op: AlterOp) {
        self.ops.push(op);
    }

    pub(crate) fn push_string(&mut self, s: String) {
        self.strings.push(s);
    }

    /// Snapshot every pool length, for later [`Self::truncate`].
    pub(crate) fn mark(&self) -> ArenaMark {
        ArenaMark {
            columns: self.columns.len(),
            constraints: self.constraints.len(),
            ops: self.ops.len(),
            strings: self.strings.len(),
        }
    }

    /// Roll every pool back to `mark`, discarding entries pushed since.
    /// Statement-level backtracking: ranges handed out after the mark are
    /// invalidated, which is fine because the failed statement that pushed
    /// them is discarded by the same rollback.
    pub(crate) fn truncate(&mut self, mark: ArenaMark) {
        self.columns.truncate(mark.columns);
        self.constraints.truncate(mark.constraints);
        self.ops.truncate(mark.ops);
        self.strings.truncate(mark.strings);
    }

    /// Range covering everything pushed to the column pool since `mark`.
    pub(crate) fn columns_since(&self, mark: ArenaMark) -> PoolRange {
        PoolRange::new(mark.columns, self.columns.len())
    }

    /// Range covering everything pushed to the constraint pool since `mark`.
    pub(crate) fn constraints_since(&self, mark: ArenaMark) -> PoolRange {
        PoolRange::new(mark.constraints, self.constraints.len())
    }

    /// Range covering everything pushed to the op pool since `mark`.
    pub(crate) fn ops_since(&self, mark: ArenaMark) -> PoolRange {
        PoolRange::new(mark.ops, self.ops.len())
    }

    /// Range covering everything pushed to the string pool since `mark`.
    pub(crate) fn strings_since(&self, mark: ArenaMark) -> PoolRange {
        PoolRange::new(mark.strings, self.strings.len())
    }

    /// Approximate heap footprint of the arena's pools in bytes. Element
    /// inline sizes only (nested strings are not chased): the figure feeds
    /// a diagnostic counter, not an allocator.
    pub fn heap_bytes(&self) -> usize {
        self.statements.capacity() * std::mem::size_of::<ArenaStatement>()
            + self.columns.capacity() * std::mem::size_of::<ColumnDef>()
            + self.constraints.capacity() * std::mem::size_of::<TableConstraint>()
            + self.ops.capacity() * std::mem::size_of::<AlterOp>()
            + self.strings.capacity() * std::mem::size_of::<String>()
    }

    /// Convert to the boxed-AST [`Script`] representation.
    ///
    /// Compatibility path for the pretty-printer round-trip tests and any
    /// caller that wants self-contained statements; the mining pipeline
    /// lowers the arena straight to a schema and never takes this copy.
    pub fn to_script(&self) -> Script {
        let statements = self
            .statements
            .iter()
            .map(|s| match s {
                ArenaStatement::CreateTable(ct) => Statement::CreateTable(CreateTable {
                    name: ct.name.clone(),
                    qualifier: ct.qualifier.clone(),
                    if_not_exists: ct.if_not_exists,
                    temporary: ct.temporary,
                    columns: self.columns(ct.columns).to_vec(),
                    constraints: self.constraints(ct.constraints).to_vec(),
                    options: self.strings(ct.options).to_vec(),
                }),
                ArenaStatement::AlterTable { name, ops } => Statement::AlterTable(AlterTable {
                    name: name.clone(),
                    ops: self.ops(*ops).to_vec(),
                }),
                ArenaStatement::DropTable { names } => Statement::DropTable {
                    names: self.strings(*names).to_vec(),
                },
                ArenaStatement::Other { keyword } => Statement::Other {
                    keyword: keyword.clone(),
                },
            })
            .collect();
        Script { statements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script_arena;
    use crate::types::DataType;

    #[test]
    fn pools_are_shared_across_statements() {
        let arena = parse_script_arena(
            "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z VARCHAR(10));",
        )
        .unwrap();
        let tables: Vec<_> = arena.create_tables().collect();
        assert_eq!(tables.len(), 2);
        assert_eq!(arena.columns(tables[0].columns).len(), 2);
        assert_eq!(arena.columns(tables[1].columns).len(), 1);
        // Both ranges index the same flat pool, back to back.
        assert_eq!(tables[0].columns.len() + tables[1].columns.len(), 3);
        assert_eq!(arena.columns(tables[1].columns)[0].name, "z");
    }

    #[test]
    fn to_script_round_trips_every_statement_kind() {
        let sql = "CREATE TABLE t (a INT, PRIMARY KEY (a)) ENGINE=InnoDB;\
                   ALTER TABLE t ADD COLUMN b INT;\
                   DROP TABLE u, v;\
                   INSERT INTO t VALUES (1);";
        let arena = parse_script_arena(sql).unwrap();
        let script = arena.to_script();
        assert_eq!(script.statements.len(), 4);
        assert_eq!(script.create_tables().count(), 1);
        let ct = script.create_tables().next().unwrap();
        assert_eq!(ct.columns.len(), 1);
        assert_eq!(ct.constraints.len(), 1);
        assert_eq!(ct.options, vec!["ENGINE=InnoDB".to_string()]);
        assert!(script
            .statements
            .iter()
            .any(|s| matches!(s, crate::ast::Statement::DropTable { names }
                if names == &["u".to_string(), "v".to_string()])));
    }

    #[test]
    fn truncate_rolls_back_all_pools() {
        let mut arena = ScriptArena::default();
        arena.push_string("keep".into());
        let mark = arena.mark();
        arena.push_column(ColumnDef::new("c", DataType::int()));
        arena.push_string("discard".into());
        arena.push_op(AlterOp::DropPrimaryKey);
        arena.truncate(mark);
        assert_eq!(arena.columns.len(), 0);
        assert_eq!(arena.ops.len(), 0);
        assert_eq!(arena.strings, vec!["keep".to_string()]);
    }

    #[test]
    fn primary_key_table_constraint_wins_over_inline() {
        let arena = parse_script_arena(
            "CREATE TABLE t (a INT PRIMARY KEY, b INT, PRIMARY KEY (b));",
        )
        .unwrap();
        let ct = arena.create_tables().next().unwrap();
        assert_eq!(arena.primary_key_columns(ct), vec!["b".to_string()]);
    }

    #[test]
    fn arena_bytes_counter_grows_with_parses() {
        let before = arena_bytes_total();
        let _ = crate::parse_schema("CREATE TABLE t (a INT, b TEXT, c DATETIME);");
        assert!(arena_bytes_total() > before, "parse must record arena bytes");
    }

    #[test]
    fn heap_bytes_reflects_pool_capacity() {
        let arena = parse_script_arena("CREATE TABLE t (a INT);").unwrap();
        assert!(arena.heap_bytes() >= std::mem::size_of::<ColumnDef>());
    }
}
