//! Canonical DDL rendering of a [`Schema`].
//!
//! The synthetic corpus materializes every schema version as actual SQL text
//! through this module, then commits that text into the VCS substrate — so
//! the mining pipeline parses *real* files, not in-memory objects. The
//! invariant `parse_schema(render(s)) == s` is property-tested.

use crate::schema::{Schema, Table};
use std::fmt::Write;

/// Options controlling rendered style, so that the corpus can imitate
/// different projects' dump styles (quoting, engine clauses, noise).
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Quote identifiers with backquotes (MySQL dump style).
    pub backquote_identifiers: bool,
    /// Append `ENGINE=InnoDB DEFAULT CHARSET=utf8` to each table.
    pub engine_clause: bool,
    /// A banner comment placed at the top of the file (projects often keep a
    /// changelog header there; editing it is a classic non-active commit).
    pub header_comment: Option<String>,
    /// Extra non-DDL statements appended after the tables (INSERT seeds,
    /// index creations) — also non-active content.
    pub trailer_statements: Vec<String>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            backquote_identifiers: true,
            engine_clause: true,
            header_comment: None,
            trailer_statements: Vec::new(),
        }
    }
}

/// Render a schema to canonical DDL text with default options.
pub fn render_schema(schema: &Schema) -> String {
    render_schema_with(schema, &RenderOptions::default())
}

/// Render a schema to DDL text with explicit [`RenderOptions`].
pub fn render_schema_with(schema: &Schema, opts: &RenderOptions) -> String {
    let mut out = String::new();
    if let Some(header) = &opts.header_comment {
        for line in header.lines() {
            let _ = writeln!(out, "-- {line}");
        }
        out.push('\n');
    }
    for table in schema.tables() {
        render_table(&mut out, table, opts);
        out.push('\n');
    }
    for stmt in &opts.trailer_statements {
        let _ = writeln!(out, "{stmt}");
    }
    out
}

fn quoted(name: &str, opts: &RenderOptions) -> String {
    if opts.backquote_identifiers {
        format!("`{}`", name.replace('`', "``"))
    } else {
        name.to_string()
    }
}

fn render_table(out: &mut String, table: &Table, opts: &RenderOptions) {
    let _ = writeln!(out, "CREATE TABLE {} (", quoted(&table.name, opts));
    let n = table.arity();
    let has_pk = !table.primary_key().is_empty();
    let fk_count = table.foreign_keys().len();
    for (i, attr) in table.attributes().iter().enumerate() {
        let _ = write!(
            out,
            "  {} {}",
            quoted(&attr.name, opts),
            attr.data_type
        );
        if attr.not_null {
            out.push_str(" NOT NULL");
        }
        if i + 1 < n || has_pk || fk_count > 0 {
            out.push(',');
        }
        out.push('\n');
    }
    if has_pk {
        let cols: Vec<String> = table
            .primary_key()
            .iter()
            .map(|c| quoted(c, opts))
            .collect();
        let _ = write!(out, "  PRIMARY KEY ({})", cols.join(", "));
        out.push_str(if fk_count > 0 { ",\n" } else { "\n" });
    }
    for (k, fk) in table.foreign_keys().iter().enumerate() {
        let cols: Vec<String> = fk.columns.iter().map(|c| quoted(c, opts)).collect();
        let _ = write!(
            out,
            "  FOREIGN KEY ({}) REFERENCES {}",
            cols.join(", "),
            quoted(&fk.foreign_table, opts)
        );
        if !fk.foreign_columns.is_empty() {
            let fcols: Vec<String> = fk.foreign_columns.iter().map(|c| quoted(c, opts)).collect();
            let _ = write!(out, " ({})", fcols.join(", "));
        }
        out.push_str(if k + 1 < fk_count { ",\n" } else { "\n" });
    }
    if opts.engine_clause {
        let _ = writeln!(out, ") ENGINE=InnoDB DEFAULT CHARSET=utf8;");
    } else {
        let _ = writeln!(out, ");");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;
    use crate::schema::{Attribute, Table};
    use crate::types::DataType;

    fn sample_schema() -> Schema {
        let mut s = Schema::new();
        let mut t = Table::new("users");
        let mut id = Attribute::new("id", DataType::int());
        id.not_null = true;
        t.push_attribute(id);
        t.push_attribute(Attribute::new("email", DataType::varchar(255)));
        t.push_attribute(Attribute::new("bio", DataType::text()));
        t.set_primary_key(vec!["id".into()]);
        s.upsert_table(t);
        let mut o = Table::new("orders");
        o.push_attribute(Attribute::new("id", DataType::int()));
        o.push_attribute(Attribute::new("total", DataType::decimal(10, 2)));
        s.upsert_table(o);
        s
    }

    #[test]
    fn round_trip_preserves_schema() {
        let s = sample_schema();
        let sql = render_schema(&s);
        let parsed = parse_schema(&sql).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn round_trip_without_backquotes() {
        let s = sample_schema();
        let opts = RenderOptions {
            backquote_identifiers: false,
            engine_clause: false,
            ..Default::default()
        };
        let sql = render_schema_with(&s, &opts);
        let parsed = parse_schema(&sql).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn header_and_trailers_do_not_affect_parse() {
        let s = sample_schema();
        let opts = RenderOptions {
            header_comment: Some("schema v3\nupdated by alice".into()),
            trailer_statements: vec![
                "INSERT INTO users VALUES (1, 'a@b.c', NULL);".into(),
                "CREATE INDEX idx_email ON users (email);".into(),
            ],
            ..Default::default()
        };
        let sql = render_schema_with(&s, &opts);
        let parsed = parse_schema(&sql).unwrap();
        assert_eq!(parsed, s);
        assert!(sql.starts_with("-- schema v3"));
        assert!(sql.contains("INSERT INTO users"));
    }

    #[test]
    fn empty_schema_renders_to_comment_only() {
        let s = Schema::new();
        let sql = render_schema(&s);
        assert!(parse_schema(&sql).unwrap().is_empty());
    }

    #[test]
    fn foreign_keys_roundtrip() {
        use crate::schema::ForeignKey;
        let mut s = Schema::new();
        let mut parent = Table::new("parent");
        parent.push_attribute(Attribute::new("id", DataType::int()));
        parent.set_primary_key(vec!["id".into()]);
        s.upsert_table(parent);
        let mut child = Table::new("child");
        child.push_attribute(Attribute::new("id", DataType::int()));
        child.push_attribute(Attribute::new("pid", DataType::int()));
        child.push_attribute(Attribute::new("qid", DataType::int()));
        child.set_primary_key(vec!["id".into()]);
        child.push_foreign_key(ForeignKey {
            columns: vec!["pid".into()],
            foreign_table: "parent".into(),
            foreign_columns: vec!["id".into()],
        });
        child.push_foreign_key(ForeignKey {
            columns: vec!["qid".into()],
            foreign_table: "parent".into(),
            foreign_columns: vec![],
        });
        s.upsert_table(child);
        let sql = render_schema(&s);
        let parsed = parse_schema(&sql).unwrap();
        assert_eq!(parsed, s);
        // Also without backquotes/engine clause.
        let opts = RenderOptions {
            backquote_identifiers: false,
            engine_clause: false,
            ..Default::default()
        };
        let parsed = parse_schema(&render_schema_with(&s, &opts)).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn fk_only_table_no_pk() {
        use crate::schema::ForeignKey;
        let mut s = Schema::new();
        let mut t = Table::new("link");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_foreign_key(ForeignKey {
            columns: vec!["a".into()],
            foreign_table: "other".into(),
            foreign_columns: vec!["id".into()],
        });
        s.upsert_table(t);
        let parsed = parse_schema(&render_schema(&s)).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn backquote_escaping() {
        let mut s = Schema::new();
        let mut t = Table::new("odd`name");
        t.push_attribute(Attribute::new("a", DataType::int()));
        s.upsert_table(t);
        let sql = render_schema(&s);
        let parsed = parse_schema(&sql).unwrap();
        assert!(parsed.table("odd`name").is_some());
    }
}
