//! The logical schema model: the unit the study's diff engine compares.
//!
//! A [`Schema`] is the set of tables of one version of a DDL file; a
//! [`Table`] is its ordered attributes plus its primary key. Everything the
//! study calls a *logical-level* construct lives here; indexes, storage
//! options, comments and data do not.

use crate::arena::{ArenaStatement, ScriptArena};
use crate::ast::Script;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One attribute (column) of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (case preserved, compared case-sensitively: MySQL
    /// column names are case-insensitive but dumps are internally
    /// consistent, and renames are out of scope for the study's measures).
    pub name: String,
    /// Logical data type.
    pub data_type: DataType,
    /// Whether the attribute is declared `NOT NULL`.
    pub not_null: bool,
}

impl Attribute {
    /// Create an attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            not_null: false,
        }
    }
}

/// A foreign-key reference from this table to another.
///
/// The study's *activity* measures do not count FK changes (they are not
/// among the six §III-B categories), but the paper names the treatment of
/// foreign keys in FOSS projects as an open research path — this model and
/// the analysis in `schevo-core::fk` implement that extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing columns of this table, in order.
    pub columns: Vec<String>,
    /// Referenced table name.
    pub foreign_table: String,
    /// Referenced columns (may be empty when elided in the DDL).
    pub foreign_columns: Vec<String>,
}

/// One table: ordered attributes plus primary key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    attributes: Vec<Attribute>,
    /// Primary-key attribute names, in key order.
    primary_key: Vec<String>,
    /// Foreign keys in declaration order.
    foreign_keys: Vec<ForeignKey>,
    index: HashMap<String, usize>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            attributes: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Append an attribute. Re-adding an existing name replaces the earlier
    /// definition in place (mirrors how MySQL would reject it, but mining
    /// must be tolerant of sloppy dumps).
    pub fn push_attribute(&mut self, attr: Attribute) {
        if let Some(&i) = self.index.get(&attr.name) {
            self.attributes[i] = attr;
        } else {
            self.index.insert(attr.name.clone(), self.attributes.len());
            self.attributes.push(attr);
        }
    }

    /// Remove an attribute by name; returns it if present. Also drops the
    /// attribute from the primary key and removes any foreign key that used
    /// it as a referencing column.
    pub fn remove_attribute(&mut self, name: &str) -> Option<Attribute> {
        let i = self.index.remove(name)?;
        let attr = self.attributes.remove(i);
        for v in self.index.values_mut() {
            if *v > i {
                *v -= 1;
            }
        }
        self.primary_key.retain(|k| k != name);
        self.foreign_keys.retain(|fk| !fk.columns.iter().any(|c| c == name));
        Some(attr)
    }

    /// Replace the attribute named `old_name` in place (keeping its
    /// position) with `attr`, renaming references in the primary key and in
    /// foreign keys. Returns false when `old_name` does not exist or the
    /// new name collides with a different attribute.
    pub fn replace_attribute(&mut self, old_name: &str, attr: Attribute) -> bool {
        let Some(&i) = self.index.get(old_name) else {
            return false;
        };
        if attr.name != old_name && self.index.contains_key(&attr.name) {
            return false;
        }
        let new_name = attr.name.clone();
        self.index.remove(old_name);
        self.index.insert(new_name.clone(), i);
        self.attributes[i] = attr;
        if new_name != old_name {
            for k in &mut self.primary_key {
                if k == old_name {
                    *k = new_name.clone();
                }
            }
            for fk in &mut self.foreign_keys {
                for c in &mut fk.columns {
                    if c == old_name {
                        *c = new_name.clone();
                    }
                }
            }
        }
        true
    }

    /// Add a foreign key; silently dropped if any referencing column is not
    /// an attribute of this table (mirrors the tolerant-extraction stance).
    pub fn push_foreign_key(&mut self, fk: ForeignKey) {
        if fk.columns.iter().all(|c| self.index.contains_key(c)) && !fk.columns.is_empty() {
            self.foreign_keys.push(fk);
        }
    }

    /// Foreign keys in declaration order.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Remove the foreign key at `idx`, if any.
    pub fn remove_foreign_key(&mut self, idx: usize) -> Option<ForeignKey> {
        if idx < self.foreign_keys.len() {
            Some(self.foreign_keys.remove(idx))
        } else {
            None
        }
    }

    /// Set the primary key (names not present as attributes are dropped).
    pub fn set_primary_key(&mut self, key: Vec<String>) {
        self.primary_key = key
            .into_iter()
            .filter(|k| self.index.contains_key(k))
            .collect();
    }

    /// The primary key attribute names in order.
    pub fn primary_key(&self) -> &[String] {
        &self.primary_key
    }

    /// Attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Look up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.index.get(name).map(|&i| &self.attributes[i])
    }

    /// Mutable lookup by name.
    pub fn attribute_mut(&mut self, name: &str) -> Option<&mut Attribute> {
        let i = *self.index.get(name)?;
        Some(&mut self.attributes[i])
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Whether `name` participates in the primary key.
    pub fn in_primary_key(&self, name: &str) -> bool {
        self.primary_key.iter().any(|k| k == name)
    }
}

fn column_to_attribute(col: &crate::ast::ColumnDef) -> Attribute {
    let mut attr = Attribute::new(col.name.clone(), col.data_type.clone());
    attr.not_null = col.not_null;
    attr
}

/// A logical schema: the tables of one DDL file version, in file order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Lower a parsed [`Script`] into its logical schema, applying
    /// statements in file order.
    ///
    /// `TEMPORARY` tables are excluded. When the same table is created twice
    /// (e.g. a dump with per-vendor sections), the *last* definition wins —
    /// it is the one the application ends up with. `DROP TABLE` removes
    /// tables; `ALTER TABLE` statements (files sometimes carry trailing
    /// migrations) are applied in place; alterations naming unknown tables
    /// or columns are ignored, matching the tolerant-extraction stance.
    pub fn from_script(script: &Script) -> Schema {
        use crate::ast::{AlterOp, Statement};
        let mut schema = Schema::new();
        for statement in &script.statements {
            match statement {
                Statement::CreateTable(ct) => {
                    if ct.temporary {
                        continue;
                    }
                    let mut table = Table::new(ct.name.clone());
                    for col in &ct.columns {
                        table.push_attribute(column_to_attribute(col));
                    }
                    table.set_primary_key(ct.primary_key_columns());
                    for constraint in &ct.constraints {
                        if let crate::ast::TableConstraint::ForeignKey {
                            columns,
                            foreign_table,
                            foreign_columns,
                            ..
                        } = constraint
                        {
                            table.push_foreign_key(ForeignKey {
                                columns: columns.clone(),
                                foreign_table: foreign_table.clone(),
                                foreign_columns: foreign_columns.clone(),
                            });
                        }
                    }
                    schema.upsert_table(table);
                }
                Statement::DropTable { names } => {
                    for n in names {
                        schema.remove_table(n);
                    }
                }
                Statement::AlterTable(at) => {
                    for op in &at.ops {
                        if let AlterOp::RenameTable(new_name) = op {
                            if let Some(mut t) = schema.remove_table(&at.name) {
                                t.name = new_name.clone();
                                schema.upsert_table(t);
                            }
                            continue;
                        }
                        let Some(table) = schema.table_mut(&at.name) else {
                            continue;
                        };
                        match op {
                            AlterOp::AddColumn(def) => {
                                table.push_attribute(column_to_attribute(def));
                                if def.inline_primary_key {
                                    table.set_primary_key(vec![def.name.clone()]);
                                }
                            }
                            AlterOp::DropColumn(name) => {
                                table.remove_attribute(name);
                            }
                            AlterOp::ModifyColumn(def) => {
                                table.replace_attribute(&def.name.clone(), column_to_attribute(def));
                            }
                            AlterOp::ChangeColumn { old_name, def } => {
                                table.replace_attribute(old_name, column_to_attribute(def));
                            }
                            AlterOp::AddPrimaryKey(cols) => {
                                table.set_primary_key(cols.clone());
                            }
                            AlterOp::DropPrimaryKey => {
                                table.set_primary_key(Vec::new());
                            }
                            // Renames are applied before the table lookup
                            // above; nothing left to do here.
                            AlterOp::RenameTable(_) => {}
                        }
                    }
                }
                Statement::Other { .. } => {}
            }
        }
        schema
    }

    /// Lower a parsed [`ScriptArena`] into its logical schema, applying
    /// statements in file order.
    ///
    /// The arena-native twin of [`Schema::from_script`], with identical
    /// semantics; the mining pipeline uses this path so no intermediate
    /// boxed AST is materialized.
    pub fn from_arena(arena: &ScriptArena) -> Schema {
        use crate::ast::AlterOp;
        let mut schema = Schema::new();
        for statement in arena.statements() {
            match statement {
                ArenaStatement::CreateTable(ct) => {
                    if ct.temporary {
                        continue;
                    }
                    let columns = arena.columns(ct.columns);
                    let mut table = Table::new(ct.name.clone());
                    table.attributes.reserve(columns.len());
                    for col in columns {
                        table.push_attribute(column_to_attribute(col));
                    }
                    table.set_primary_key(arena.primary_key_columns(ct));
                    for constraint in arena.constraints(ct.constraints) {
                        if let crate::ast::TableConstraint::ForeignKey {
                            columns,
                            foreign_table,
                            foreign_columns,
                            ..
                        } = constraint
                        {
                            table.push_foreign_key(ForeignKey {
                                columns: columns.clone(),
                                foreign_table: foreign_table.clone(),
                                foreign_columns: foreign_columns.clone(),
                            });
                        }
                    }
                    schema.upsert_table(table);
                }
                ArenaStatement::DropTable { names } => {
                    for n in arena.strings(*names) {
                        schema.remove_table(n);
                    }
                }
                ArenaStatement::AlterTable { name, ops } => {
                    for op in arena.ops(*ops) {
                        if let AlterOp::RenameTable(new_name) = op {
                            if let Some(mut t) = schema.remove_table(name) {
                                t.name = new_name.clone();
                                schema.upsert_table(t);
                            }
                            continue;
                        }
                        let Some(table) = schema.table_mut(name) else {
                            continue;
                        };
                        match op {
                            AlterOp::AddColumn(def) => {
                                table.push_attribute(column_to_attribute(def));
                                if def.inline_primary_key {
                                    table.set_primary_key(vec![def.name.clone()]);
                                }
                            }
                            AlterOp::DropColumn(col) => {
                                table.remove_attribute(col);
                            }
                            AlterOp::ModifyColumn(def) => {
                                table.replace_attribute(&def.name.clone(), column_to_attribute(def));
                            }
                            AlterOp::ChangeColumn { old_name, def } => {
                                table.replace_attribute(old_name, column_to_attribute(def));
                            }
                            AlterOp::AddPrimaryKey(cols) => {
                                table.set_primary_key(cols.clone());
                            }
                            AlterOp::DropPrimaryKey => {
                                table.set_primary_key(Vec::new());
                            }
                            // Renames are applied before the table lookup
                            // above; nothing left to do here.
                            AlterOp::RenameTable(_) => {}
                        }
                    }
                }
                ArenaStatement::Other { .. } => {}
            }
        }
        schema
    }

    /// Insert a table, replacing any previous definition of the same name
    /// (the replacement keeps the original file position).
    pub fn upsert_table(&mut self, table: Table) {
        if let Some(&i) = self.index.get(&table.name) {
            self.tables[i] = table;
        } else {
            self.index.insert(table.name.clone(), self.tables.len());
            self.tables.push(table);
        }
    }

    /// Remove a table by name, returning it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        let i = self.index.remove(name)?;
        let t = self.tables.remove(i);
        for v in self.index.values_mut() {
            if *v > i {
                *v -= 1;
            }
        }
        Some(t)
    }

    /// Tables in file order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.index.get(name).map(|&i| &self.tables[i])
    }

    /// Mutable lookup by name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        let i = *self.index.get(name)?;
        Some(&mut self.tables[i])
    }

    /// Number of tables — the paper's *schema size* in tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of attributes — the paper's *schema size* in attributes.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(|t| t.arity()).sum()
    }

    /// Whether the schema has no tables at all.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate table names in file order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|t| t.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    #[test]
    fn from_script_counts_sizes() {
        let s = parse_schema(
            "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z VARCHAR(10), PRIMARY KEY (z));",
        )
        .unwrap();
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.attribute_count(), 3);
        assert_eq!(s.table("b").unwrap().primary_key(), &["z".to_string()]);
    }

    #[test]
    fn temporary_tables_excluded() {
        let s = parse_schema("CREATE TEMPORARY TABLE tmp (a INT); CREATE TABLE t (a INT);")
            .unwrap();
        assert_eq!(s.table_count(), 1);
        assert!(s.table("tmp").is_none());
    }

    #[test]
    fn duplicate_create_last_wins() {
        let s = parse_schema("CREATE TABLE t (a INT); CREATE TABLE t (a INT, b INT);").unwrap();
        assert_eq!(s.table_count(), 1);
        assert_eq!(s.table("t").unwrap().arity(), 2);
    }

    #[test]
    fn remove_table_fixes_index() {
        let mut s = parse_schema(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT); CREATE TABLE c (z INT);",
        )
        .unwrap();
        s.remove_table("b");
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.table("c").unwrap().name, "c");
        assert_eq!(s.table("a").unwrap().name, "a");
        assert!(s.table("b").is_none());
    }

    #[test]
    fn remove_attribute_updates_pk_and_index() {
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_attribute(Attribute::new("b", DataType::int()));
        t.push_attribute(Attribute::new("c", DataType::int()));
        t.set_primary_key(vec!["a".into(), "b".into()]);
        t.remove_attribute("b");
        assert_eq!(t.arity(), 2);
        assert_eq!(t.primary_key(), &["a".to_string()]);
        assert!(t.attribute("c").is_some());
        assert!(t.attribute("b").is_none());
    }

    #[test]
    fn set_primary_key_drops_unknown_columns() {
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.set_primary_key(vec!["a".into(), "ghost".into()]);
        assert_eq!(t.primary_key(), &["a".to_string()]);
    }

    #[test]
    fn push_attribute_replaces_same_name() {
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_attribute(Attribute::new("a", DataType::varchar(10)));
        assert_eq!(t.arity(), 1);
        assert_eq!(
            t.attribute("a").unwrap().data_type,
            DataType::varchar(10)
        );
    }

    #[test]
    fn alter_statements_applied_in_order() {
        let s = parse_schema(
            "CREATE TABLE t (id INT, old_col TEXT, kind INT, PRIMARY KEY (id));\
             ALTER TABLE t ADD COLUMN extra VARCHAR(40), DROP COLUMN old_col;\
             ALTER TABLE t CHANGE kind category BIGINT;\
             ALTER TABLE t DROP PRIMARY KEY;",
        )
        .unwrap();
        let t = s.table("t").unwrap();
        assert_eq!(t.arity(), 3);
        assert!(t.attribute("extra").is_some());
        assert!(t.attribute("old_col").is_none());
        assert!(t.attribute("kind").is_none());
        let cat = t.attribute("category").unwrap();
        assert_eq!(cat.data_type.family, crate::types::TypeFamily::BigInt);
        assert!(t.primary_key().is_empty());
        // `category` kept `kind`'s position (index 1, after old_col removal
        // shifted things: id, category, extra).
        assert_eq!(t.attributes()[1].name, "category");
    }

    #[test]
    fn drop_table_removes_and_alter_unknown_is_ignored() {
        let s = parse_schema(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT);\
             DROP TABLE a;\
             ALTER TABLE ghost ADD COLUMN z INT;\
             ALTER TABLE b ADD COLUMN z INT;",
        )
        .unwrap();
        assert!(s.table("a").is_none());
        assert_eq!(s.table("b").unwrap().arity(), 2);
    }

    #[test]
    fn alter_rename_table() {
        let s = parse_schema(
            "CREATE TABLE old_name (x INT); ALTER TABLE old_name RENAME TO new_name;",
        )
        .unwrap();
        assert!(s.table("old_name").is_none());
        assert_eq!(s.table("new_name").unwrap().arity(), 1);
    }

    #[test]
    fn drop_then_recreate_pattern() {
        // The ubiquitous dump pattern.
        let s = parse_schema(
            "DROP TABLE IF EXISTS t;\
             CREATE TABLE t (a INT, b INT);",
        )
        .unwrap();
        assert_eq!(s.table("t").unwrap().arity(), 2);
    }

    #[test]
    fn replace_attribute_handles_collisions() {
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_attribute(Attribute::new("b", DataType::int()));
        // Renaming a → b collides.
        assert!(!t.replace_attribute("a", Attribute::new("b", DataType::text())));
        // Unknown old name.
        assert!(!t.replace_attribute("zzz", Attribute::new("w", DataType::text())));
        // In-place type change works.
        assert!(t.replace_attribute("a", Attribute::new("a", DataType::text())));
        assert!(t
            .attribute("a")
            .unwrap()
            .data_type
            .logical_eq(&DataType::text()));
    }

    #[test]
    fn replace_attribute_renames_pk_and_fk() {
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_attribute(Attribute::new("b", DataType::int()));
        t.set_primary_key(vec!["a".into()]);
        t.push_foreign_key(ForeignKey {
            columns: vec!["a".into()],
            foreign_table: "p".into(),
            foreign_columns: vec!["id".into()],
        });
        assert!(t.replace_attribute("a", Attribute::new("a2", DataType::int())));
        assert_eq!(t.primary_key(), &["a2".to_string()]);
        assert_eq!(t.foreign_keys()[0].columns, vec!["a2".to_string()]);
    }

    #[test]
    fn foreign_keys_extracted_from_script() {
        let s = parse_schema(
            "CREATE TABLE parent (id INT, PRIMARY KEY (id));\
             CREATE TABLE child (id INT, parent_id INT, \
               CONSTRAINT fk_p FOREIGN KEY (parent_id) REFERENCES parent (id));",
        )
        .unwrap();
        let child = s.table("child").unwrap();
        assert_eq!(child.foreign_keys().len(), 1);
        let fk = &child.foreign_keys()[0];
        assert_eq!(fk.columns, vec!["parent_id".to_string()]);
        assert_eq!(fk.foreign_table, "parent");
        assert_eq!(fk.foreign_columns, vec!["id".to_string()]);
    }

    #[test]
    fn fk_with_unknown_local_column_is_dropped() {
        let s = parse_schema(
            "CREATE TABLE child (id INT, FOREIGN KEY (ghost) REFERENCES parent (id));",
        )
        .unwrap();
        assert!(s.table("child").unwrap().foreign_keys().is_empty());
    }

    #[test]
    fn removing_fk_column_prunes_fk() {
        let mut t = Table::new("child");
        t.push_attribute(Attribute::new("id", DataType::int()));
        t.push_attribute(Attribute::new("parent_id", DataType::int()));
        t.push_foreign_key(ForeignKey {
            columns: vec!["parent_id".into()],
            foreign_table: "parent".into(),
            foreign_columns: vec!["id".into()],
        });
        assert_eq!(t.foreign_keys().len(), 1);
        t.remove_attribute("parent_id");
        assert!(t.foreign_keys().is_empty());
    }

    #[test]
    fn remove_foreign_key_by_index() {
        let mut t = Table::new("child");
        t.push_attribute(Attribute::new("a", DataType::int()));
        t.push_foreign_key(ForeignKey {
            columns: vec!["a".into()],
            foreign_table: "p".into(),
            foreign_columns: vec![],
        });
        assert!(t.remove_foreign_key(5).is_none());
        assert!(t.remove_foreign_key(0).is_some());
        assert!(t.foreign_keys().is_empty());
    }

    #[test]
    fn empty_script_empty_schema() {
        let s = parse_schema("INSERT INTO t VALUES (1);").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.attribute_count(), 0);
    }
}
