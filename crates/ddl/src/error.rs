//! Error and source-span types shared by the lexer and parser.

use std::fmt;

/// A half-open byte range `[start, end)` into the original SQL text.
///
/// Spans are carried on every token so that parse errors can point at the
/// offending location, and so that tests can assert exact token extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned region.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned region.
    pub end: usize,
}

impl Span {
    /// Create a new span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The number of bytes covered by the span.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Slice the spanned text out of the source it was produced from.
    ///
    /// Returns `None` if the span does not fall on character boundaries of
    /// `source` (which indicates the span belongs to a different string).
    pub fn slice<'s>(&self, source: &'s str) -> Option<&'s str> {
        source.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The lexer met a character sequence it cannot tokenize
    /// (e.g. an unterminated string or block comment).
    Lex(String),
    /// The parser expected one construct and found another.
    Unexpected {
        /// Human description of what was expected.
        expected: String,
        /// Human description of what was actually found.
        found: String,
    },
    /// The parser ran off the end of the token stream.
    UnexpectedEof {
        /// Human description of what was expected.
        expected: String,
    },
}

/// An error produced while lexing or parsing a DDL script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Construct a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::Lex(message.into()),
            span,
        }
    }

    /// Construct an "expected X, found Y" error.
    pub fn unexpected(expected: impl Into<String>, found: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::Unexpected {
                expected: expected.into(),
                found: found.into(),
            },
            span,
        }
    }

    /// Construct an unexpected-end-of-input error.
    pub fn eof(expected: impl Into<String>, span: Span) -> Self {
        ParseError {
            kind: ParseErrorKind::UnexpectedEof {
                expected: expected.into(),
            },
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Lex(msg) => write!(f, "lex error at {}: {}", self.span, msg),
            ParseErrorKind::Unexpected { expected, found } => write!(
                f,
                "parse error at {}: expected {}, found {}",
                self.span, expected, found
            ),
            ParseErrorKind::UnexpectedEof { expected } => write!(
                f,
                "parse error at {}: expected {}, found end of input",
                self.span, expected
            ),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_slice_extracts_text() {
        let s = "CREATE TABLE t";
        let sp = Span::new(7, 12);
        assert_eq!(sp.slice(s), Some("TABLE"));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 2).len(), 0);
        assert!(Span::new(2, 2).is_empty());
        assert_eq!(Span::new(2, 9).len(), 7);
        assert!(!Span::new(2, 9).is_empty());
    }

    #[test]
    fn error_display_mentions_location() {
        let e = ParseError::unexpected("')'", "','", Span::new(10, 11));
        let text = e.to_string();
        assert!(text.contains("10..11"));
        assert!(text.contains("expected ')'"));
    }

    #[test]
    fn eof_error_display() {
        let e = ParseError::eof("a data type", Span::new(40, 40));
        assert!(e.to_string().contains("end of input"));
    }
}
