//! Abstract syntax for the subset of SQL the miner cares about.
//!
//! Only `CREATE TABLE` is represented structurally. Every other statement is
//! recorded as [`Statement::Other`] with the keyword that introduced it, so
//! callers can still count `INSERT`s, `CREATE INDEX`es and directives — those
//! are the study's *non-active* change classes.

use crate::types::DataType;

/// A whole parsed script: the ordered list of statements of one version of a
/// DDL file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Statements in file order.
    pub statements: Vec<Statement>,
}

impl Script {
    /// Iterate over the `CREATE TABLE` statements only, in file order.
    pub fn create_tables(&self) -> impl Iterator<Item = &CreateTable> {
        self.statements.iter().filter_map(|s| match s {
            Statement::CreateTable(ct) => Some(ct),
            _ => None,
        })
    }

    /// Count the unmodelled statements (the non-logical noise: `INSERT`,
    /// `SET`, index creation, directives, ...).
    pub fn other_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s, Statement::Other { .. }))
            .count()
    }

    /// Iterate over the `ALTER TABLE` statements, in file order.
    pub fn alter_tables(&self) -> impl Iterator<Item = &AlterTable> {
        self.statements.iter().filter_map(|s| match s {
            Statement::AlterTable(at) => Some(at),
            _ => None,
        })
    }
}

/// One top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A fully parsed `CREATE TABLE`.
    CreateTable(CreateTable),
    /// A parsed `ALTER TABLE` (schema files occasionally carry trailing
    /// ALTERs instead of rewriting the CREATE statements).
    AlterTable(AlterTable),
    /// A parsed `DROP TABLE`.
    DropTable {
        /// Names of the dropped tables.
        names: Vec<String>,
    },
    /// Any other statement, skipped by the tolerant parser.
    Other {
        /// The leading keyword(s) identifying the statement, uppercased
        /// (e.g. `"INSERT"`, `"SET"`, `"CREATE INDEX"`, `"DROP"`).
        keyword: String,
    },
}

/// A parsed `ALTER TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AlterTable {
    /// Target table name (unqualified).
    pub name: String,
    /// Alterations in order. Operations the parser does not model are
    /// dropped (tolerance over completeness, as everywhere in this crate).
    pub ops: Vec<AlterOp>,
}

/// One alteration within `ALTER TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterOp {
    /// `ADD [COLUMN] <def>`.
    AddColumn(ColumnDef),
    /// `DROP [COLUMN] name`.
    DropColumn(String),
    /// `MODIFY [COLUMN] <def>` — redefine the column in place.
    ModifyColumn(ColumnDef),
    /// `CHANGE [COLUMN] old <def>` — rename + redefine.
    ChangeColumn {
        /// The column's previous name.
        old_name: String,
        /// The new definition (carrying the new name).
        def: ColumnDef,
    },
    /// `ADD PRIMARY KEY (cols)`.
    AddPrimaryKey(Vec<String>),
    /// `DROP PRIMARY KEY`.
    DropPrimaryKey,
    /// `RENAME [TO] new_name`.
    RenameTable(String),
}

/// A parsed `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name, unqualified (a `db.` qualifier is stripped but recorded).
    pub name: String,
    /// Optional schema/database qualifier that preceded the name.
    pub qualifier: Option<String>,
    /// Whether `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
    /// Whether `TEMPORARY` was present. Temporary tables are excluded from
    /// the logical schema.
    pub temporary: bool,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints in declaration order.
    pub constraints: Vec<TableConstraint>,
    /// Trailing table options (`ENGINE=InnoDB`, `DEFAULT CHARSET=utf8`, ...),
    /// kept as raw key/value-ish strings for fidelity.
    pub options: Vec<String>,
}

impl CreateTable {
    /// The columns declared `PRIMARY KEY` either inline or via a table-level
    /// constraint, in key order. Inline declarations win if both exist
    /// (MySQL rejects that case; we are tolerant and merge).
    pub fn primary_key_columns(&self) -> Vec<String> {
        for c in &self.constraints {
            if let TableConstraint::PrimaryKey { columns, .. } = c {
                return columns.clone();
            }
        }
        self.columns
            .iter()
            .filter(|c| c.inline_primary_key)
            .map(|c| c.name.clone())
            .collect()
    }
}

/// One column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Parsed, normalized data type.
    pub data_type: DataType,
    /// `NOT NULL` present.
    pub not_null: bool,
    /// Inline `PRIMARY KEY` on the column.
    pub inline_primary_key: bool,
    /// `AUTO_INCREMENT` (or dialect equivalents such as `AUTOINCREMENT`).
    pub auto_increment: bool,
    /// `UNIQUE` on the column.
    pub unique: bool,
    /// `DEFAULT <value>` rendered as text, if present.
    pub default: Option<String>,
    /// `COMMENT '<text>'`, if present.
    pub comment: Option<String>,
}

impl ColumnDef {
    /// A minimal column of the given name and type; used by builders/tests.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            not_null: false,
            inline_primary_key: false,
            auto_increment: false,
            unique: false,
            default: None,
            comment: None,
        }
    }
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (a, b)`.
    PrimaryKey {
        /// Optional constraint name.
        name: Option<String>,
        /// Key columns in order.
        columns: Vec<String>,
    },
    /// `UNIQUE [KEY|INDEX] [name] (a, b)`.
    Unique {
        /// Optional index name.
        name: Option<String>,
        /// Key columns in order.
        columns: Vec<String>,
    },
    /// `[CONSTRAINT name] FOREIGN KEY (a) REFERENCES t (b)`.
    ForeignKey {
        /// Optional constraint name.
        name: Option<String>,
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        foreign_table: String,
        /// Referenced columns (may be empty when elided).
        foreign_columns: Vec<String>,
    },
    /// `KEY`/`INDEX [name] (a, b)` — a plain secondary index. Changes to
    /// these are physical-level and non-active for the study.
    Index {
        /// Optional index name.
        name: Option<String>,
        /// Indexed columns in order.
        columns: Vec<String>,
    },
    /// `CHECK (...)`, body kept as raw text.
    Check {
        /// Optional constraint name.
        name: Option<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn col(name: &str) -> ColumnDef {
        ColumnDef::new(name, DataType::int())
    }

    #[test]
    fn table_level_pk_wins() {
        let mut a = col("a");
        a.inline_primary_key = true;
        let ct = CreateTable {
            name: "t".into(),
            qualifier: None,
            if_not_exists: false,
            temporary: false,
            columns: vec![a, col("b")],
            constraints: vec![TableConstraint::PrimaryKey {
                name: None,
                columns: vec!["b".into()],
            }],
            options: vec![],
        };
        assert_eq!(ct.primary_key_columns(), vec!["b".to_string()]);
    }

    #[test]
    fn inline_pk_used_when_no_table_constraint() {
        let mut a = col("a");
        a.inline_primary_key = true;
        let ct = CreateTable {
            name: "t".into(),
            qualifier: None,
            if_not_exists: false,
            temporary: false,
            columns: vec![a, col("b")],
            constraints: vec![],
            options: vec![],
        };
        assert_eq!(ct.primary_key_columns(), vec!["a".to_string()]);
    }

    #[test]
    fn script_helpers_filter_statements() {
        let script = Script {
            statements: vec![
                Statement::Other {
                    keyword: "SET".into(),
                },
                Statement::CreateTable(CreateTable {
                    name: "t".into(),
                    qualifier: None,
                    if_not_exists: false,
                    temporary: false,
                    columns: vec![col("a")],
                    constraints: vec![],
                    options: vec![],
                }),
                Statement::Other {
                    keyword: "INSERT".into(),
                },
            ],
        };
        assert_eq!(script.create_tables().count(), 1);
        assert_eq!(script.other_count(), 2);
    }
}
