//! The original character-oriented lexer, kept verbatim as the oracle for
//! the byte-level fast path in the parent module.
//!
//! This implementation is intentionally simple and obviously correct: one
//! `match` per byte, one `bump_char` per character. The fast path in
//! [`crate::lexer`] must produce bit-identical token streams and error
//! spans; `crates/ddl/tests/proptest_lexer_fastpath.rs` holds the two
//! implementations against each other over arbitrary inputs and the
//! faultgen corruption classes. Do not optimize this module — its value is
//! being slow and trustworthy.

use crate::error::{ParseError, Span};
use crate::token::{Token, TokenKind};

/// Reference implementation of [`crate::lexer::tokenize`].
///
/// # Errors
///
/// Unterminated strings, block comments and quoted identifiers produce a
/// [`ParseError`] pointing at the opening delimiter.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let (tokens, err) = Lexer::new(input).run();
    match err {
        Some(e) => Err(e),
        None => Ok(tokens),
    }
}

/// Reference implementation of [`crate::lexer::tokenize_recovering`].
pub fn tokenize_recovering(input: &str) -> (Vec<Token>, Option<ParseError>) {
    Lexer::new(input).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(input: &'s str) -> Self {
        Lexer {
            src: input.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> (Vec<Token>, Option<ParseError>) {
        while let Some(b) = self.peek() {
            let start = self.pos;
            let step = match b {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                    self.pos += 1;
                    Ok(())
                }
                b'-' if self.peek2() == Some(b'-') => {
                    self.line_comment();
                    Ok(())
                }
                b'#' => {
                    self.line_comment();
                    Ok(())
                }
                b'/' if self.peek2() == Some(b'*') => self.block_comment(start),
                b'\'' => self.string_lit(b'\'', start),
                b'"' => self.string_lit(b'"', start),
                b'`' => self.quoted_ident(b'`', b'`', start),
                b'[' => self.quoted_ident(b'[', b']', start),
                b'(' => {
                    self.pos += 1;
                    self.push(TokenKind::LParen, start);
                    Ok(())
                }
                b')' => {
                    self.pos += 1;
                    self.push(TokenKind::RParen, start);
                    Ok(())
                }
                b',' => {
                    self.pos += 1;
                    self.push(TokenKind::Comma, start);
                    Ok(())
                }
                b';' => {
                    self.pos += 1;
                    self.push(TokenKind::Semicolon, start);
                    Ok(())
                }
                b'=' => {
                    self.pos += 1;
                    self.push(TokenKind::Eq, start);
                    Ok(())
                }
                b'.' if !self.next_is_digit() => {
                    self.pos += 1;
                    self.push(TokenKind::Dot, start);
                    Ok(())
                }
                b'0'..=b'9' => {
                    self.number(start);
                    Ok(())
                }
                b'.' => {
                    self.number(start);
                    Ok(())
                }
                _ if is_ident_start(b) => {
                    self.bare_ident(start);
                    Ok(())
                }
                _ => {
                    // Any other punctuation: emit as Punct so the tolerant
                    // parser can skip it inside statements it ignores.
                    let c = self.bump_char(start);
                    self.push(TokenKind::Punct(c), start);
                    Ok(())
                }
            };
            if let Err(e) = step {
                // Lex errors only fire at end of input, so the accumulated
                // tokens form the complete well-formed prefix.
                return (self.tokens, Some(e));
            }
        }
        (self.tokens, None)
    }

    /// Consume one (possibly multi-byte) character and return it.
    fn bump_char(&mut self, start: usize) -> char {
        // Find the full UTF-8 character beginning at `start`.
        let rest = &self.src[start..];
        let s = std::str::from_utf8(rest).unwrap_or("\u{fffd}");
        let c = s.chars().next().unwrap_or('\u{fffd}');
        self.pos = start + c.len_utf8();
        c
    }

    fn next_is_digit(&self) -> bool {
        matches!(self.peek2(), Some(b'0'..=b'9'))
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn block_comment(&mut self, start: usize) -> Result<(), ParseError> {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.pos += 2;
                    depth -= 1;
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    // MySQL does not nest comments but some dumps do; be lenient.
                    self.pos += 2;
                    depth += 1;
                }
                Some(_) => {
                    self.pos += 1;
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated block comment",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        Ok(())
    }

    fn string_lit(&mut self, quote: u8, start: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b'\\') => {
                    // MySQL-style backslash escape: keep the escaped char.
                    self.pos += 1;
                    match self.peek() {
                        Some(_) => {
                            let c = self.bump_char(self.pos);
                            text.push(unescape(c));
                        }
                        None => {
                            return Err(ParseError::lex(
                                "unterminated string literal",
                                Span::new(start, self.pos),
                            ));
                        }
                    }
                }
                Some(b) if b == quote => {
                    if self.peek2() == Some(quote) {
                        // Doubled quote: literal quote character.
                        text.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    let c = self.bump_char(self.pos);
                    text.push(c);
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        // A double-quoted token is ambiguous: MySQL treats `"x"` as a string,
        // ANSI SQL as an identifier. We emit double-quoted text as a quoted
        // identifier when it looks like one, because DDL dumps overwhelmingly
        // use `"name"` in the identifier position. Single quotes are always
        // string literals.
        if quote == b'"' && looks_like_identifier(&text) {
            self.push(TokenKind::QuotedIdent(text), start);
        } else {
            self.push(TokenKind::StringLit(text), start);
        }
        Ok(())
    }

    fn quoted_ident(&mut self, open: u8, close: u8, start: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening delimiter
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b) if b == close => {
                    if close == open && self.peek2() == Some(close) {
                        // Doubled backquote inside a backquoted name.
                        text.push(close as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    let c = self.bump_char(self.pos);
                    text.push(c);
                }
                None => {
                    return Err(ParseError::lex(
                        "unterminated quoted identifier",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        self.push(TokenKind::QuotedIdent(text), start);
        Ok(())
    }

    fn number(&mut self, start: usize) {
        let mut seen_dot = false;
        let mut seen_exp = false;
        // Hex literal.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokenKind::Number(text), start);
            return;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by digit or sign+digit.
                    let next = self.peek2();
                    let after_sign = self.src.get(self.pos + 2).copied();
                    let is_exp = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(after_sign, Some(b'0'..=b'9')));
                    if is_exp {
                        seen_exp = true;
                        self.pos += 1;
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Number(text), start);
    }

    fn bare_ident(&mut self, start: usize) {
        while let Some(b) = self.peek() {
            if is_ident_continue(b) {
                self.pos += 1;
            } else if b >= 0x80 {
                // Non-ASCII identifier characters (MySQL permits them).
                self.bump_char(self.pos);
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text), start);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b'$' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

fn looks_like_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().map(is_ident_start).unwrap_or(false)
        && s.bytes().all(|b| is_ident_continue(b) || b >= 0x80)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}
