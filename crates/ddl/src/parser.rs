//! Tolerant recursive-descent parser for DDL scripts.
//!
//! The parser fully understands `CREATE TABLE` in the MySQL dialect (with
//! enough ANSI/Postgres/SQL-Server lenience to survive mixed dumps) and
//! skips everything else statement-by-statement. Skipping is
//! parenthesis-aware, so an `INSERT` carrying `');' ` inside a string or a
//! function body does not derail the scan — string literals were already
//! resolved by the lexer.

use crate::arena::{ArenaCreateTable, ArenaStatement, PoolRange, ScriptArena};
use crate::ast::{ColumnDef, Script, TableConstraint};
use crate::error::{ParseError, Span};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use crate::types::{DataType, TypeFamily};

/// Parse a whole script into its AST.
///
/// # Errors
///
/// Propagates lexer errors and structural errors inside `CREATE TABLE`
/// statements. Other malformed statements are skipped silently.
pub fn parse_script(sql: &str) -> Result<Script, ParseError> {
    Ok(parse_script_arena(sql)?.to_script())
}

/// Parse a whole script into arena form.
///
/// This is the allocation-lean path the mining pipeline uses: statements
/// share flat pools instead of owning per-statement vectors, and the
/// result lowers straight to a schema via
/// [`crate::schema::Schema::from_arena`].
///
/// # Errors
///
/// Same contract as [`parse_script`].
pub fn parse_script_arena(sql: &str) -> Result<ScriptArena, ParseError> {
    let tokens = tokenize(sql)?;
    Parser::new(tokens).script_arena()
}

/// The parser state machine. Most callers should use [`parse_script`] or
/// [`crate::parse_schema`]; the type is public for fine-grained testing.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    arena: ScriptArena,
}

impl Parser {
    /// Create a parser over a pre-lexed token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            arena: ScriptArena::default(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek().map(|t| t.kind.is_keyword(kw)).unwrap_or(false)
    }

    fn at_keyword_at(&self, off: usize, kw: &str) -> bool {
        self.peek_at(off)
            .map(|t| t.kind.is_keyword(kw))
            .unwrap_or(false)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_expected(&format!("keyword {kw}")))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind == kind).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            Err(self.err_expected(&kind.describe()))
        }
    }

    fn err_expected(&self, what: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::unexpected(what, t.kind.describe(), t.span),
            None => {
                let end = self.tokens.last().map(|t| t.span.end).unwrap_or(0);
                ParseError::eof(what, Span::new(end, end))
            }
        }
    }

    /// Parse identifiers: bare or quoted.
    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => {
                    let s = s.clone();
                    self.pos += 1;
                    Ok(s)
                }
                _ => Err(self.err_expected("an identifier")),
            },
            None => Err(self.err_expected("an identifier")),
        }
    }

    /// Top-level: a sequence of statements separated by semicolons.
    ///
    /// Compatibility wrapper over [`Self::script_arena`] that copies the
    /// arena out into self-contained statements.
    pub fn script(&mut self) -> Result<Script, ParseError> {
        Ok(self.script_arena()?.to_script())
    }

    /// Top-level parse into arena form; the fast path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::script`]: statement-level breakage degrades
    /// to skipped statements, so errors only reflect unrecoverable input.
    pub fn script_arena(&mut self) -> Result<ScriptArena, ParseError> {
        loop {
            // Swallow stray semicolons.
            while self.eat_kind(&TokenKind::Semicolon) {}
            if self.peek().is_none() {
                break;
            }
            if self.at_create_table() {
                match self.create_table() {
                    Ok(ct) => self.arena.push_statement(ArenaStatement::CreateTable(ct)),
                    Err(_) => {
                        // A CREATE TABLE too broken to parse: degrade to a
                        // skipped statement rather than failing the file.
                        self.arena.push_statement(ArenaStatement::Other {
                            keyword: "CREATE TABLE".to_string(),
                        });
                        self.skip_statement();
                    }
                }
            } else if self.at_keyword("ALTER") && self.at_keyword_at(1, "TABLE") {
                let mark = self.arena.mark();
                match self.alter_table() {
                    Ok(name) => {
                        let ops = self.arena.ops_since(mark);
                        self.arena
                            .push_statement(ArenaStatement::AlterTable { name, ops });
                        self.skip_statement();
                    }
                    Err(_) => {
                        self.arena.truncate(mark);
                        self.arena.push_statement(ArenaStatement::Other {
                            keyword: "ALTER TABLE".to_string(),
                        });
                        self.skip_statement();
                    }
                }
            } else if self.at_keyword("DROP") && self.at_keyword_at(1, "TABLE") {
                let mark = self.arena.mark();
                match self.drop_table() {
                    Ok(names) => {
                        self.arena
                            .push_statement(ArenaStatement::DropTable { names });
                        self.skip_statement();
                    }
                    Err(_) => {
                        self.arena.truncate(mark);
                        self.arena.push_statement(ArenaStatement::Other {
                            keyword: "DROP TABLE".to_string(),
                        });
                        self.skip_statement();
                    }
                }
            } else {
                let keyword = self.leading_keyword();
                self.arena.push_statement(ArenaStatement::Other { keyword });
                self.skip_statement();
            }
        }
        Ok(std::mem::take(&mut self.arena))
    }

    /// Whether the cursor sits at `CREATE [TEMPORARY] TABLE`.
    fn at_create_table(&self) -> bool {
        if !self.at_keyword("CREATE") {
            return false;
        }
        if self.at_keyword_at(1, "TABLE") {
            return true;
        }
        self.at_keyword_at(1, "TEMPORARY") && self.at_keyword_at(2, "TABLE")
    }

    /// Uppercased keyword(s) introducing the statement at the cursor.
    fn leading_keyword(&self) -> String {
        let first = self
            .peek()
            .and_then(|t| t.kind.ident_text())
            .unwrap_or("?")
            .to_ascii_uppercase();
        // Give CREATE a second word so INDEX/VIEW/TRIGGER etc. are countable.
        if first == "CREATE" || first == "DROP" || first == "ALTER" || first == "LOCK"
            || first == "UNLOCK"
        {
            if let Some(second) = self.peek_at(1).and_then(|t| t.kind.ident_text()) {
                return format!("{first} {}", second.to_ascii_uppercase());
            }
        }
        first
    }

    /// Skip tokens up to and including the statement-terminating semicolon.
    ///
    /// Any semicolon terminates: string literals (the only place a `;` can
    /// legitimately hide) are already single tokens, and honoring paren depth
    /// here would let one unbalanced broken statement swallow the rest of the
    /// file.
    fn skip_statement(&mut self) {
        while let Some(t) = self.bump() {
            if matches!(t.kind, TokenKind::Semicolon) {
                break;
            }
        }
    }

    /// Parse `CREATE [TEMPORARY] TABLE [IF NOT EXISTS] name ( ... ) options ;`
    fn create_table(&mut self) -> Result<ArenaCreateTable, ParseError> {
        let checkpoint = self.pos;
        let mark = self.arena.mark();
        let result = self.create_table_inner();
        if result.is_err() {
            // Roll both the cursor and the arena pools back so the degraded
            // statement leaves no orphaned pool entries behind.
            self.pos = checkpoint;
            self.arena.truncate(mark);
        }
        result
    }

    fn create_table_inner(&mut self) -> Result<ArenaCreateTable, ParseError> {
        self.expect_keyword("CREATE")?;
        let temporary = self.eat_keyword("TEMPORARY");
        self.expect_keyword("TABLE")?;
        let if_not_exists = if self.at_keyword("IF") {
            self.pos += 1;
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let first = self.identifier()?;
        let (qualifier, name) = if self.eat_kind(&TokenKind::Dot) {
            (Some(first), self.identifier()?)
        } else {
            (None, first)
        };
        self.expect_kind(TokenKind::LParen)?;

        // Columns and constraints go straight into the arena's flat pools;
        // the statement records only the index ranges.
        let mark = self.arena.mark();
        loop {
            if self.eat_kind(&TokenKind::RParen) {
                break;
            }
            if let Some(c) = self.table_constraint()? {
                self.arena.push_constraint(c);
            } else {
                let col = self.column_def()?;
                self.arena.push_column(col);
            }
            if self.eat_kind(&TokenKind::Comma) {
                continue;
            }
            self.expect_kind(TokenKind::RParen)?;
            break;
        }
        let columns = self.arena.columns_since(mark);
        let constraints = self.arena.constraints_since(mark);

        let options_mark = self.arena.mark();
        self.table_options();
        let options = self.arena.strings_since(options_mark);
        // Consume the terminating semicolon if present.
        self.eat_kind(&TokenKind::Semicolon);

        Ok(ArenaCreateTable {
            name,
            qualifier,
            if_not_exists,
            temporary,
            columns,
            constraints,
            options,
        })
    }

    /// Try to parse a table-level constraint at the cursor; `Ok(None)` means
    /// the element is a column definition instead.
    fn table_constraint(&mut self) -> Result<Option<TableConstraint>, ParseError> {
        let mut name = None;
        let checkpoint = self.pos;
        if self.eat_keyword("CONSTRAINT") {
            // Optional constraint name before the kind keyword.
            if !(self.at_keyword("PRIMARY")
                || self.at_keyword("UNIQUE")
                || self.at_keyword("FOREIGN")
                || self.at_keyword("CHECK"))
            {
                name = Some(self.identifier()?);
            }
        }
        if self.at_keyword("PRIMARY") && self.at_keyword_at(1, "KEY") {
            self.pos += 2;
            let columns = self.paren_name_list()?;
            return Ok(Some(TableConstraint::PrimaryKey { name, columns }));
        }
        if self.at_keyword("UNIQUE") {
            // Could be `UNIQUE KEY name (...)`, `UNIQUE INDEX (...)`, `UNIQUE (...)`.
            let mut off = 1;
            if self.at_keyword_at(1, "KEY") || self.at_keyword_at(1, "INDEX") {
                off = 2;
            }
            // Optional index name.
            let has_name = matches!(
                self.peek_at(off).map(|t| &t.kind),
                Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_))
            );
            let paren_off = off + usize::from(has_name);
            if matches!(
                self.peek_at(paren_off).map(|t| &t.kind),
                Some(TokenKind::LParen)
            ) {
                self.pos += off;
                let idx_name = if has_name {
                    Some(self.identifier()?)
                } else {
                    None
                };
                let columns = self.paren_name_list()?;
                return Ok(Some(TableConstraint::Unique {
                    name: name.or(idx_name),
                    columns,
                }));
            }
            // Otherwise it is a column named after or modified by UNIQUE —
            // fall through to column parsing.
            self.pos = checkpoint;
            return Ok(None);
        }
        if self.at_keyword("FOREIGN") && self.at_keyword_at(1, "KEY") {
            self.pos += 2;
            // Optional index name before the column list.
            if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                let _ = self.identifier()?;
            }
            let columns = self.paren_name_list()?;
            self.expect_keyword("REFERENCES")?;
            let first = self.identifier()?;
            let foreign_table = if self.eat_kind(&TokenKind::Dot) {
                self.identifier()?
            } else {
                first
            };
            let foreign_columns =
                if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                    self.paren_name_list()?
                } else {
                    Vec::new()
                };
            // ON DELETE/UPDATE actions, MATCH clauses: skip to element end.
            self.skip_to_element_end();
            return Ok(Some(TableConstraint::ForeignKey {
                name,
                columns,
                foreign_table,
                foreign_columns,
            }));
        }
        if self.at_keyword("CHECK") {
            self.pos += 1;
            self.skip_balanced_parens()?;
            self.skip_to_element_end();
            return Ok(Some(TableConstraint::Check { name }));
        }
        if (self.at_keyword("KEY") || self.at_keyword("INDEX") || self.at_keyword("FULLTEXT")
            || self.at_keyword("SPATIAL"))
            && name.is_none()
        {
            // `KEY name (cols)` / `INDEX (cols)` / `FULLTEXT KEY name (cols)`.
            // Disambiguate from a *column* named `key`: a column would be
            // followed by a type name, an index by a name or '('.
            let mut off = 1;
            if (self.at_keyword("FULLTEXT") || self.at_keyword("SPATIAL"))
                && (self.at_keyword_at(1, "KEY") || self.at_keyword_at(1, "INDEX"))
            {
                off = 2;
            }
            let has_name = matches!(
                self.peek_at(off).map(|t| &t.kind),
                Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_))
            );
            let paren_off = off + usize::from(has_name);
            if matches!(
                self.peek_at(paren_off).map(|t| &t.kind),
                Some(TokenKind::LParen)
            ) {
                self.pos += off;
                let idx_name = if has_name {
                    Some(self.identifier()?)
                } else {
                    None
                };
                let columns = self.paren_name_list()?;
                self.skip_to_element_end();
                return Ok(Some(TableConstraint::Index {
                    name: idx_name,
                    columns,
                }));
            }
        }
        if name.is_some() {
            // `CONSTRAINT name` followed by something we do not model:
            // treat as a check-like constraint and skip it.
            self.skip_to_element_end();
            return Ok(Some(TableConstraint::Check { name }));
        }
        self.pos = checkpoint;
        Ok(None)
    }

    /// `( name [(len)] [ASC|DESC] , ... )` — index column lists may carry
    /// prefix lengths and directions, which we drop.
    fn paren_name_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_kind(TokenKind::LParen)?;
        let mut names = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::RParen) {
                break;
            }
            names.push(self.identifier()?);
            // Optional `(10)` prefix length.
            if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                self.skip_balanced_parens()?;
            }
            // Optional ASC/DESC.
            let _ = self.eat_keyword("ASC") || self.eat_keyword("DESC");
            if self.eat_kind(&TokenKind::Comma) {
                continue;
            }
            self.expect_kind(TokenKind::RParen)?;
            break;
        }
        Ok(names)
    }

    /// Parse one column definition.
    fn column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.identifier()?;
        let data_type = self.data_type()?;
        let mut col = ColumnDef::new(name, data_type);
        self.column_options(&mut col)?;
        Ok(col)
    }

    /// Parse a data type: name, optional params or value list, modifiers.
    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let raw = match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Ident(s) => s.clone(),
                TokenKind::QuotedIdent(s) => s.clone(),
                _ => return Err(self.err_expected("a data type")),
            },
            None => return Err(self.err_expected("a data type")),
        };
        self.pos += 1;
        let mut upper = raw.to_ascii_uppercase();
        // Multi-word types.
        if upper == "DOUBLE" && self.eat_keyword("PRECISION") {
            // DOUBLE PRECISION — same family.
        } else if upper == "CHARACTER" && self.eat_keyword("VARYING") {
            upper = "VARCHAR".to_string();
        } else if upper == "LONG" {
            if self.eat_keyword("VARCHAR") || self.eat_keyword("TEXT") {
                upper = "MEDIUMTEXT".to_string();
            } else if self.eat_keyword("VARBINARY") {
                upper = "MEDIUMBLOB".to_string();
            }
        }
        let mut ty = DataType::from_name(&upper);

        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
            if matches!(ty.family, TypeFamily::Enum | TypeFamily::Set) {
                ty.values = self.paren_string_list()?;
            } else {
                ty.params = self.paren_number_list()?;
            }
        }
        // Modifiers that are part of the type.
        loop {
            if self.eat_keyword("UNSIGNED") {
                ty.unsigned = true;
            } else if self.eat_keyword("SIGNED") || self.eat_keyword("ZEROFILL") {
                // cosmetic
            } else {
                break;
            }
        }
        Ok(ty)
    }

    /// `( 'a' , 'b' , ... )`
    fn paren_string_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_kind(TokenKind::LParen)?;
        let mut values = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::RParen) {
                break;
            }
            match self.peek() {
                Some(t) => match &t.kind {
                    TokenKind::StringLit(s) => {
                        values.push(s.clone());
                        self.pos += 1;
                    }
                    TokenKind::QuotedIdent(s) | TokenKind::Ident(s) => {
                        // Lenient: unquoted/double-quoted enum values exist in the wild.
                        values.push(s.clone());
                        self.pos += 1;
                    }
                    TokenKind::Number(n) => {
                        values.push(n.clone());
                        self.pos += 1;
                    }
                    _ => return Err(self.err_expected("a string value")),
                },
                None => return Err(self.err_expected("a string value")),
            }
            if self.eat_kind(&TokenKind::Comma) {
                continue;
            }
            self.expect_kind(TokenKind::RParen)?;
            break;
        }
        Ok(values)
    }

    /// `( 11 )` or `( 10 , 2 )`
    fn paren_number_list(&mut self) -> Result<Vec<u32>, ParseError> {
        self.expect_kind(TokenKind::LParen)?;
        let mut nums = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::RParen) {
                break;
            }
            match self.peek() {
                Some(t) => match &t.kind {
                    TokenKind::Number(n) => {
                        let parsed = n.parse::<u32>().unwrap_or(0);
                        nums.push(parsed);
                        self.pos += 1;
                    }
                    TokenKind::Ident(s) if s.eq_ignore_ascii_case("max") => {
                        // VARCHAR(MAX) — SQL Server; record as 0 sentinel.
                        nums.push(0);
                        self.pos += 1;
                    }
                    _ => return Err(self.err_expected("a number")),
                },
                None => return Err(self.err_expected("a number")),
            }
            if self.eat_kind(&TokenKind::Comma) {
                continue;
            }
            self.expect_kind(TokenKind::RParen)?;
            break;
        }
        Ok(nums)
    }

    /// Parse the option soup after the data type, up to the `,` or `)` that
    /// ends the column element.
    fn column_options(&mut self, col: &mut ColumnDef) -> Result<(), ParseError> {
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                None => break,
                Some(TokenKind::Comma) | Some(TokenKind::RParen) | Some(TokenKind::Semicolon) => {
                    break
                }
                Some(TokenKind::Ident(_)) => {
                    if self.at_keyword("NOT") && self.at_keyword_at(1, "NULL") {
                        self.pos += 2;
                        col.not_null = true;
                    } else if self.eat_keyword("NULL") {
                        col.not_null = false;
                    } else if self.at_keyword("PRIMARY") && self.at_keyword_at(1, "KEY") {
                        self.pos += 2;
                        col.inline_primary_key = true;
                    } else if self.eat_keyword("KEY") {
                        // bare `KEY` after a column means primary key in MySQL
                        col.inline_primary_key = true;
                    } else if self.eat_keyword("UNIQUE") {
                        col.unique = true;
                        let _ = self.eat_keyword("KEY");
                    } else if self.eat_keyword("AUTO_INCREMENT")
                        || self.eat_keyword("AUTOINCREMENT")
                        || self.eat_keyword("IDENTITY")
                    {
                        col.auto_increment = true;
                        // IDENTITY(1,1)
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                            self.skip_balanced_parens()?;
                        }
                    } else if self.eat_keyword("DEFAULT") {
                        col.default = Some(self.default_value()?);
                    } else if self.eat_keyword("COMMENT") {
                        col.comment = Some(self.string_value()?);
                    } else if self.eat_keyword("COLLATE") || self.eat_keyword("CHARACTER") {
                        // COLLATE x / CHARACTER SET x
                        let _ = self.eat_keyword("SET");
                        let _ = self.identifier();
                    } else if self.eat_keyword("CHARSET") {
                        let _ = self.identifier();
                    } else if self.eat_keyword("ON") {
                        // ON UPDATE CURRENT_TIMESTAMP etc.
                        self.pos += 1; // UPDATE/DELETE
                        let _ = self.identifier();
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                            self.skip_balanced_parens()?;
                        }
                    } else if self.eat_keyword("REFERENCES") {
                        // Inline FK: REFERENCES t (c) [actions]
                        let _ = self.identifier()?;
                        if self.eat_kind(&TokenKind::Dot) {
                            let _ = self.identifier()?;
                        }
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                            self.skip_balanced_parens()?;
                        }
                    } else if self.eat_keyword("CHECK") {
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                            self.skip_balanced_parens()?;
                        }
                    } else if self.eat_keyword("GENERATED") || self.eat_keyword("AS") {
                        // Generated columns: skip expression if parenthesized.
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                            self.skip_balanced_parens()?;
                        }
                    } else {
                        // Unknown option word (STORED, VIRTUAL, UNIQUE KEY...).
                        self.pos += 1;
                    }
                }
                Some(_) => {
                    // Punctuation or literal noise inside options; if it opens
                    // a paren, balance it.
                    if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                        self.skip_balanced_parens()?;
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse a DEFAULT value into display text.
    fn default_value(&mut self) -> Result<String, ParseError> {
        // Possibly signed number.
        if let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Punct('-') | TokenKind::Punct('+') => {
                    let sign = if matches!(t.kind, TokenKind::Punct('-')) {
                        "-"
                    } else {
                        ""
                    };
                    self.pos += 1;
                    if let Some(TokenKind::Number(n)) = self.peek().map(|t| t.kind.clone()) {
                        self.pos += 1;
                        return Ok(format!("{sign}{n}"));
                    }
                    return Ok(sign.to_string());
                }
                TokenKind::Number(n) => {
                    let n = n.clone();
                    self.pos += 1;
                    return Ok(n);
                }
                TokenKind::StringLit(s) => {
                    let s = s.clone();
                    self.pos += 1;
                    return Ok(format!("'{}'", s.replace('\'', "''")));
                }
                TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => {
                    // NULL, CURRENT_TIMESTAMP, TRUE, now(), uuid() ...
                    let s = s.clone();
                    self.pos += 1;
                    if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                        self.skip_balanced_parens()?;
                        return Ok(format!("{}()", s.to_ascii_uppercase()));
                    }
                    return Ok(s.to_ascii_uppercase());
                }
                TokenKind::LParen => {
                    // Parenthesized default expression: record opaquely.
                    self.skip_balanced_parens()?;
                    return Ok("(expr)".to_string());
                }
                _ => {}
            }
        }
        Err(self.err_expected("a default value"))
    }

    fn string_value(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::StringLit(s) => {
                    let s = s.clone();
                    self.pos += 1;
                    Ok(s)
                }
                _ => Err(self.err_expected("a string literal")),
            },
            None => Err(self.err_expected("a string literal")),
        }
    }

    /// Parse `ALTER TABLE name <op> [, <op>]*` up to (not including) the
    /// terminating semicolon, pushing ops into the arena pool. Returns the
    /// target table name; the caller derives the op range from its mark.
    /// Unmodelled ops are skipped element-wise.
    fn alter_table(&mut self) -> Result<String, ParseError> {
        use crate::ast::AlterOp;
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        if self.at_keyword("IF") {
            self.pos += 1;
            let _ = self.eat_keyword("EXISTS");
        }
        let first = self.identifier()?;
        let name = if self.eat_kind(&TokenKind::Dot) {
            self.identifier()?
        } else {
            first
        };
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                None | Some(TokenKind::Semicolon) => break,
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    if self.eat_keyword("ADD") {
                        if self.at_keyword("PRIMARY") && self.at_keyword_at(1, "KEY") {
                            self.pos += 2;
                            let cols = self.paren_name_list()?;
                            self.arena.push_op(AlterOp::AddPrimaryKey(cols));
                        } else if self.at_keyword("CONSTRAINT")
                            || self.at_keyword("FOREIGN")
                            || self.at_keyword("UNIQUE")
                            || self.at_keyword("INDEX")
                            || self.at_keyword("KEY")
                            || self.at_keyword("FULLTEXT")
                            || self.at_keyword("CHECK")
                        {
                            // Constraint/index additions: not modelled here.
                            self.skip_to_element_end();
                        } else {
                            let _ = self.eat_keyword("COLUMN");
                            let def = self.column_def()?;
                            self.arena.push_op(AlterOp::AddColumn(def));
                        }
                    } else if self.eat_keyword("DROP") {
                        if self.at_keyword("PRIMARY") && self.at_keyword_at(1, "KEY") {
                            self.pos += 2;
                            self.arena.push_op(AlterOp::DropPrimaryKey);
                        } else if self.at_keyword("INDEX")
                            || self.at_keyword("KEY")
                            || self.at_keyword("FOREIGN")
                            || self.at_keyword("CONSTRAINT")
                            || self.at_keyword("CHECK")
                        {
                            self.skip_to_element_end();
                        } else {
                            let _ = self.eat_keyword("COLUMN");
                            let col = self.identifier()?;
                            self.arena.push_op(AlterOp::DropColumn(col));
                        }
                    } else if self.eat_keyword("MODIFY") {
                        let _ = self.eat_keyword("COLUMN");
                        let def = self.column_def()?;
                        self.arena.push_op(AlterOp::ModifyColumn(def));
                    } else if self.eat_keyword("CHANGE") {
                        let _ = self.eat_keyword("COLUMN");
                        let old_name = self.identifier()?;
                        let def = self.column_def()?;
                        self.arena.push_op(AlterOp::ChangeColumn { old_name, def });
                    } else if self.eat_keyword("RENAME") {
                        if self.eat_keyword("COLUMN") {
                            // RENAME COLUMN a TO b: unmodelled (no type info).
                            self.skip_to_element_end();
                        } else {
                            let _ = self.eat_keyword("TO") || self.eat_keyword("AS");
                            let new_name = self.identifier()?;
                            self.arena.push_op(AlterOp::RenameTable(new_name));
                        }
                    } else {
                        // ENGINE=..., CONVERT TO, ORDER BY, ...: skip.
                        self.skip_to_element_end();
                    }
                    // A stray token nothing consumed (e.g. an unmatched
                    // `)`, where skip_to_element_end stops without
                    // advancing) would loop forever: force progress.
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
            }
        }
        Ok(name)
    }

    /// Parse `DROP TABLE [IF EXISTS] a [, b]*` up to the semicolon, pushing
    /// names into the string pool.
    fn drop_table(&mut self) -> Result<PoolRange, ParseError> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        if self.at_keyword("IF") {
            self.pos += 1;
            self.expect_keyword("EXISTS")?;
        }
        let mark = self.arena.mark();
        loop {
            let first = self.identifier()?;
            let name = if self.eat_kind(&TokenKind::Dot) {
                self.identifier()?
            } else {
                first
            };
            self.arena.push_string(name);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(self.arena.strings_since(mark))
    }

    /// Skip a balanced `( ... )` group; the cursor must be at `(`.
    fn skip_balanced_parens(&mut self) -> Result<(), ParseError> {
        self.expect_kind(TokenKind::LParen)?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump().map(|t| &t.kind) {
                Some(TokenKind::LParen) => depth += 1,
                Some(TokenKind::RParen) => depth -= 1,
                Some(_) => {}
                None => return Err(self.err_expected("')'")),
            }
        }
        Ok(())
    }

    /// Skip forward to the `,` or `)` that terminates the current table
    /// element, balancing nested parentheses.
    fn skip_to_element_end(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.kind {
                TokenKind::LParen => {
                    depth += 1;
                    self.pos += 1;
                }
                TokenKind::RParen => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                TokenKind::Comma if depth == 0 => return,
                _ => self.pos += 1,
            }
        }
    }

    /// Collect trailing table options until the semicolon or EOF, pushing
    /// each option string into the arena's string pool.
    fn table_options(&mut self) {
        let mut current = String::new();
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                None | Some(TokenKind::Semicolon) => break,
                Some(TokenKind::Eq) => {
                    current.push('=');
                    self.pos += 1;
                }
                Some(TokenKind::Comma) => {
                    if !current.is_empty() {
                        self.arena.push_string(std::mem::take(&mut current));
                    }
                    self.pos += 1;
                }
                Some(TokenKind::Ident(s)) | Some(TokenKind::QuotedIdent(s)) => {
                    if !current.is_empty() && !current.ends_with('=') {
                        self.arena.push_string(std::mem::take(&mut current));
                    }
                    current.push_str(&s);
                    self.pos += 1;
                }
                Some(TokenKind::Number(n)) => {
                    current.push_str(&n);
                    self.pos += 1;
                }
                Some(TokenKind::StringLit(s)) => {
                    current.push('\'');
                    current.push_str(&s);
                    current.push('\'');
                    self.pos += 1;
                }
                Some(TokenKind::LParen) => {
                    let _ = self.skip_balanced_parens();
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
        if !current.is_empty() {
            self.arena.push_string(current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CreateTable, Statement};
    use crate::types::TypeFamily;

    fn one_table(sql: &str) -> CreateTable {
        let script = parse_script(sql).unwrap();
        let mut it = script.create_tables();
        let ct = it.next().expect("expected one CREATE TABLE").clone();
        assert!(it.next().is_none(), "expected exactly one CREATE TABLE");
        ct
    }

    #[test]
    fn parses_minimal_table() {
        let ct = one_table("CREATE TABLE t (a INT);");
        assert_eq!(ct.name, "t");
        assert_eq!(ct.columns.len(), 1);
        assert_eq!(ct.columns[0].name, "a");
        assert_eq!(ct.columns[0].data_type.family, TypeFamily::Int);
    }

    #[test]
    fn parses_mysql_dump_style() {
        let sql = r#"
            CREATE TABLE `users` (
              `id` int(11) NOT NULL AUTO_INCREMENT,
              `email` varchar(255) NOT NULL DEFAULT '',
              `bio` text,
              `created_at` datetime DEFAULT CURRENT_TIMESTAMP,
              PRIMARY KEY (`id`),
              UNIQUE KEY `uq_email` (`email`),
              KEY `idx_created` (`created_at`)
            ) ENGINE=InnoDB DEFAULT CHARSET=utf8;
        "#;
        let ct = one_table(sql);
        assert_eq!(ct.name, "users");
        assert_eq!(ct.columns.len(), 4);
        assert!(ct.columns[0].auto_increment);
        assert!(ct.columns[0].not_null);
        assert_eq!(ct.columns[0].data_type.params, vec![11]);
        assert_eq!(ct.columns[1].default.as_deref(), Some("''"));
        assert_eq!(ct.primary_key_columns(), vec!["id".to_string()]);
        assert_eq!(ct.constraints.len(), 3);
        assert!(!ct.options.is_empty());
    }

    #[test]
    fn if_not_exists_and_temporary() {
        let ct = one_table("CREATE TABLE IF NOT EXISTS t (a INT)");
        assert!(ct.if_not_exists);
        let ct = one_table("CREATE TEMPORARY TABLE t (a INT)");
        assert!(ct.temporary);
    }

    #[test]
    fn qualified_table_name() {
        let ct = one_table("CREATE TABLE mydb.t (a INT)");
        assert_eq!(ct.qualifier.as_deref(), Some("mydb"));
        assert_eq!(ct.name, "t");
    }

    #[test]
    fn composite_primary_key() {
        let ct = one_table("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))");
        assert_eq!(
            ct.primary_key_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn inline_primary_key() {
        let ct = one_table("CREATE TABLE t (a INT PRIMARY KEY, b INT)");
        assert_eq!(ct.primary_key_columns(), vec!["a".to_string()]);
    }

    #[test]
    fn foreign_key_with_actions() {
        let sql = "CREATE TABLE t (a INT, CONSTRAINT fk_a FOREIGN KEY (a) \
                   REFERENCES parent (id) ON DELETE CASCADE ON UPDATE NO ACTION)";
        let ct = one_table(sql);
        match &ct.constraints[0] {
            TableConstraint::ForeignKey {
                name,
                columns,
                foreign_table,
                foreign_columns,
            } => {
                assert_eq!(name.as_deref(), Some("fk_a"));
                assert_eq!(columns, &vec!["a".to_string()]);
                assert_eq!(foreign_table, "parent");
                assert_eq!(foreign_columns, &vec!["id".to_string()]);
            }
            other => panic!("expected foreign key, got {other:?}"),
        }
    }

    #[test]
    fn enum_and_set_types() {
        let ct = one_table("CREATE TABLE t (s ENUM('on','off') NOT NULL, f SET('a','b'))");
        assert_eq!(ct.columns[0].data_type.family, TypeFamily::Enum);
        assert_eq!(
            ct.columns[0].data_type.values,
            vec!["on".to_string(), "off".to_string()]
        );
        assert_eq!(ct.columns[1].data_type.family, TypeFamily::Set);
    }

    #[test]
    fn decimal_params_and_unsigned() {
        let ct = one_table("CREATE TABLE t (p DECIMAL(10,2) UNSIGNED)");
        assert_eq!(ct.columns[0].data_type.params, vec![10, 2]);
        assert!(ct.columns[0].data_type.unsigned);
    }

    #[test]
    fn double_precision_and_character_varying() {
        let ct = one_table("CREATE TABLE t (a DOUBLE PRECISION, b CHARACTER VARYING(40))");
        assert_eq!(ct.columns[0].data_type.family, TypeFamily::Double);
        assert_eq!(ct.columns[1].data_type.family, TypeFamily::Varchar);
        assert_eq!(ct.columns[1].data_type.params, vec![40]);
    }

    #[test]
    fn skips_non_create_statements() {
        let sql = r#"
            SET NAMES utf8;
            DROP TABLE IF EXISTS t;
            CREATE TABLE t (a INT);
            INSERT INTO t VALUES (1), (2);
            CREATE INDEX idx ON t (a);
            LOCK TABLES t WRITE;
        "#;
        let script = parse_script(sql).unwrap();
        assert_eq!(script.create_tables().count(), 1);
        let keywords: Vec<_> = script
            .statements
            .iter()
            .filter_map(|s| match s {
                Statement::Other { keyword } => Some(keyword.as_str()),
                _ => None,
            })
            .collect();
        assert!(keywords.contains(&"SET"));
        assert!(keywords.contains(&"INSERT"));
        assert!(keywords.contains(&"CREATE INDEX"));
        assert!(keywords.contains(&"LOCK TABLES"));
        // DROP TABLE is now a modelled statement, not noise.
        assert!(script
            .statements
            .iter()
            .any(|s| matches!(s, Statement::DropTable { names } if names == &["t".to_string()])));
    }

    #[test]
    fn parses_alter_table_ops() {
        use crate::ast::AlterOp;
        let sql = r#"
            ALTER TABLE t
              ADD COLUMN extra VARCHAR(40) NOT NULL,
              DROP COLUMN old_one,
              MODIFY COLUMN amount DECIMAL(12,2),
              CHANGE kind category INT,
              ADD PRIMARY KEY (id),
              ADD INDEX idx_extra (extra),
              DROP INDEX idx_old;
        "#;
        let script = parse_script(sql).unwrap();
        let at = script.alter_tables().next().expect("one alter");
        assert_eq!(at.name, "t");
        assert_eq!(at.ops.len(), 5, "index ops are skipped: {:?}", at.ops);
        assert!(matches!(&at.ops[0], AlterOp::AddColumn(c) if c.name == "extra" && c.not_null));
        assert!(matches!(&at.ops[1], AlterOp::DropColumn(n) if n == "old_one"));
        assert!(matches!(&at.ops[2], AlterOp::ModifyColumn(c) if c.name == "amount"));
        assert!(
            matches!(&at.ops[3], AlterOp::ChangeColumn { old_name, def } if old_name == "kind" && def.name == "category")
        );
        assert!(matches!(&at.ops[4], AlterOp::AddPrimaryKey(cols) if cols == &["id".to_string()]));
    }

    #[test]
    fn alter_rename_and_drop_pk() {
        use crate::ast::AlterOp;
        let script =
            parse_script("ALTER TABLE old_name RENAME TO new_name; ALTER TABLE x DROP PRIMARY KEY;")
                .unwrap();
        let alters: Vec<_> = script.alter_tables().collect();
        assert_eq!(alters.len(), 2);
        assert!(matches!(&alters[0].ops[0], AlterOp::RenameTable(n) if n == "new_name"));
        assert!(matches!(&alters[1].ops[0], AlterOp::DropPrimaryKey));
    }

    #[test]
    fn drop_table_multiple_names() {
        let script = parse_script("DROP TABLE IF EXISTS a, b, db.c CASCADE;").unwrap();
        assert!(script.statements.iter().any(|s| matches!(
            s,
            Statement::DropTable { names } if names == &["a".to_string(), "b".to_string(), "c".to_string()]
        )));
    }

    #[test]
    fn alter_statement_does_not_swallow_next() {
        let script = parse_script(
            "ALTER TABLE t ADD weird_option ROW_FORMAT=DYNAMIC; CREATE TABLE u (a INT);",
        )
        .unwrap();
        assert_eq!(script.create_tables().count(), 1);
    }

    #[test]
    fn insert_with_tricky_strings_does_not_derail() {
        let sql = r#"
            INSERT INTO msg VALUES ('a); CREATE TABLE fake (x INT);');
            CREATE TABLE real_one (a INT);
        "#;
        let script = parse_script(sql).unwrap();
        let names: Vec<_> = script.create_tables().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real_one"]);
    }

    #[test]
    fn a_column_named_key() {
        let ct = one_table("CREATE TABLE t (`key` VARCHAR(64), value TEXT)");
        assert_eq!(ct.columns.len(), 2);
        assert_eq!(ct.columns[0].name, "key");
    }

    #[test]
    fn index_with_prefix_lengths() {
        let ct = one_table("CREATE TABLE t (a VARCHAR(255), KEY idx_a (a(10) DESC))");
        match &ct.constraints[0] {
            TableConstraint::Index { name, columns } => {
                assert_eq!(name.as_deref(), Some("idx_a"));
                assert_eq!(columns, &vec!["a".to_string()]);
            }
            other => panic!("expected index, got {other:?}"),
        }
    }

    #[test]
    fn check_constraint_is_recorded() {
        let ct = one_table("CREATE TABLE t (a INT, CONSTRAINT positive CHECK (a > 0))");
        assert!(matches!(
            &ct.constraints[0],
            TableConstraint::Check { name: Some(n) } if n == "positive"
        ));
    }

    #[test]
    fn multiple_tables_in_order() {
        let sql = "CREATE TABLE a (x INT); CREATE TABLE b (y INT); CREATE TABLE c (z INT);";
        let script = parse_script(sql).unwrap();
        let names: Vec<_> = script.create_tables().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn trailing_comma_tolerated() {
        // Some hand-written dumps have a trailing comma before `)`.
        let ct = one_table("CREATE TABLE t (a INT, b INT,)");
        assert_eq!(ct.columns.len(), 2);
    }

    #[test]
    fn on_update_current_timestamp() {
        let ct = one_table(
            "CREATE TABLE t (ts TIMESTAMP NOT NULL DEFAULT CURRENT_TIMESTAMP \
             ON UPDATE CURRENT_TIMESTAMP)",
        );
        assert_eq!(ct.columns.len(), 1);
        assert!(ct.columns[0].not_null);
        assert_eq!(ct.columns[0].default.as_deref(), Some("CURRENT_TIMESTAMP"));
    }

    #[test]
    fn column_comments() {
        let ct = one_table("CREATE TABLE t (a INT COMMENT 'the answer')");
        assert_eq!(ct.columns[0].comment.as_deref(), Some("the answer"));
    }

    #[test]
    fn serial_and_json_types() {
        let ct = one_table("CREATE TABLE t (id SERIAL, data JSON)");
        assert_eq!(ct.columns[0].data_type.family, TypeFamily::Serial);
        assert_eq!(ct.columns[1].data_type.family, TypeFamily::Json);
    }

    #[test]
    fn varchar_max_sentinel() {
        let ct = one_table("CREATE TABLE t (a VARCHAR(MAX))");
        assert_eq!(ct.columns[0].data_type.params, vec![0]);
    }

    #[test]
    fn negative_default() {
        let ct = one_table("CREATE TABLE t (a INT DEFAULT -1)");
        assert_eq!(ct.columns[0].default.as_deref(), Some("-1"));
    }

    #[test]
    fn empty_script_ok() {
        let script = parse_script("").unwrap();
        assert!(script.statements.is_empty());
        let script = parse_script("-- just a comment\n").unwrap();
        assert!(script.statements.is_empty());
    }

    #[test]
    fn broken_create_table_degrades_to_skip() {
        // Structurally hopeless CREATE TABLE should not fail the whole file.
        let sql = "CREATE TABLE (no name here; CREATE TABLE ok_t (a INT);";
        let script = parse_script(sql).unwrap();
        let names: Vec<_> = script.create_tables().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["ok_t"]);
    }

    #[test]
    fn fulltext_key_parsed_as_index() {
        let ct = one_table("CREATE TABLE t (body TEXT, FULLTEXT KEY ft_body (body))");
        assert!(matches!(&ct.constraints[0], TableConstraint::Index { .. }));
    }

    #[test]
    fn generated_column_skipped_gracefully() {
        let ct =
            one_table("CREATE TABLE t (a INT, b INT GENERATED ALWAYS AS (a + 1) STORED)");
        assert_eq!(ct.columns.len(), 2);
        assert_eq!(ct.columns[1].name, "b");
    }
}
