//! Property tests for the write-ahead mining journal: for *arbitrary*
//! record batches and *arbitrary* damage — truncation at any byte,
//! a bit flip at any position, or wholly random bytes — replay must
//! yield exactly the valid record prefix, report the damage, and never
//! panic.

use proptest::prelude::*;
use schevo_core::errors::{ErrorClass, SchevoError};
use schevo_pipeline::extract::MineOutcome;
use schevo_pipeline::journal::{
    encode_record, replay_bytes, JournalRecord, HEADER_LEN, JOURNAL_MAGIC,
};
use schevo_pipeline::quarantine::{QuarantineRecord, RecoveryRecord};

/// Error classes a journaled outcome can carry.
const CLASSES: [ErrorClass; 8] = [
    ErrorClass::Lex,
    ErrorClass::Syntax,
    ErrorClass::EmptySchema,
    ErrorClass::PackCorrupt,
    ErrorClass::HistoryWalk,
    ErrorClass::NonMonotonicTimestamps,
    ErrorClass::DuplicateVersion,
    ErrorClass::EmptyVersion,
];

fn error_strategy() -> impl Strategy<Value = SchevoError> {
    (
        0usize..CLASSES.len(),
        // Unicode and embedded quotes/newlines stress the JSON layer.
        "[a-zA-Z0-9 /\"\\\\\u{e9}\u{4e16}\u{1f4a5}\n]{0,40}",
        proptest::option::of(0u64..1000),
        proptest::option::of(0u64..1_000_000),
    )
        .prop_map(|(c, message, version_index, byte_offset)| SchevoError {
            class: CLASSES[c],
            project: "prop/project".to_string(),
            version_index,
            message,
            byte_offset,
        })
}

fn record_strategy() -> impl Strategy<Value = JournalRecord> {
    (
        "[0-9a-f]{40}",
        proptest::collection::vec((error_strategy(), 0u64..50), 0..4),
        proptest::option::of((error_strategy(), any::<bool>())),
    )
        .prop_map(|(key, recovered, quarantined)| JournalRecord {
            key,
            outcome: MineOutcome {
                mined: None,
                recovered: recovered
                    .into_iter()
                    .map(|(error, dropped_statements)| RecoveryRecord {
                        error,
                        dropped_statements,
                    })
                    .collect(),
                quarantined: quarantined.map(|(error, recovery_attempted)| QuarantineRecord {
                    error,
                    recovery_attempted,
                }),
            },
        })
}

/// Serialize a batch the way `JournalWriter` lays it out on disk, also
/// returning the byte offset just past each record.
fn journal_bytes(records: &[JournalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = JOURNAL_MAGIC.to_vec();
    let mut ends = Vec::new();
    for r in records {
        bytes.extend_from_slice(&encode_record(r).expect("encodable record"));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An undamaged journal replays to exactly the batch that was
    /// written, with a clean tail.
    #[test]
    fn roundtrip_replays_every_record(records in proptest::collection::vec(record_strategy(), 0..8)) {
        let (bytes, ends) = journal_bytes(&records);
        let replay = replay_bytes(&bytes, "prop");
        prop_assert!(replay.corruption.is_none());
        prop_assert_eq!(&replay.records, &records);
        prop_assert_eq!(replay.valid_len as usize, bytes.len());
        prop_assert_eq!(
            replay.record_ends.iter().map(|&e| e as usize).collect::<Vec<_>>(),
            ends
        );
    }

    /// Truncating at *any* byte yields exactly the records wholly before
    /// the cut; corruption is reported iff the cut is not at a record
    /// boundary (the header counts as the zero-record boundary).
    #[test]
    fn truncation_yields_exact_valid_prefix(
        records in proptest::collection::vec(record_strategy(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, ends) = journal_bytes(&records);
        let cut = (cut_frac * bytes.len() as f64) as usize;
        let replay = replay_bytes(&bytes[..cut], "prop");
        if cut < HEADER_LEN {
            prop_assert!(replay.records.is_empty());
            prop_assert!(replay.corruption.is_some());
        } else {
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(replay.records.len(), expect, "cut at {}", cut);
            prop_assert_eq!(&replay.records[..], &records[..expect]);
            let at_boundary = cut == HEADER_LEN || ends.contains(&cut);
            prop_assert_eq!(replay.corruption.is_some(), !at_boundary, "cut at {}", cut);
            let valid = if expect == 0 { HEADER_LEN } else { ends[expect - 1] };
            prop_assert_eq!(replay.valid_len as usize, valid);
        }
    }

    /// Flipping one bit anywhere after the header stops replay exactly
    /// at the record containing the flipped byte, never later.
    #[test]
    fn bit_flip_stops_at_the_damaged_record(
        records in proptest::collection::vec(record_strategy(), 1..6),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, ends) = journal_bytes(&records);
        let span = bytes.len() - HEADER_LEN;
        let pos = HEADER_LEN + ((pos_frac * span as f64) as usize).min(span - 1);
        bytes[pos] ^= 1 << bit;
        let replay = replay_bytes(&bytes, "prop");
        let damaged = ends.iter().filter(|&&e| e <= pos).count();
        prop_assert_eq!(replay.records.len(), damaged, "flip at {}", pos);
        prop_assert_eq!(&replay.records[..], &records[..damaged]);
        prop_assert!(replay.corruption.is_some(), "flip at {} went undetected", pos);
    }

    /// Replay of wholly arbitrary bytes never panics and never claims
    /// more valid bytes than exist.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let replay = replay_bytes(&bytes, "prop");
        prop_assert!(replay.valid_len as usize <= bytes.len());
        // With the correct magic prepended, still no panic.
        let mut with_magic = JOURNAL_MAGIC.to_vec();
        with_magic.extend_from_slice(&bytes);
        let replay = replay_bytes(&with_magic, "prop");
        prop_assert!(replay.valid_len as usize <= with_magic.len());
    }
}
