//! Differential determinism harness for the work-stealing study
//! executor: the complete study over a seeded universe must be
//! bit-identical for every worker count and with the content-addressed
//! cache on or off. Worker scheduling and cache hits may only change
//! *when* work happens, never *what* is computed.

use schevo_corpus::universe::{generate, Universe};
use schevo_corpus::UniverseConfig;
use schevo_pipeline::study::{run_study, StudyOptions, StudyResult};
use std::sync::OnceLock;

fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| generate(UniverseConfig::small(2019, 8)))
}

fn study(workers: usize, cache: bool) -> StudyResult {
    run_study(
        universe(),
        StudyOptions {
            workers,
            cache,
            ..StudyOptions::default()
        },
    )
}

/// Every observable output of two studies must agree. `ExecStats` is
/// deliberately excluded: timings and per-run hit counts are the one
/// part of the result that legitimately varies with scheduling.
fn assert_identical(a: &StudyResult, b: &StudyResult, label: &str) {
    assert_eq!(a.report, b.report, "{label}: funnel counts diverged");
    assert_eq!(a.profiles, b.profiles, "{label}: profiles diverged");
    assert_eq!(a.taxa, b.taxa, "{label}: taxa stats diverged");
    assert_eq!(
        a.derived_reed_threshold, b.derived_reed_threshold,
        "{label}: derived reed threshold diverged"
    );
    assert_eq!(
        a.used_reed_threshold, b.used_reed_threshold,
        "{label}: used reed threshold diverged"
    );
    assert_eq!(
        a.parse_failures, b.parse_failures,
        "{label}: parse failures diverged"
    );
    assert_eq!(a.fk, b.fk, "{label}: fk extension diverged");
    assert_eq!(
        a.electrolysis, b.electrolysis,
        "{label}: electrolysis diverged"
    );
    // Heartbeat-derived aggregates, spot-checked against the taxa block
    // equality above via an independent path.
    let heartbeat =
        |s: &StudyResult| -> Vec<(u64, u64, u64, u64)> {
            s.profiles
                .iter()
                .map(|p| (p.total_activity, p.active_commits, p.reeds, p.turf))
                .collect()
        };
    assert_eq!(heartbeat(a), heartbeat(b), "{label}: heartbeat measures diverged");
}

#[test]
fn study_is_identical_across_workers_and_cache() {
    let ncpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let baseline = study(1, false);
    for workers in [1, 2, ncpus] {
        for cache in [false, true] {
            if workers == 1 && !cache {
                continue;
            }
            let other = study(workers, cache);
            assert_identical(
                &baseline,
                &other,
                &format!("workers={workers} cache={cache}"),
            );
        }
    }
}

#[test]
fn exec_stats_reflect_configuration() {
    let cached = study(2, true);
    assert!(cached.exec.cache_enabled);
    assert_eq!(cached.exec.workers, 2);
    assert_eq!(cached.exec.tasks, cached.profiles.len());
    // Every version parse and transition diff goes through the cache
    // when it is enabled.
    assert!(
        cached.exec.diff_hits + cached.exec.diff_misses > 0,
        "cached run recorded no diff lookups"
    );
    assert!(cached.exec.parse_hits + cached.exec.parse_misses > 0);

    let uncached = study(2, false);
    assert!(!uncached.exec.cache_enabled);
    assert_eq!(uncached.exec.parse_hits, 0);
    assert_eq!(uncached.exec.diff_hits, 0);
    // Conservation: the cache hides work, it never changes how much is
    // needed. (Whether hits occur depends on content duplication in the
    // corpus; the unit and property tests pin down hit behaviour.)
    assert_eq!(
        cached.exec.parse_hits + cached.exec.parse_misses,
        uncached.exec.parse_misses,
        "parse lookups must equal uncached parses"
    );
    assert_eq!(
        cached.exec.diff_hits + cached.exec.diff_misses,
        uncached.exec.diff_misses,
        "diff lookups must equal uncached diffs"
    );
}

#[test]
fn worker_count_is_clamped_not_trusted() {
    // Degenerate worker counts must not panic or change results.
    let a = study(1, true);
    let b = study(usize::MAX, true);
    assert_identical(&a, &b, "workers=1 vs workers=usize::MAX");
}
