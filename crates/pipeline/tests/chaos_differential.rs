//! Chaos differential harness for graceful-degradation mining: inject
//! every fault class of the `faultgen` catalog into a seeded universe and
//! prove that (a) the study always completes, (b) the clean-history
//! subset of the result is bit-identical to the uninjected run across
//! worker counts and cache settings, (c) `--strict` fails with the
//! expected error class, and (d) degradation events are attributed only
//! to injected projects, with the right `ErrorClass`.
//!
//! Two fault classes are *healed upstream* of mining by design — the
//! history walk deduplicates consecutive identical blobs
//! (`DuplicateVersion`) and the funnel drops blank versions
//! (`EmptyVersion`) — so those recovery paths are exercised at the
//! candidate level, where `corrupt_versions` mutates extracted version
//! lists directly. Several others (`UnbalancedParens`,
//! `UnknownVendorClause`, `NonDdlNoise`, and often `TruncatedBlob`) are
//! absorbed *silently* by the tolerant parser: the damaged statement
//! degrades to `Statement::Other` and mining proceeds. The harness
//! therefore asserts conservation — every event it does see belongs to
//! an injected project and carries an allowed class — rather than
//! demanding one event per fault.

use rand::rngs::StdRng;
use rand::SeedableRng;
use schevo_core::errors::ErrorClass;
use schevo_corpus::faultgen::{corrupt_versions, inject, FaultClass, FaultPlan};
use schevo_corpus::universe::{generate, Universe, UniverseConfig};
use schevo_pipeline::extract::Mined;
use schevo_pipeline::funnel::{run_funnel, CandidateHistory};
use schevo_pipeline::quarantine::QuarantineReport;
use schevo_pipeline::study::{run_study, try_run_study, StudyOptions, StudyResult};
use schevo_pipeline::{MiningEngine, SliceSource};
use schevo_vcs::history::{FileVersion, WalkStrategy};
use schevo_vcs::sha1::Digest;
use schevo_vcs::timestamp::Timestamp;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::OnceLock;

const SEED: u64 = 2019;
const SCALE: usize = 10;
const FAULT_SEED: u64 = 7;
const RATE: u32 = 20;

fn clean_universe() -> Universe {
    generate(UniverseConfig::small(SEED, SCALE))
}

/// The uninjected baseline study, computed once.
fn baseline() -> &'static StudyResult {
    static B: OnceLock<StudyResult> = OnceLock::new();
    B.get_or_init(|| {
        run_study(
            &clean_universe(),
            StudyOptions {
                workers: 1,
                cache: false,
                ..StudyOptions::default()
            },
        )
    })
}

fn study_of(u: &Universe, workers: usize, cache: bool) -> StudyResult {
    run_study(
        u,
        StudyOptions {
            workers,
            cache,
            ..StudyOptions::default()
        },
    )
}

/// (workers, cache) grid: serial, contended, wide × cache off/on.
fn configs() -> Vec<(usize, bool)> {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut grid = Vec::new();
    for workers in [1, 2, n] {
        for cache in [false, true] {
            if !grid.contains(&(workers, cache)) {
                grid.push((workers, cache));
            }
        }
    }
    grid
}

fn profile_index(s: &StudyResult) -> BTreeMap<&str, &schevo_core::profile::EvolutionProfile> {
    s.profiles.iter().map(|p| (p.project.as_str(), p)).collect()
}

/// Every project the fault generator did NOT touch must come out of the
/// faulted study with a profile bit-identical to the clean baseline.
fn assert_clean_subset_identical(
    faulted: &StudyResult,
    injected: &BTreeSet<String>,
    label: &str,
) {
    let clean = profile_index(baseline());
    let dirty = profile_index(faulted);
    for (name, base_profile) in &clean {
        if injected.contains(*name) {
            continue;
        }
        let got = dirty.get(name).unwrap_or_else(|| {
            panic!("{label}: clean project {name} vanished from faulted study")
        });
        assert_eq!(
            *got, *base_profile,
            "{label}: clean project {name} profile diverged under fault injection"
        );
    }
}

/// Events may only name injected projects, and only with allowed classes.
fn assert_events_attributed(
    report: &QuarantineReport,
    injected: &BTreeSet<String>,
    allowed: &[ErrorClass],
    label: &str,
) {
    for r in &report.recovered {
        assert!(
            injected.contains(&r.error.project),
            "{label}: recovery names uninjected project {}",
            r.error.project
        );
        assert!(
            allowed.contains(&r.error.class),
            "{label}: recovery class {} not in allowed set",
            r.error.class
        );
    }
    for q in &report.quarantined {
        assert!(
            injected.contains(&q.error.project),
            "{label}: quarantine names uninjected project {}",
            q.error.project
        );
        assert!(
            allowed.contains(&q.error.class),
            "{label}: quarantine class {} not in allowed set",
            q.error.class
        );
    }
}

/// Which degradation classes a universe-level injection of each fault
/// class may legitimately produce. Silent absorption (empty set plus no
/// events) is legal for the classes the tolerant parser swallows.
fn allowed_classes(class: FaultClass) -> Vec<ErrorClass> {
    match class {
        // Truncation can cut inside a string/comment (lex error) or
        // mid-statement (silent statement drop).
        FaultClass::TruncatedBlob => vec![ErrorClass::Lex, ErrorClass::Syntax],
        // A missing `)` degrades the statement inside the strict parser;
        // no error ever surfaces.
        FaultClass::UnbalancedParens => vec![ErrorClass::Syntax],
        FaultClass::UnknownVendorClause => vec![],
        FaultClass::NonDdlNoise => vec![ErrorClass::Lex, ErrorClass::Syntax],
        // Guaranteed unterminated token.
        FaultClass::ByteFlip => vec![ErrorClass::Lex],
        FaultClass::NonMonotonicTimestamps => vec![ErrorClass::NonMonotonicTimestamps],
        // Healed by the history walk / funnel before mining.
        FaultClass::DuplicateVersion => vec![],
        FaultClass::EmptyVersion => vec![],
        // Valid DDL, just pathologically large: absorbed silently unless
        // a watchdog deadline is armed (deadline overruns are tested in
        // the exec/watchdog unit tests, not in this differential suite).
        FaultClass::SlowPath => vec![],
    }
}

#[test]
fn every_fault_class_completes_with_identical_clean_subset() {
    for class in FaultClass::ALL {
        let mut u = clean_universe();
        let faults = inject(&mut u, &FaultPlan::single(FAULT_SEED, RATE, class));
        assert!(
            !faults.is_empty(),
            "{class}: fault plan injected nothing at {RATE}%"
        );
        let injected: BTreeSet<String> = faults.iter().map(|f| f.project.clone()).collect();
        let allowed = allowed_classes(class);

        let mut runs: Vec<(String, StudyResult)> = Vec::new();
        for (workers, cache) in configs() {
            let label = format!("{class} workers={workers} cache={cache}");
            let s = study_of(&u, workers, cache);
            assert_clean_subset_identical(&s, &injected, &label);
            assert_events_attributed(&s.quarantine, &injected, &allowed, &label);
            assert_eq!(
                s.parse_failures,
                s.quarantine.quarantined.len(),
                "{label}: parse_failures out of sync with quarantine"
            );
            runs.push((label, s));
        }
        // Faulted studies must still be deterministic across the grid:
        // same profiles, same funnel counts, same quarantine report.
        let (first_label, first) = &runs[0];
        for (label, other) in &runs[1..] {
            assert_eq!(
                first.report, other.report,
                "{first_label} vs {label}: funnel diverged under faults"
            );
            assert_eq!(
                first.profiles, other.profiles,
                "{first_label} vs {label}: profiles diverged under faults"
            );
            assert_eq!(
                first.quarantine, other.quarantine,
                "{first_label} vs {label}: quarantine report diverged"
            );
        }
    }
}

#[test]
fn byte_flip_always_surfaces_as_lex_recovery() {
    let mut u = clean_universe();
    let faults = inject(&mut u, &FaultPlan::single(FAULT_SEED, RATE, FaultClass::ByteFlip));
    let s = study_of(&u, 2, true);
    let events = s.quarantine.recovered.len() + s.quarantine.quarantined.len();
    assert!(
        events >= 1,
        "byte flips into {} projects produced no degradation events",
        faults.len()
    );
    for r in &s.quarantine.recovered {
        assert_eq!(r.error.class, ErrorClass::Lex);
        assert!(r.error.byte_offset.is_some(), "lex recovery lost its byte offset");
    }
}

#[test]
fn backwards_timestamps_always_surface_and_resort() {
    let mut u = clean_universe();
    inject(
        &mut u,
        &FaultPlan::single(FAULT_SEED, RATE, FaultClass::NonMonotonicTimestamps),
    );
    let s = study_of(&u, 2, true);
    assert!(
        s.quarantine
            .recovered
            .iter()
            .any(|r| r.error.class == ErrorClass::NonMonotonicTimestamps),
        "timestamp swap produced no NonMonotonicTimestamps recovery"
    );
    assert!(s.quarantine.quarantined.is_empty());
}

#[test]
fn strict_mode_fails_with_expected_error_class() {
    // NonMonotonicTimestamps is the one universe-level class guaranteed
    // to surface (FirstParent preserves commit order), so strict mode
    // must refuse the study with exactly that class.
    let mut u = clean_universe();
    inject(
        &mut u,
        &FaultPlan::single(FAULT_SEED, RATE, FaultClass::NonMonotonicTimestamps),
    );
    let err = try_run_study(
        &u,
        StudyOptions {
            workers: 2,
            cache: true,
            strict: true,
            ..StudyOptions::default()
        },
    )
    .expect_err("strict study over a faulted universe must fail");
    assert_eq!(err.class, ErrorClass::NonMonotonicTimestamps);
    assert!(err.version_index.is_some(), "strict error lost version provenance");

    // Same story for the guaranteed lex class.
    let mut u = clean_universe();
    inject(&mut u, &FaultPlan::single(FAULT_SEED, RATE, FaultClass::ByteFlip));
    let err = try_run_study(
        &u,
        StudyOptions {
            workers: 1,
            cache: false,
            strict: true,
            ..StudyOptions::default()
        },
    )
    .expect_err("strict study over lex-corrupted universe must fail");
    assert_eq!(err.class, ErrorClass::Lex);
}

#[test]
fn strict_mode_on_clean_universe_matches_graceful() {
    let u = clean_universe();
    let strict = try_run_study(
        &u,
        StudyOptions {
            workers: 2,
            cache: true,
            strict: true,
            ..StudyOptions::default()
        },
    )
    .expect("clean universe must pass strict mode");
    assert!(strict.quarantine.is_clean());
    assert_eq!(strict.profiles, baseline().profiles);
    assert_eq!(strict.report, baseline().report);
    assert_eq!(strict.quarantine, baseline().quarantine);
}

#[test]
fn twenty_percent_mixed_fault_study_completes() {
    // The acceptance scenario: a fifth of the evolving projects damaged
    // with the full catalog cycling, and the study still completes with
    // an identical clean subset in every configuration.
    let mut u = clean_universe();
    let faults = inject(&mut u, &FaultPlan::all(FAULT_SEED, RATE));
    assert!(faults.len() >= 3, "expected several faults at scale {SCALE}");
    let injected: BTreeSet<String> = faults.iter().map(|f| f.project.clone()).collect();
    let all_classes: Vec<ErrorClass> = FaultClass::ALL
        .iter()
        .flat_map(|&c| allowed_classes(c))
        .collect();
    let mut prev: Option<StudyResult> = None;
    for (workers, cache) in configs() {
        let label = format!("mixed workers={workers} cache={cache}");
        let s = study_of(&u, workers, cache);
        assert_clean_subset_identical(&s, &injected, &label);
        assert_events_attributed(&s.quarantine, &injected, &all_classes, &label);
        if let Some(p) = &prev {
            assert_eq!(p.profiles, s.profiles, "{label}: profiles diverged");
            assert_eq!(p.quarantine, s.quarantine, "{label}: quarantine diverged");
        }
        prev = Some(s);
    }
}

// ---------------------------------------------------------------------
// Candidate-level injection: exercises the recovery paths that
// repository-level injection cannot reach (the history walk and funnel
// heal duplicates and blanks before mining sees them).
// ---------------------------------------------------------------------

fn ver(i: usize, month: u8, content: &str) -> FileVersion {
    FileVersion {
        commit: Digest([i as u8; 20]),
        timestamp: Timestamp::from_date(2018, month, 1),
        author: "chaos".into(),
        message: format!("v{i}"),
        content: content.into(),
    }
}

fn candidate(versions: Vec<FileVersion>) -> CandidateHistory {
    CandidateHistory {
        name: "chaos/crafted".into(),
        ddl_path: "schema.sql".into(),
        versions,
        pup_months: 12,
        total_commits: 40,
    }
}

fn mine_graceful(
    cands: &[CandidateHistory],
    workers: usize,
    cache: bool,
) -> (Vec<Mined>, QuarantineReport) {
    let out = MiningEngine::new(StudyOptions {
        reed_threshold: Some(schevo_core::heartbeat::REED_THRESHOLD),
        workers,
        cache,
        ..StudyOptions::default()
    })
    .mine(&SliceSource::new(cands))
    .expect("graceful mining never aborts without a journal");
    (out.mined, out.quarantine)
}

fn mine_one(c: CandidateHistory, cache: bool) -> (usize, QuarantineReport) {
    let (mined, report) = mine_graceful(&[c], 1, cache);
    (mined.len(), report)
}

const V0: &str = "CREATE TABLE users (id INT, name TEXT);";
const V1: &str = "CREATE TABLE users (id INT, name TEXT, email TEXT);";
const V2: &str = "CREATE TABLE users (id INT, name TEXT, email TEXT);\nCREATE TABLE posts (id INT);";

#[test]
fn candidate_duplicate_version_recovers_and_matches_dedup() {
    for cache in [false, true] {
        let mut dup = vec![ver(0, 1, V0), ver(1, 2, V1), ver(3, 4, V2)];
        let mut rng = StdRng::seed_from_u64(FAULT_SEED);
        let at = corrupt_versions(&mut dup, FaultClass::DuplicateVersion, &mut rng)
            .expect("duplicate injection applies");
        assert_eq!(dup.len(), 4);
        assert_eq!(dup[at + 1].content, dup[at].content);

        let (n, report) = mine_one(candidate(dup), cache);
        assert_eq!(n, 1, "cache={cache}: duplicate must not kill the candidate");
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].error.class, ErrorClass::DuplicateVersion);

        // Recovery must reproduce the clean three-version mining result.
        let (clean_n, clean_report) =
            mine_one(candidate(vec![ver(0, 1, V0), ver(1, 2, V1), ver(3, 4, V2)]), cache);
        assert_eq!(clean_n, 1);
        assert!(clean_report.is_clean());
    }
}

#[test]
fn candidate_empty_version_recovers() {
    let mut vs = vec![ver(0, 1, V0), ver(1, 2, V1), ver(2, 3, V2)];
    let mut rng = StdRng::seed_from_u64(FAULT_SEED);
    corrupt_versions(&mut vs, FaultClass::EmptyVersion, &mut rng).expect("blanking applies");
    let (n, report) = mine_one(candidate(vs), true);
    assert_eq!(n, 1);
    assert_eq!(report.recovered.len(), 1);
    assert_eq!(report.recovered[0].error.class, ErrorClass::EmptyVersion);
}

#[test]
fn candidate_all_blank_is_quarantined_not_fatal() {
    let vs = vec![ver(0, 1, "\n\n"), ver(1, 2, "  \n")];
    let (n, report) = mine_one(candidate(vs), false);
    assert_eq!(n, 0);
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.error.class, ErrorClass::EmptyVersion);
    assert_eq!(q.error.project, "chaos/crafted");
    assert!(!q.recovery_attempted, "nothing to parse, so no parse recovery was attempted");
    // The blank versions themselves were individually recovered first.
    assert_eq!(report.recovered.len(), 2);
}

#[test]
fn candidate_backwards_timestamps_resort_to_clean_result() {
    for cache in [false, true] {
        let mut vs = vec![ver(0, 1, V0), ver(1, 2, V1), ver(2, 3, V2)];
        let mut rng = StdRng::seed_from_u64(FAULT_SEED);
        corrupt_versions(&mut vs, FaultClass::NonMonotonicTimestamps, &mut rng)
            .expect("timestamp swap applies");
        assert!(
            vs.windows(2).any(|w| w[1].timestamp < w[0].timestamp),
            "injection failed to break monotonicity"
        );
        let (n, report) = mine_one(candidate(vs), cache);
        assert_eq!(n, 1);
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(
            report.recovered[0].error.class,
            ErrorClass::NonMonotonicTimestamps
        );
    }
}

#[test]
fn candidate_unterminated_token_recovers_with_prefix() {
    // v1 carries a good statement followed by an unterminated block
    // comment: the lexer reports the error, the recovering parser keeps
    // the well-formed prefix, and mining continues.
    let damaged = format!("{V1}\n/* migration notes never closed");
    let vs = vec![ver(0, 1, V0), ver(1, 2, &damaged), ver(2, 3, V2)];
    for cache in [false, true] {
        let (n, report) = mine_one(candidate(vs.clone()), cache);
        assert_eq!(n, 1, "cache={cache}");
        assert_eq!(report.recovered.len(), 1, "cache={cache}");
        let r = &report.recovered[0];
        assert_eq!(r.error.class, ErrorClass::Lex);
        assert_eq!(r.error.version_index, Some(1));
        assert!(r.error.byte_offset.is_some());
    }
}

#[test]
fn candidate_unsalvageable_version_quarantines_whole_history() {
    // A version swallowed from byte zero by an unterminated string has
    // an empty salvage schema: the history is quarantined, with
    // provenance pointing at the damaged version.
    let vs = vec![ver(0, 1, V0), ver(1, 2, "'swallowed from the first byte")];
    for cache in [false, true] {
        let (n, report) = mine_one(candidate(vs.clone()), cache);
        assert_eq!(n, 0, "cache={cache}");
        assert_eq!(report.quarantined.len(), 1, "cache={cache}");
        let q = &report.quarantined[0];
        assert_eq!(q.error.class, ErrorClass::Lex);
        assert_eq!(q.error.version_index, Some(1));
        assert!(q.recovery_attempted);
    }
}

#[test]
fn candidate_injection_on_real_funnel_output_stays_ordered() {
    // Corrupt one real extracted candidate in the middle of the funnel
    // output; every other candidate must mine bit-identically and the
    // output order must be preserved.
    let u = clean_universe();
    let outcome = run_funnel(&u, WalkStrategy::FirstParent);
    let mut candidates = outcome.analyzed;
    assert!(candidates.len() >= 3, "scale {SCALE} funnel too small for this test");
    let victim = candidates.len() / 2;
    let victim_name = candidates[victim].name.clone();
    let mut rng = StdRng::seed_from_u64(FAULT_SEED);
    corrupt_versions(
        &mut candidates[victim].versions,
        FaultClass::DuplicateVersion,
        &mut rng,
    )
    .expect("duplicate injection applies to a real candidate");

    let (mined, report) = mine_graceful(&candidates, 4, true);
    assert_eq!(mined.len(), candidates.len(), "duplicate drop must not lose the candidate");
    assert_eq!(report.recovered.len(), 1);
    assert_eq!(report.recovered[0].error.project, victim_name);
    assert_eq!(report.recovered[0].error.class, ErrorClass::DuplicateVersion);
    // Order and content of everything else match the clean mining pass.
    let clean = run_funnel(&u, WalkStrategy::FirstParent).analyzed;
    let (clean_mined, clean_report) = mine_graceful(&clean, 4, true);
    assert!(clean_report.is_clean());
    for (a, b) in mined.iter().zip(clean_mined.iter()) {
        assert_eq!(a.profile, b.profile, "profile order or content changed");
    }
}

// ---------------------------------------------------------------------
// Byte-flipped pack entries: the reader must fail closed, never panic.
// ---------------------------------------------------------------------

#[test]
fn byte_flipped_packs_never_panic() {
    use schevo_vcs::pack::{read_pack, write_pack};
    use schevo_vcs::repo::{FileChange, Repository};

    let mut repo = Repository::new("chaos/pack");
    for (i, content) in [V0, V1, V2].iter().enumerate() {
        repo.commit(
            &[FileChange::write("schema.sql", content.to_string())],
            "chaos",
            Timestamp::from_date(2018, 1 + i as u8, 1),
            &format!("v{i}"),
        )
        .expect("commit");
    }
    let pack = write_pack(&repo);
    assert!(read_pack(&pack).is_ok(), "clean pack must round-trip");

    // Flip every byte position to a handful of hostile values. Each
    // corrupted pack must either load (flip hit a don't-care byte) or
    // return a typed PackError — an abort/panic fails the whole test.
    let mut outcomes = [0usize; 2];
    for pos in 0..pack.len() {
        for val in [0x00, 0xff, pack[pos].wrapping_add(1)] {
            if val == pack[pos] {
                continue;
            }
            let mut bad = pack.clone();
            bad[pos] = val;
            match read_pack(&bad) {
                Ok(_) => outcomes[0] += 1,
                Err(_) => outcomes[1] += 1,
            }
        }
    }
    assert!(outcomes[1] > 0, "no flip was ever detected as corruption");
}

#[test]
fn truncated_packs_never_panic() {
    use schevo_vcs::pack::{read_pack, write_pack};
    use schevo_vcs::repo::{FileChange, Repository};

    let mut repo = Repository::new("chaos/pack-trunc");
    repo.commit(
        &[FileChange::write("schema.sql", V0.to_string())],
        "chaos",
        Timestamp::from_date(2018, 1, 1),
        "v0",
    )
    .expect("commit");
    let pack = write_pack(&repo);
    for len in 0..pack.len() {
        assert!(
            read_pack(&pack[..len]).is_err(),
            "a pack cut to {len} of {} bytes must be rejected",
            pack.len()
        );
    }
}
