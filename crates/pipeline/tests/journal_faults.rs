//! Failpoint-backed regression tests for the write-ahead journal.
//!
//! Own test binary: the failpoint registry is process-global, so
//! arming `journal.*` sites must not race with the crate's other
//! tests (which also append journals). Tests serialize on one mutex
//! and reset the registry before returning.

use schevo_core::errors::ErrorClass;
use schevo_core::failpoint;
use schevo_pipeline::extract::MineOutcome;
use schevo_pipeline::journal::{replay_file, JournalRecord, JournalWriter};
use std::path::PathBuf;
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("schevo_journal_fp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn record(i: usize) -> JournalRecord {
    JournalRecord {
        key: format!("{i:040x}"),
        outcome: MineOutcome { mined: None, recovered: Vec::new(), quarantined: None },
    }
}

#[test]
fn transient_eio_on_append_is_absorbed_without_torn_or_duplicate_frames() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("eio_append.journal");
    let _ = std::fs::remove_file(&path);
    let mut w = JournalWriter::create(&path).expect("create");
    // Fault the fsync *after* the frame bytes were written: the retry
    // must rewind to the pre-append offset before writing again, or
    // the frame would be duplicated.
    failpoint::configure("journal.fsync=eio@0", 3).expect("arm");
    for i in 0..3 {
        w.append(&record(i)).expect("append survives one EIO");
    }
    let fired = failpoint::fired();
    failpoint::reset();
    assert_eq!(fired.len(), 1);
    let replay = replay_file(&path).expect("readable");
    assert!(replay.corruption.is_none(), "{:?}", replay.corruption);
    assert_eq!(replay.records.len(), 3, "no duplicated or torn frames");
    assert_eq!(replay.records, (0..3).map(record).collect::<Vec<_>>());
}

#[test]
fn persistent_enospc_on_append_surfaces_typed_journal_error() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("enospc_append.journal");
    let _ = std::fs::remove_file(&path);
    let mut w = JournalWriter::create(&path).expect("create");
    w.append(&record(0)).expect("clean append");
    failpoint::configure("journal.append=enospc@0+", 3).expect("arm");
    let e = w.append(&record(1)).expect_err("disk full");
    failpoint::reset();
    assert_eq!(e.class, ErrorClass::Journal);
    assert!(e.message.contains("append journal record"), "{}", e.message);
    // The committed prefix is untouched and still replays cleanly.
    let replay = replay_file(&path).expect("readable");
    assert!(replay.corruption.is_none());
    assert_eq!(replay.records, vec![record(0)]);
    assert_eq!(w.commits(), 1);
}

#[test]
fn truncate_fault_during_resume_is_typed_and_retried() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp("resume_fault.journal");
    let _ = std::fs::remove_file(&path);
    let mut w = JournalWriter::create(&path).expect("create");
    w.append(&record(0)).expect("append");
    let valid = replay_file(&path).expect("readable").valid_len;

    // One transient EIO at the truncate site: resume succeeds anyway.
    failpoint::configure("journal.truncate=eio@0", 3).expect("arm");
    let mut w2 = JournalWriter::resume(&path, valid).expect("resume absorbs EIO");
    failpoint::reset();
    w2.append(&record(1)).expect("append after resume");
    let replay = replay_file(&path).expect("readable");
    assert_eq!(replay.records, vec![record(0), record(1)]);

    // Persistent ENOSPC: resume fails with a typed Journal error.
    failpoint::configure("journal.truncate=enospc@0+", 3).expect("arm");
    let e = JournalWriter::resume(&path, valid).expect_err("disk full");
    failpoint::reset();
    assert_eq!(e.class, ErrorClass::Journal);
    assert!(e.message.contains("truncate journal"), "{}", e.message);
}
