//! Property tests for the work-stealing miner: for *arbitrary* candidate
//! sets — valid histories, unparseable blobs, duplicated contents — and
//! arbitrary worker counts / cache settings, a strict [`MiningEngine`]
//! pass over a [`SliceSource`] must equal a plain serial fold of
//! `mine_candidate`/`mine_extended`, insensitive to its execution
//! configuration.

use proptest::prelude::*;
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_pipeline::extract::{mine_candidate, mine_extended};
use schevo_pipeline::funnel::CandidateHistory;
use schevo_pipeline::{MinePolicy, MiningEngine, MiningOutput, SliceSource, StudyOptions};
use schevo_vcs::history::FileVersion;
use schevo_vcs::sha1::sha1;
use schevo_vcs::timestamp::Timestamp;

/// A small pool of DDL blobs. Index 5 is deliberately unparseable
/// (unterminated string literal) so failure counting is exercised, and
/// the pool is small so the same content recurs across candidates — the
/// content-addressed cache's bread and butter.
fn blob(id: usize) -> &'static str {
    match id % 6 {
        0 => "CREATE TABLE a (x INT);",
        1 => "CREATE TABLE a (x INT, y INT);",
        2 => "CREATE TABLE a (x INT, y TEXT);\nCREATE TABLE b (z INT);",
        3 => "CREATE TABLE a (x BIGINT);\nCREATE TABLE b (z INT, w TEXT);",
        4 => "CREATE TABLE a (x INT, y INT, z INT);\nCREATE TABLE c (q INT);",
        _ => "CREATE TABLE t (a INT); '",
    }
}

fn candidate(idx: usize, blob_ids: Vec<usize>, pup_months: u64, total_commits: u64) -> CandidateHistory {
    let versions = blob_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let content = blob(id).to_string();
            FileVersion {
                commit: sha1(format!("{idx}/{i}/{content}").as_bytes()),
                timestamp: Timestamp(i as i64 * 86_400 * 7),
                author: "dev".into(),
                message: format!("v{i}"),
                content,
            }
        })
        .collect();
    CandidateHistory {
        name: format!("prop/p{idx}"),
        ddl_path: "schema.sql".into(),
        versions,
        pup_months,
        total_commits,
    }
}

fn candidates_strategy() -> impl Strategy<Value = Vec<CandidateHistory>> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..6, 1..6),
            1u64..40,
            1u64..300,
        ),
        0..12,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (ids, pup, commits))| candidate(i, ids, pup, commits))
            .collect()
    })
}

fn mine_strict(cands: &[CandidateHistory], workers: usize, cache: bool) -> MiningOutput {
    MiningEngine::new(StudyOptions {
        reed_threshold: Some(REED_THRESHOLD),
        workers,
        cache,
        ..StudyOptions::default()
    })
    .with_policy(MinePolicy::Strict)
    .mine(&SliceSource::new(cands))
    .expect("strict slice mining cannot fail without a journal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper-profile output of the parallel engine is exactly the
    /// serial `mine_candidate` fold, and the failure count is exactly
    /// the number of candidates the serial fold rejects.
    #[test]
    fn engine_equals_serial_fold(
        cands in candidates_strategy(),
        workers in 1usize..9,
    ) {
        let out = mine_strict(&cands, workers, true);
        let par: Vec<_> = out.mined.into_iter().map(|m| m.profile).collect();
        let serial: Vec<_> = cands
            .iter()
            .filter_map(|c| mine_candidate(c, REED_THRESHOLD))
            .collect();
        let serial_failures = cands.len() - serial.len();
        prop_assert_eq!(out.parse_failures, serial_failures);
        prop_assert_eq!(par, serial);
    }

    /// The extended records (profile + fk + table lives) are likewise a
    /// serial fold of `mine_extended`, independent of worker count and
    /// cache setting.
    #[test]
    fn engine_output_is_config_invariant(
        cands in candidates_strategy(),
        workers in 1usize..9,
        cache in any::<bool>(),
    ) {
        let out = mine_strict(&cands, workers, cache);
        let serial: Vec<_> = cands
            .iter()
            .filter_map(|c| mine_extended(c, REED_THRESHOLD))
            .collect();
        prop_assert_eq!(out.parse_failures, cands.len() - serial.len());
        prop_assert_eq!(out.mined, serial);
        prop_assert_eq!(out.exec.tasks, cands.len());
        prop_assert_eq!(out.exec.cache_enabled, cache);
        if !cache {
            prop_assert_eq!(out.exec.parse_hits, 0);
            prop_assert_eq!(out.exec.diff_hits, 0);
        }
    }
}
