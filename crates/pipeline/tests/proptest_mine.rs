//! Property tests for the work-stealing miner: for *arbitrary* candidate
//! sets — valid histories, unparseable blobs, duplicated contents — and
//! arbitrary worker counts / cache settings, `mine_all` must equal a
//! plain serial fold of `mine_candidate`, and `mine_all_stats` must be
//! insensitive to its execution configuration.

use proptest::prelude::*;
use schevo_core::heartbeat::REED_THRESHOLD;
use schevo_pipeline::exec::ExecOptions;
use schevo_pipeline::extract::{mine_all, mine_all_stats, mine_candidate, mine_extended};
use schevo_pipeline::funnel::CandidateHistory;
use schevo_vcs::history::FileVersion;
use schevo_vcs::sha1::sha1;
use schevo_vcs::timestamp::Timestamp;

/// A small pool of DDL blobs. Index 5 is deliberately unparseable
/// (unterminated string literal) so failure counting is exercised, and
/// the pool is small so the same content recurs across candidates — the
/// content-addressed cache's bread and butter.
fn blob(id: usize) -> &'static str {
    match id % 6 {
        0 => "CREATE TABLE a (x INT);",
        1 => "CREATE TABLE a (x INT, y INT);",
        2 => "CREATE TABLE a (x INT, y TEXT);\nCREATE TABLE b (z INT);",
        3 => "CREATE TABLE a (x BIGINT);\nCREATE TABLE b (z INT, w TEXT);",
        4 => "CREATE TABLE a (x INT, y INT, z INT);\nCREATE TABLE c (q INT);",
        _ => "CREATE TABLE t (a INT); '",
    }
}

fn candidate(idx: usize, blob_ids: Vec<usize>, pup_months: u64, total_commits: u64) -> CandidateHistory {
    let versions = blob_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let content = blob(id).to_string();
            FileVersion {
                commit: sha1(format!("{idx}/{i}/{content}").as_bytes()),
                timestamp: Timestamp(i as i64 * 86_400 * 7),
                author: "dev".into(),
                message: format!("v{i}"),
                content,
            }
        })
        .collect();
    CandidateHistory {
        name: format!("prop/p{idx}"),
        ddl_path: "schema.sql".into(),
        versions,
        pup_months,
        total_commits,
    }
}

fn candidates_strategy() -> impl Strategy<Value = Vec<CandidateHistory>> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..6, 1..6),
            1u64..40,
            1u64..300,
        ),
        0..12,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (ids, pup, commits))| candidate(i, ids, pup, commits))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper-profile output of the parallel miner is exactly the
    /// serial `mine_candidate` fold, and the failure count is exactly
    /// the number of candidates the serial fold rejects.
    #[test]
    fn mine_all_equals_serial_fold(
        cands in candidates_strategy(),
        workers in 1usize..9,
    ) {
        let (par, failures) = mine_all(&cands, REED_THRESHOLD, workers);
        let serial: Vec<_> = cands
            .iter()
            .filter_map(|c| mine_candidate(c, REED_THRESHOLD))
            .collect();
        let serial_failures = cands.len() - serial.len();
        prop_assert_eq!(failures, serial_failures);
        prop_assert_eq!(par, serial);
    }

    /// The extended records (profile + fk + table lives) are likewise a
    /// serial fold of `mine_extended`, independent of worker count and
    /// cache setting.
    #[test]
    fn mine_all_stats_is_config_invariant(
        cands in candidates_strategy(),
        workers in 1usize..9,
        cache in any::<bool>(),
    ) {
        let opts = ExecOptions { workers, cache };
        let (mined, failures, stats) = mine_all_stats(&cands, REED_THRESHOLD, &opts);
        let serial: Vec<_> = cands
            .iter()
            .filter_map(|c| mine_extended(c, REED_THRESHOLD))
            .collect();
        prop_assert_eq!(failures, cands.len() - serial.len());
        prop_assert_eq!(mined, serial);
        prop_assert_eq!(stats.tasks, cands.len());
        prop_assert_eq!(stats.cache_enabled, cache);
        if !cache {
            prop_assert_eq!(stats.parse_hits, 0);
            prop_assert_eq!(stats.diff_hits, 0);
        }
    }
}
