//! The data-collection funnel of §III-A:
//!
//! ```text
//! SQL-Collection (133,029 repos with .sql files)
//!   ⨝ Libraries.io  (original ∧ stars > 0 ∧ contributors > 1)
//!   − test/demo/example paths
//!   − unresolvable multi-file layouts  (vendor choice → MySQL)
//!   = Lib-io (365)
//!   − zero-version extractions (14)
//!   − empty files / no CREATE TABLE (24)
//!   = cloned (327)
//!   − rigid single-version projects (132)
//!   = Schema_Evo_2019 (195)
//! ```

use schevo_corpus::libio::LibioRecord;
use schevo_corpus::universe::{MaterializedRepo, Universe};
use schevo_vcs::history::{file_history, FileVersion, WalkStrategy};
use schevo_vcs::repo::Repository;
use serde::{Deserialize, Serialize};

/// Why a repository fell out of the funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Exclusion {
    /// Not monitored by Libraries.io at all.
    NotInLibio,
    /// The repository is a fork.
    Fork,
    /// Zero stars.
    ZeroStars,
    /// At most one contributor.
    OneContributor,
    /// Every `.sql` path contains test/demo/example.
    ExcludedPath,
    /// Multiple `.sql` files that do not resolve to a single DDL file.
    MultiFile,
    /// The advertised path had no versions in the clone.
    ZeroVersions,
    /// All versions empty or without `CREATE TABLE`.
    EmptyOrNoCreateTable,
}

/// Per-stage counts of the funnel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelReport {
    /// Size of the SQL-Collection.
    pub sql_collection: usize,
    /// Dropped: not in Libraries.io.
    pub not_in_libio: usize,
    /// Dropped: forks.
    pub forks: usize,
    /// Dropped: zero stars.
    pub zero_stars: usize,
    /// Dropped: single contributor.
    pub one_contributor: usize,
    /// Dropped: only test/demo/example paths.
    pub excluded_paths: usize,
    /// Dropped: unresolvable multi-file layouts.
    pub multi_file: usize,
    /// The Lib-io data set (candidates cloned).
    pub lib_io: usize,
    /// Dropped after cloning: zero versions.
    pub zero_versions: usize,
    /// Dropped after cloning: empty or CREATE-TABLE-free files.
    pub empty_or_no_ct: usize,
    /// Cloned survivors.
    pub cloned: usize,
    /// Set aside: rigid single-version projects.
    pub rigid: usize,
    /// The analyzed population (Schema_Evo_2019).
    pub analyzed: usize,
}

impl FunnelReport {
    /// Tally one exclusion into its stage counter. Both the in-memory
    /// funnel and the streaming store source feed their drops through
    /// here, so the two backends produce identical reports.
    pub fn note_exclusion(&mut self, e: Exclusion) {
        match e {
            Exclusion::NotInLibio => self.not_in_libio += 1,
            Exclusion::Fork => self.forks += 1,
            Exclusion::ZeroStars => self.zero_stars += 1,
            Exclusion::OneContributor => self.one_contributor += 1,
            Exclusion::ExcludedPath => self.excluded_paths += 1,
            Exclusion::MultiFile => self.multi_file += 1,
            Exclusion::ZeroVersions => self.zero_versions += 1,
            Exclusion::EmptyOrNoCreateTable => self.empty_or_no_ct += 1,
        }
    }

    /// Tally one surviving candidate (already counted into `lib_io`).
    pub fn note_candidate(&mut self, rigid: bool) {
        self.cloned += 1;
        if rigid {
            self.rigid += 1;
        } else {
            self.analyzed += 1;
        }
    }
}

/// A candidate that survived the funnel: its extracted DDL history plus
/// repository metadata.
#[derive(Debug, Clone)]
pub struct CandidateHistory {
    /// `owner/repo`.
    pub name: String,
    /// The resolved DDL path.
    pub ddl_path: String,
    /// Extracted file versions (non-empty contents, oldest first).
    pub versions: Vec<FileVersion>,
    /// Project Update Period in months, from forge metadata.
    pub pup_months: u64,
    /// Total repository commits, from forge metadata.
    pub total_commits: u64,
}

impl CandidateHistory {
    /// Whether this candidate is rigid (single version).
    pub fn is_rigid(&self) -> bool {
        self.versions.len() == 1
    }
}

/// Funnel stages 1–3 (pre-clone): the Libraries.io join, the metadata
/// filters, and path post-processing. Returns the resolved DDL path of
/// a survivor — a record passing this step enters the Lib-io set.
pub fn assess_metadata(
    libio: Option<&LibioRecord>,
    sql_paths: &[String],
) -> Result<String, Exclusion> {
    let Some(meta) = libio else {
        return Err(Exclusion::NotInLibio);
    };
    if meta.is_fork {
        return Err(Exclusion::Fork);
    }
    if meta.stars == 0 {
        return Err(Exclusion::ZeroStars);
    }
    if meta.contributors <= 1 {
        return Err(Exclusion::OneContributor);
    }
    match resolve_paths(sql_paths) {
        Ok(p) => Ok(p),
        Err(Exclusion::ExcludedPath) => Err(Exclusion::ExcludedPath),
        Err(_) => Err(Exclusion::MultiFile),
    }
}

/// Funnel stage 5 (post-clone): extract the DDL history from the cloned
/// repository and build the candidate.
pub fn assess_clone(
    name: &str,
    repo: &Repository,
    ddl_path: String,
    pup_months: u64,
    total_commits: u64,
    strategy: WalkStrategy,
) -> Result<CandidateHistory, Exclusion> {
    let versions = extract_versions_from(repo, &ddl_path, strategy)?;
    Ok(CandidateHistory {
        name: name.to_string(),
        ddl_path,
        versions,
        pup_months,
        total_commits,
    })
}

/// Resolve the candidate `.sql` paths of one repository to a single DDL
/// path, per the paper's post-processing rules. `None` means exclusion.
pub fn resolve_paths(paths: &[String]) -> Result<String, Exclusion> {
    let kept: Vec<&String> = paths
        .iter()
        .filter(|p| {
            let lower = p.to_ascii_lowercase();
            !(lower.contains("test") || lower.contains("demo") || lower.contains("example"))
        })
        .collect();
    match kept.len() {
        0 => Err(Exclusion::ExcludedPath),
        1 => Ok(kept[0].clone()),
        _ => {
            // Multi-vendor resolution: exactly one MySQL file wins.
            let mysql: Vec<&&String> = kept
                .iter()
                .filter(|p| p.to_ascii_lowercase().contains("mysql"))
                .collect();
            if mysql.len() == 1 {
                Ok((*mysql[0]).clone())
            } else {
                Err(Exclusion::MultiFile)
            }
        }
    }
}

/// Extract the DDL history of a materialized repository at `path`,
/// dropping versions with blank content, and classify the extraction
/// outcome.
pub fn extract_versions(
    repo: &MaterializedRepo,
    path: &str,
    strategy: WalkStrategy,
) -> Result<Vec<FileVersion>, Exclusion> {
    extract_versions_from(repo.repo(), path, strategy)
}

/// [`extract_versions`] over a bare repository — the form the streaming
/// store source uses, where no [`MaterializedRepo`] wrapper exists.
pub fn extract_versions_from(
    r: &Repository,
    path: &str,
    strategy: WalkStrategy,
) -> Result<Vec<FileVersion>, Exclusion> {
    let raw = file_history(r, path, strategy).map_err(|_| Exclusion::ZeroVersions)?;
    let versions: Vec<FileVersion> = raw
        .into_iter()
        .filter(|v| !v.content.trim().is_empty())
        .collect();
    if versions.is_empty() {
        // Distinguish "no file at all" from "only blank versions".
        let had_any = file_history(r, path, strategy)
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        return Err(if had_any {
            Exclusion::EmptyOrNoCreateTable
        } else {
            Exclusion::ZeroVersions
        });
    }
    // The history must contain a CREATE TABLE somewhere.
    let has_ct = versions.iter().any(|v| {
        schevo_ddl::parse_schema(&v.content)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    });
    if !has_ct {
        return Err(Exclusion::EmptyOrNoCreateTable);
    }
    Ok(versions)
}

/// The funnel's output: the report, the analyzed candidates, and the rigid
/// side-line.
#[derive(Debug)]
pub struct FunnelOutcome {
    /// Per-stage counts.
    pub report: FunnelReport,
    /// The Schema_Evo_2019 candidates (≥ 2 versions).
    pub analyzed: Vec<CandidateHistory>,
    /// Rigid single-version candidates (reported, not analyzed).
    pub rigid: Vec<CandidateHistory>,
}

/// Run the whole funnel over a universe.
pub fn run_funnel(universe: &Universe, strategy: WalkStrategy) -> FunnelOutcome {
    let mut report = FunnelReport {
        sql_collection: universe.sql_collection.len(),
        ..Default::default()
    };
    let mut analyzed = Vec::new();
    let mut rigid = Vec::new();

    for entry in &universe.sql_collection {
        // 1–3. Libraries.io join, metadata filters, path post-processing.
        let meta = universe.libio.get(&entry.repo_name);
        if let Some(m) = meta {
            debug_assert!(m.url.ends_with(&entry.repo_name), "join on URL too");
        }
        let path = match assess_metadata(meta, &entry.sql_paths) {
            Ok(p) => p,
            Err(e) => {
                report.note_exclusion(e);
                continue;
            }
        };
        // 4. Clone. A candidate that passed all metadata filters must be
        // materialized; a lightweight record reaching this point would be a
        // corpus bug, surfaced loudly.
        let repo = universe
            .materialized
            .get(&entry.repo_name)
            .unwrap_or_else(|| panic!("{} passed filters but is not materialized", entry.repo_name));
        report.lib_io += 1;
        // 5. Extract.
        let (pup_months, total_commits) = repo.reported_meta();
        let candidate = match assess_clone(
            &entry.repo_name,
            repo.repo(),
            path,
            pup_months,
            total_commits,
            strategy,
        ) {
            Ok(c) => c,
            Err(e) => {
                report.note_exclusion(e);
                continue;
            }
        };
        // 6. Rigid split.
        let is_rigid = candidate.is_rigid();
        report.note_candidate(is_rigid);
        if is_rigid {
            rigid.push(candidate);
        } else {
            analyzed.push(candidate);
        }
    }
    FunnelOutcome {
        report,
        analyzed,
        rigid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schevo_corpus::universe::{generate, UniverseConfig};

    #[test]
    fn resolve_single_clean_path() {
        assert_eq!(
            resolve_paths(&["db/schema.sql".into()]),
            Ok("db/schema.sql".to_string())
        );
    }

    #[test]
    fn resolve_excluded_paths() {
        assert_eq!(
            resolve_paths(&["test/schema.sql".into()]),
            Err(Exclusion::ExcludedPath)
        );
        assert_eq!(
            resolve_paths(&["demo/x.sql".into(), "examples/y.sql".into()]),
            Err(Exclusion::ExcludedPath)
        );
        // A clean path next to a test path resolves to the clean one.
        assert_eq!(
            resolve_paths(&["test/schema.sql".into(), "db/schema.sql".into()]),
            Ok("db/schema.sql".to_string())
        );
    }

    #[test]
    fn resolve_vendor_choice() {
        assert_eq!(
            resolve_paths(&[
                "db/schema-mysql.sql".into(),
                "db/schema-postgres.sql".into()
            ]),
            Ok("db/schema-mysql.sql".to_string())
        );
        // Two MySQL files do not resolve.
        assert_eq!(
            resolve_paths(&["a/mysql.sql".into(), "b/mysql.sql".into()]),
            Err(Exclusion::MultiFile)
        );
        // File-per-table layouts do not resolve.
        assert_eq!(
            resolve_paths(&["t/a.sql".into(), "t/b.sql".into(), "t/c.sql".into()]),
            Err(Exclusion::MultiFile)
        );
    }

    #[test]
    fn funnel_counts_match_ground_truth_small_scale() {
        let u = generate(UniverseConfig::small(2019, 10));
        let outcome = run_funnel(&u, WalkStrategy::FirstParent);
        let r = outcome.report;
        assert_eq!(r.sql_collection, u.expected.sql_collection);
        assert_eq!(r.lib_io, u.expected.lib_io);
        assert_eq!(r.zero_versions, u.expected.zero_version);
        assert_eq!(r.empty_or_no_ct, u.expected.empty_or_no_ct);
        assert_eq!(r.cloned, u.expected.cloned);
        assert_eq!(r.rigid, u.expected.rigid);
        assert_eq!(r.analyzed, u.expected.analyzed);
        assert_eq!(outcome.analyzed.len(), r.analyzed);
        assert_eq!(outcome.rigid.len(), r.rigid);
        // Conservation: every record is accounted for exactly once.
        let dropped = r.not_in_libio
            + r.forks
            + r.zero_stars
            + r.one_contributor
            + r.excluded_paths
            + r.multi_file;
        assert_eq!(dropped + r.lib_io, r.sql_collection);
        assert_eq!(r.lib_io - r.zero_versions - r.empty_or_no_ct, r.cloned);
        assert_eq!(r.cloned - r.rigid, r.analyzed);
    }

    #[test]
    fn analyzed_candidates_have_multiple_versions() {
        let u = generate(UniverseConfig::small(5, 20));
        let outcome = run_funnel(&u, WalkStrategy::FirstParent);
        for c in &outcome.analyzed {
            assert!(c.versions.len() >= 2, "{}", c.name);
            assert!(c.total_commits >= c.versions.len() as u64);
        }
        for c in &outcome.rigid {
            assert_eq!(c.versions.len(), 1, "{}", c.name);
        }
    }
}
