//! The mining execution layer: a work-stealing executor plus a
//! content-addressed parse/diff cache.
//!
//! ## Executor
//!
//! [`execute_ordered`] replaces static chunking: every task (one
//! candidate history) goes into a shared [`crossbeam::deque::Injector`],
//! workers steal tasks one at a time, and results flow back over a
//! channel tagged with their task index. The caller reassembles them
//! into input order, so the output is **deterministic regardless of
//! worker count or scheduling** — long histories no longer serialize a
//! whole chunk behind them.
//!
//! ## Cache
//!
//! [`MineCaches`] keys parses by the SHA-1 of the DDL blob and diffs by
//! the digest *pair* of the two versions. DDL files change rarely
//! relative to history length, and generated corpora share blobs across
//! projects, so repeated content parses once and identical version
//! pairs diff once. Both `parse_schema` and `diff` are pure functions
//! of blob content, so cached and uncached runs are bit-identical — the
//! differential test suite (`tests/differential_parallel.rs`) enforces
//! this.
//!
//! [`ExecStats`] reports hit/miss counters and per-stage timings so the
//! cache's payoff is observable from `StudyResult`.

use parking_lot::RwLock;
use schevo_core::diff::{diff, SchemaDelta};
use schevo_ddl::{parse_schema, Schema};
use schevo_vcs::sha1::Digest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Execution options of a mining pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads (clamped to `1..=32` and to the task count).
    pub workers: usize,
    /// Whether the content-addressed parse/diff cache is consulted.
    pub cache: bool,
}

/// Default worker count: one per available hardware thread. Results are
/// identical for every worker count, so the default only tunes speed —
/// on a single-core host it degenerates to the serial fast path.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .clamp(1, 32)
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            workers: default_workers(),
            cache: true,
        }
    }
}

/// Observability counters of one mining pass: a thin view over the
/// per-task [`StageTally`] records merged **in candidate order**, so the
/// hit/miss counters and stage timings are identical for every worker
/// count and scheduling (timings are summed task CPU time, not wall
/// time). Only `wall_nanos` is wall-clock-dependent, which is why
/// `ExecStats` stays *excluded* from the differential equality contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Worker threads actually used.
    pub workers: usize,
    /// Tasks submitted (candidates, including ones that failed to parse).
    pub tasks: usize,
    /// Parse-cache hits (0 when the cache is disabled).
    pub parse_hits: u64,
    /// Parse-cache misses, i.e. actual `parse_schema` invocations under
    /// caching; equals total version count when the cache is disabled.
    pub parse_misses: u64,
    /// Diff-cache hits (0 when the cache is disabled).
    pub diff_hits: u64,
    /// Diff-cache misses, i.e. actual `diff` invocations under caching;
    /// equals total transition count when the cache is disabled.
    pub diff_misses: u64,
    /// Nanoseconds spent parsing (summed across workers).
    pub parse_nanos: u64,
    /// Nanoseconds spent diffing (summed across workers).
    pub diff_nanos: u64,
    /// Nanoseconds spent building profiles/extensions (summed across
    /// workers).
    pub profile_nanos: u64,
    /// Wall-clock nanoseconds of the whole pass.
    pub wall_nanos: u64,
    /// Whether the cache was enabled for the pass.
    pub cache_enabled: bool,
}

/// Per-task stage tallies. Each mining task owns one (plain `u64`
/// fields, no sharing), returned alongside its outcome and merged by
/// the caller **in candidate order** — which is what makes the
/// aggregated counters and stage timings independent of scheduling,
/// unlike the shared-atomic accumulation they replaced. The tally is
/// also what the metrics registry ingests per task, so latency
/// histograms see the same values in the same order on every run shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StageTally {
    pub(crate) parse_hits: u64,
    pub(crate) parse_misses: u64,
    pub(crate) diff_hits: u64,
    pub(crate) diff_misses: u64,
    pub(crate) parse_nanos: u64,
    pub(crate) diff_nanos: u64,
    pub(crate) profile_nanos: u64,
}

impl StageTally {
    pub(crate) fn add_parse_nanos(&mut self, start: Instant) {
        self.parse_nanos += start.elapsed().as_nanos() as u64;
    }

    pub(crate) fn add_diff_nanos(&mut self, start: Instant) {
        self.diff_nanos += start.elapsed().as_nanos() as u64;
    }

    pub(crate) fn add_profile_nanos(&mut self, start: Instant) {
        self.profile_nanos += start.elapsed().as_nanos() as u64;
    }

    pub(crate) fn count_parse(&mut self, hit: bool) {
        if hit {
            self.parse_hits += 1;
        } else {
            self.parse_misses += 1;
        }
    }

    pub(crate) fn count_diff(&mut self, hit: bool) {
        if hit {
            self.diff_hits += 1;
        } else {
            self.diff_misses += 1;
        }
    }

    /// Fold another task's tally into this one (associative and
    /// commutative; callers still merge in candidate order so any
    /// future order-sensitive aggregate stays deterministic).
    pub(crate) fn merge(&mut self, other: &StageTally) {
        self.parse_hits += other.parse_hits;
        self.parse_misses += other.parse_misses;
        self.diff_hits += other.diff_hits;
        self.diff_misses += other.diff_misses;
        self.parse_nanos += other.parse_nanos;
        self.diff_nanos += other.diff_nanos;
        self.profile_nanos += other.profile_nanos;
    }
}

impl ExecStats {
    /// Build the public stats view from a merged tally.
    pub(crate) fn from_tally(
        tally: &StageTally,
        workers: usize,
        tasks: usize,
        cache_enabled: bool,
        wall: Instant,
    ) -> ExecStats {
        ExecStats {
            workers,
            tasks,
            parse_hits: tally.parse_hits,
            parse_misses: tally.parse_misses,
            diff_hits: tally.diff_hits,
            diff_misses: tally.diff_misses,
            parse_nanos: tally.parse_nanos,
            diff_nanos: tally.diff_nanos,
            profile_nanos: tally.profile_nanos,
            wall_nanos: wall.elapsed().as_nanos() as u64,
            cache_enabled,
        }
    }
}

/// Content-addressed caches shared by all workers of one mining pass.
///
/// Parses are keyed by the SHA-1 of the blob; a `None` value records
/// that the blob does not parse (failure is as deterministic as
/// success, so it is cached too). Diffs are keyed by the `(old, new)`
/// digest pair. Lookups take the read lock; a miss recomputes outside
/// any lock and inserts under the write lock, so a racing duplicate
/// computation is possible but harmless — both compute the same value.
#[derive(Debug, Default)]
pub(crate) struct MineCaches {
    parse: RwLock<HashMap<Digest, Option<Schema>>>,
    diff: RwLock<HashMap<(Digest, Digest), SchemaDelta>>,
}

impl MineCaches {
    /// Parse `content` through the cache. Returns `None` when the blob
    /// is unparseable.
    pub(crate) fn parse(
        &self,
        digest: Digest,
        content: &str,
        tally: &mut StageTally,
    ) -> Option<Schema> {
        if let Some(cached) = self.parse.read().get(&digest) {
            tally.count_parse(true);
            return cached.clone();
        }
        tally.count_parse(false);
        let parsed = parse_schema(content).ok();
        self.parse.write().insert(digest, parsed.clone());
        parsed
    }

    /// Diff two schemas through the cache, keyed by their blob digests.
    pub(crate) fn diff(
        &self,
        key: (Digest, Digest),
        old: &Schema,
        new: &Schema,
        tally: &mut StageTally,
    ) -> SchemaDelta {
        if let Some(cached) = self.diff.read().get(&key) {
            tally.count_diff(true);
            return cached.clone();
        }
        tally.count_diff(false);
        let delta = diff(old, new);
        self.diff.write().insert(key, delta.clone());
        delta
    }
}

/// Work-stealing parallel map preserving input order.
///
/// Task indices are pushed into a shared injector; `workers` scoped
/// threads steal one index at a time, run `work`, and send
/// `(index, result)` back over a channel. The caller thread reassembles
/// results into their input slots, so the returned vector matches
/// `items` positionally no matter how tasks interleave. With one worker
/// (or one item) the map degenerates to a serial loop with no threads.
pub fn execute_ordered<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    execute_ordered_with(items, workers, work, |_, _| {})
}

/// [`execute_ordered`] with a completion hook: `on_complete(index, &result)`
/// runs **on the caller thread**, in completion order (not input order),
/// once per task, before the result is slotted. This is the durability
/// hook — the mining journal appends each record from here, so a worker
/// panic can never tear a half-written record: workers only compute, the
/// caller thread owns the journal file, and every result received before
/// the panic propagates has already been committed whole.
pub fn execute_ordered_with<T, R, F, C>(
    items: &[T],
    workers: usize,
    work: F,
    mut on_complete: C,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    C: FnMut(usize, &R),
{
    let workers = workers.clamp(1, 32).min(items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let r = work(i, t);
                on_complete(i, &r);
                r
            })
            .collect();
    }
    let injector = crossbeam::deque::Injector::new();
    for idx in 0..items.len() {
        injector.push(idx);
    }
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let scope_result = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                let injector = &injector;
                let work = &work;
                scope.spawn(move |_| loop {
                    match injector.steal() {
                        crossbeam::deque::Steal::Success(idx) => {
                            // A dropped receiver means the caller is gone
                            // (sibling panic); stop stealing.
                            if tx.send((idx, work(idx, &items[idx]))).is_err() {
                                break;
                            }
                        }
                        crossbeam::deque::Steal::Empty => break,
                        crossbeam::deque::Steal::Retry => continue,
                    }
                })
            })
            .collect();
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (idx, result) in rx {
            on_complete(idx, &result);
            slots[idx] = Some(result);
        }
        // The receive loop only ends once every sender is dropped, so the
        // joins below never block. A panicked worker has left its task's
        // slot unfilled — surface the worker's own panic payload, not a
        // misleading missing-slot assertion.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every stolen task reports exactly once"))
            .collect()
    });
    match scope_result {
        Ok(results) => results,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Run one task under a soft watchdog deadline.
///
/// The task always runs to completion — this is a *flagging* watchdog,
/// not a killer: aborting a worker mid-task would tear shared caches and
/// cost the mined result. Returns the task's result plus the amount by
/// which it overran `deadline` (`None` when no deadline was set or the
/// task finished in time). Callers turn an overrun into a
/// [`schevo_core::errors::ErrorClass::DeadlineExceeded`] quarantine
/// event so a pathological history is visible instead of wedging the
/// run silently.
pub fn watchdog<R>(deadline: Option<Duration>, task: impl FnOnce() -> R) -> (R, Option<Duration>) {
    match deadline {
        None => (task(), None),
        Some(limit) => {
            let start = Instant::now();
            let result = task();
            let elapsed = start.elapsed();
            (result, (elapsed > limit).then(|| elapsed - limit))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_output_for_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 8, 33, usize::MAX] {
            let out = execute_ordered(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_payload_propagates() {
        let items: Vec<usize> = (0..50).collect();
        let caught = std::panic::catch_unwind(|| {
            execute_ordered(&items, 4, |_, &x| {
                if x == 17 {
                    panic!("task 17 exploded");
                }
                x
            })
        })
        .expect_err("executor must propagate the worker panic");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("task 17 exploded"),
            "original panic payload lost: {msg:?}"
        );
    }

    #[test]
    fn worker_panic_leaves_journal_consistent() {
        // A worker panic mid-pass must not tear the journal: every record
        // the caller thread committed before the panic propagated is fully
        // framed, and replay finds no corruption — the file ends exactly at
        // a record boundary.
        use crate::extract::MineOutcome;
        use crate::journal::{replay_file, JournalRecord, JournalWriter};
        let path = std::env::temp_dir().join(format!(
            "schevo_exec_panic_journal_{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let writer = std::sync::Mutex::new(
            JournalWriter::create(&path).expect("create journal in temp dir"),
        );
        let items: Vec<usize> = (0..50).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_ordered_with(
                &items,
                4,
                |_, &x| {
                    if x == 23 {
                        panic!("task 23 exploded");
                    }
                    x
                },
                |idx, _| {
                    let record = JournalRecord {
                        key: format!("task-{idx}"),
                        outcome: MineOutcome {
                            mined: None,
                            recovered: Vec::new(),
                            quarantined: None,
                        },
                    };
                    writer
                        .lock()
                        .expect("journal mutex")
                        .append(&record)
                        .expect("append to temp journal");
                },
            )
        }));
        assert!(caught.is_err(), "executor must propagate the worker panic");
        let committed = writer.lock().expect("journal mutex").commits();
        let replay = replay_file(&path).expect("journal file readable after panic");
        assert!(
            replay.corruption.is_none(),
            "worker panic tore the journal: {:?}",
            replay.corruption
        );
        assert_eq!(
            replay.records.len() as u64,
            committed,
            "replayed record count must equal committed appends"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watchdog_flags_overrun_and_passes_result_through() {
        // No deadline: no measurement at all.
        let (r, over) = watchdog(None, || 41 + 1);
        assert_eq!((r, over), (42, None));
        // A zero deadline is always overrun, but the result still lands.
        let (r, over) = watchdog(Some(Duration::ZERO), || "done");
        assert_eq!(r, "done");
        assert!(over.is_some(), "zero deadline must always flag an overrun");
        // A generous deadline is not overrun by a trivial task.
        let (_, over) = watchdog(Some(Duration::from_secs(3600)), || ());
        assert!(over.is_none());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(execute_ordered(&none, 8, |_, &x| x).is_empty());
        assert_eq!(execute_ordered(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parse_cache_hits_on_repeat_content() {
        use schevo_vcs::sha1::sha1;
        let caches = MineCaches::default();
        let mut tally = StageTally::default();
        let sql = "CREATE TABLE t (a INT);";
        let d = sha1(sql.as_bytes());
        let first = caches.parse(d, sql, &mut tally);
        let second = caches.parse(d, sql, &mut tally);
        assert_eq!(first, second);
        assert!(first.is_some());
        // Unparseable content is cached as a failure.
        let bad = "CREATE TABLE t (a INT); '";
        let bd = sha1(bad.as_bytes());
        assert!(caches.parse(bd, bad, &mut tally).is_none());
        assert!(caches.parse(bd, bad, &mut tally).is_none());
        let stats = ExecStats::from_tally(&tally, 1, 0, true, Instant::now());
        assert_eq!(stats.parse_hits, 2);
        assert_eq!(stats.parse_misses, 2);
    }

    #[test]
    fn diff_cache_returns_identical_delta() {
        use schevo_vcs::sha1::sha1;
        let caches = MineCaches::default();
        let mut tally = StageTally::default();
        let a = parse_schema("CREATE TABLE t (a INT);").unwrap();
        let b = parse_schema("CREATE TABLE t (a INT, b INT);").unwrap();
        let key = (sha1(b"a"), sha1(b"b"));
        let miss = caches.diff(key, &a, &b, &mut tally);
        let hit = caches.diff(key, &a, &b, &mut tally);
        assert_eq!(miss, hit);
        assert_eq!(miss, diff(&a, &b));
        let stats = ExecStats::from_tally(&tally, 1, 0, true, Instant::now());
        assert_eq!((stats.diff_hits, stats.diff_misses), (1, 1));
    }

    #[test]
    fn tally_merge_is_field_wise_addition() {
        let mut a = StageTally {
            parse_hits: 1,
            parse_misses: 2,
            diff_hits: 3,
            diff_misses: 4,
            parse_nanos: 10,
            diff_nanos: 20,
            profile_nanos: 30,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(
            a,
            StageTally {
                parse_hits: 2,
                parse_misses: 4,
                diff_hits: 6,
                diff_misses: 8,
                parse_nanos: 20,
                diff_nanos: 40,
                profile_nanos: 60,
            }
        );
        // The empty tally is the merge identity.
        let mut c = b;
        c.merge(&StageTally::default());
        assert_eq!(c, b);
    }
}
